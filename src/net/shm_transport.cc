#include "net/shm_transport.h"

#include <fcntl.h>
#include <sched.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>

#include "common/string_util.h"

namespace rtrec {
namespace {

constexpr std::uint64_t kShmMagic = 0x72747265632e7368ULL;  // "rtrec.sh"
constexpr std::uint32_t kShmLayoutVersion = 1;
constexpr std::int64_t kLivenessCheckIntervalMs = 20;
constexpr std::int64_t kClaimHandshakeTimeoutMs = 5000;

std::int64_t SteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Segment layout (docs/WIRE_PROTOCOL.md §9.2). All structs live inside the
// mapped segment, so they hold only trivially-layouted fields and
// address-free atomics; the process-local handles below wrap raw offsets.

struct SegHdr {
  std::uint64_t magic;
  std::uint32_t layout_version;
  std::uint32_t slot_count;
  std::uint64_t ring_bytes;        // per direction, power of two
  std::uint64_t max_frame_bytes;   // FrameDecoder cap on both sides
  std::atomic<std::uint32_t> server_state;  // 0 = down, 1 = serving
  std::atomic<std::uint64_t> server_pid;
};

struct SlotHdr {
  std::atomic<std::uint32_t> state;       // kSlotFree..kSlotClosing
  std::atomic<std::uint32_t> generation;  // bumped by every reclaim
  std::atomic<std::uint64_t> client_pid;
};

struct RingHdr {
  alignas(64) std::atomic<std::uint64_t> head;  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail;  // producer cursor
};

constexpr std::size_t AlignUp(std::size_t n, std::size_t a) {
  return (n + a - 1) & ~(a - 1);
}

constexpr std::size_t kSegHdrBytes = AlignUp(sizeof(SegHdr), 64);
constexpr std::size_t kSlotHdrBytes = AlignUp(sizeof(SlotHdr), 64);
constexpr std::size_t kRingHdrBytes = AlignUp(sizeof(RingHdr), 64);

std::size_t RingStride(std::size_t ring_bytes) {
  return kRingHdrBytes + AlignUp(ring_bytes, 64);
}

std::size_t SlotStride(std::size_t ring_bytes) {
  return kSlotHdrBytes + 2 * RingStride(ring_bytes);
}

std::size_t SegmentBytes(std::uint32_t slot_count, std::size_t ring_bytes) {
  return kSegHdrBytes + slot_count * SlotStride(ring_bytes);
}

// Process-local view of one SPSC byte ring. Positions are free-running
// u64 cursors; (tail - head) is the byte count in flight, and the data
// offset is cursor & (cap - 1). The producer owns `tail`, the consumer
// owns `head`; each publishes with a release store the other acquires.
struct RingView {
  RingHdr* hdr = nullptr;
  std::uint8_t* data = nullptr;
  std::size_t cap = 0;

  // Producer side: appends up to `len` bytes, returns how many fit.
  std::size_t WriteSome(const char* src, std::size_t len, Counter* wraps) {
    const std::uint64_t head = hdr->head.load(std::memory_order_acquire);
    const std::uint64_t tail = hdr->tail.load(std::memory_order_relaxed);
    const std::size_t free_bytes = cap - static_cast<std::size_t>(tail - head);
    const std::size_t n = len < free_bytes ? len : free_bytes;
    if (n == 0) return 0;
    const std::size_t off = static_cast<std::size_t>(tail) & (cap - 1);
    const std::size_t first = n < cap - off ? n : cap - off;
    std::memcpy(data + off, src, first);
    if (first < n) {
      std::memcpy(data, src + first, n - first);
      if (wraps != nullptr) wraps->Increment();
    }
    hdr->tail.store(tail + n, std::memory_order_release);
    return n;
  }

  // Consumer side: moves up to `max` available bytes into `out`.
  std::size_t ReadSome(std::string* out, std::size_t max, Counter* wraps) {
    const std::uint64_t tail = hdr->tail.load(std::memory_order_acquire);
    const std::uint64_t head = hdr->head.load(std::memory_order_relaxed);
    const std::size_t avail = static_cast<std::size_t>(tail - head);
    const std::size_t n = max < avail ? max : avail;
    if (n == 0) return 0;
    const std::size_t off = static_cast<std::size_t>(head) & (cap - 1);
    const std::size_t first = n < cap - off ? n : cap - off;
    out->append(reinterpret_cast<const char*>(data + off), first);
    if (first < n) {
      out->append(reinterpret_cast<const char*>(data), n - first);
      if (wraps != nullptr) wraps->Increment();
    }
    hdr->head.store(head + n, std::memory_order_release);
    return n;
  }

  void Reset() {
    hdr->head.store(0, std::memory_order_relaxed);
    hdr->tail.store(0, std::memory_order_release);
  }
};

struct SlotView {
  SlotHdr* hdr = nullptr;
  RingView req;   // client → server
  RingView resp;  // server → client
};

SegHdr* Header(void* base) { return static_cast<SegHdr*>(base); }

SlotView Slot(void* base, std::uint32_t index) {
  SegHdr* seg = Header(base);
  const std::size_t ring_bytes = static_cast<std::size_t>(seg->ring_bytes);
  std::uint8_t* p = static_cast<std::uint8_t*>(base) + kSegHdrBytes +
                    index * SlotStride(ring_bytes);
  SlotView view;
  view.hdr = reinterpret_cast<SlotHdr*>(p);
  std::uint8_t* req = p + kSlotHdrBytes;
  view.req.hdr = reinterpret_cast<RingHdr*>(req);
  view.req.data = req + kRingHdrBytes;
  view.req.cap = ring_bytes;
  std::uint8_t* resp = req + RingStride(ring_bytes);
  view.resp.hdr = reinterpret_cast<RingHdr*>(resp);
  view.resp.data = resp + kRingHdrBytes;
  view.resp.cap = ring_bytes;
  return view;
}

// Wait strategy for both pollers. A 1-CPU host (the bench box) makes
// pure spinning counterproductive — the peer needs the core to make the
// bytes we are waiting for — so escalate quickly to sched_yield and
// only sleep once genuinely idle.
class PollBackoff {
 public:
  void Pause() {
    ++idle_;
    if (idle_ <= 16) {
      // brief busy spin — peer may be mid-publish on another core
    } else if (idle_ <= 512) {
      sched_yield();
    } else {
      ::usleep(idle_ <= 2048 ? 50 : 500);
    }
  }
  void Reset() { idle_ = 0; }

 private:
  std::uint32_t idle_ = 0;
};

bool PidAlive(std::uint64_t pid) {
  if (pid == 0) return true;  // handshake incomplete; covered by timeout
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno != ESRCH;
}

bool IsPowerOfTwo(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

Status ValidateShmName(const std::string& name) {
  if (name.size() < 2 || name.size() > 255 || name[0] != '/' ||
      name.find('/', 1) != std::string::npos) {
    return Status::InvalidArgument(
        StringPrintf("bad shm object name '%s'", name.c_str()));
  }
  return Status::OK();
}

}  // namespace

std::optional<std::string> ParseShmAddress(std::string_view address) {
  std::string_view name;
  if (address.rfind("rec://shm/", 0) == 0) {
    name = address.substr(10);
  } else if (address.rfind("shm://", 0) == 0) {
    name = address.substr(6);
  } else if (address.rfind("shm:", 0) == 0) {
    name = address.substr(4);
  } else {
    return std::nullopt;
  }
  if (name.empty() || name.size() > 63) return std::nullopt;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return std::nullopt;
  }
  return "/rtrec." + std::string(name);
}

// ---------------------------------------------------------------------------
// ShmServer.

struct ShmServer::SlotRuntime {
  std::uint32_t generation = 0;    // attachment this runtime belongs to
  bool live = false;               // runtime initialized for `generation`
  std::int64_t claimed_since_ms = 0;
  std::int64_t last_liveness_ms = 0;
  FrameDecoder decoder;
  ConnState conn;
  std::string pending_out;         // responses awaiting ring space
  std::size_t pending_pos = 0;

  explicit SlotRuntime(std::size_t max_frame_bytes)
      : decoder(max_frame_bytes) {}

  void Restart(std::uint32_t gen, std::size_t max_frame_bytes) {
    generation = gen;
    live = true;
    claimed_since_ms = 0;
    last_liveness_ms = 0;
    decoder = FrameDecoder(max_frame_bytes);
    conn = ConnState();
    pending_out.clear();
    pending_pos = 0;
  }
};

ShmServer::ShmServer(std::string shm_name, const Options& options,
                     FrameHandler handler)
    : shm_name_(std::move(shm_name)),
      options_(options),
      handler_(std::move(handler)) {
  if (options_.metrics != nullptr) {
    polls_ = options_.metrics->GetCounter("shm.ring.polls");
    wraps_ = options_.metrics->GetCounter("shm.ring.wraps");
    reclaims_ = options_.metrics->GetCounter("shm.slots.reclaimed");
  }
}

StatusOr<std::unique_ptr<ShmServer>> ShmServer::Create(
    const std::string& shm_name, const Options& options,
    FrameHandler handler) {
  RTREC_RETURN_IF_ERROR(ValidateShmName(shm_name));
  if (options.slot_count == 0 || options.slot_count > 1024) {
    return Status::InvalidArgument("shm slot_count must be in [1, 1024]");
  }
  if (!IsPowerOfTwo(options.ring_bytes) ||
      options.ring_bytes < options.max_frame_bytes + kLengthPrefixBytes) {
    return Status::InvalidArgument(
        "shm ring_bytes must be a power of two >= max_frame_bytes + 4");
  }
  std::unique_ptr<ShmServer> server(
      new ShmServer(shm_name, options, std::move(handler)));
  RTREC_RETURN_IF_ERROR(server->Init());
  return server;
}

Status ShmServer::Init() {
  // Drop any stale segment from a crashed predecessor, then create
  // fresh so every cursor starts zeroed (§9.6).
  ::shm_unlink(shm_name_.c_str());
  const int fd =
      ::shm_open(shm_name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    return Status::Unavailable(StringPrintf("shm_open(%s): %s",
                                            shm_name_.c_str(),
                                            std::strerror(errno)));
  }
  map_bytes_ = SegmentBytes(options_.slot_count, options_.ring_bytes);
  if (::ftruncate(fd, static_cast<off_t>(map_bytes_)) != 0) {
    const int err = errno;
    ::close(fd);
    ::shm_unlink(shm_name_.c_str());
    return Status::Unavailable(
        StringPrintf("ftruncate(shm): %s", std::strerror(err)));
  }
  base_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                 0);
  ::close(fd);
  if (base_ == MAP_FAILED) {
    base_ = nullptr;
    ::shm_unlink(shm_name_.c_str());
    return Status::Unavailable(
        StringPrintf("mmap(shm): %s", std::strerror(errno)));
  }

  SegHdr* seg = new (base_) SegHdr();
  seg->magic = kShmMagic;
  seg->layout_version = kShmLayoutVersion;
  seg->slot_count = options_.slot_count;
  seg->ring_bytes = options_.ring_bytes;
  seg->max_frame_bytes = options_.max_frame_bytes;
  seg->server_pid.store(static_cast<std::uint64_t>(::getpid()),
                        std::memory_order_relaxed);
  runtime_.reserve(options_.slot_count);
  for (std::uint32_t i = 0; i < options_.slot_count; ++i) {
    SlotView slot = Slot(base_, i);
    new (slot.hdr) SlotHdr();
    new (slot.req.hdr) RingHdr();
    new (slot.resp.hdr) RingHdr();
    runtime_.push_back(
        std::make_unique<SlotRuntime>(options_.max_frame_bytes));
  }
  // Publish last: a client that sees server_state == 1 is guaranteed a
  // fully initialized layout.
  seg->server_state.store(1, std::memory_order_release);
  poller_ = std::thread([this] { PollLoop(); });
  return Status::OK();
}

ShmServer::~ShmServer() {
  stop_.store(true, std::memory_order_release);
  if (poller_.joinable()) poller_.join();
  if (base_ != nullptr) {
    Header(base_)->server_state.store(0, std::memory_order_release);
    ::munmap(base_, map_bytes_);
    ::shm_unlink(shm_name_.c_str());
  }
}

void ShmServer::PollLoop() {
  PollBackoff backoff;
  while (!stop_.load(std::memory_order_acquire)) {
    if (polls_ != nullptr) polls_->Increment();
    if (SweepOnce()) {
      backoff.Reset();
    } else {
      backoff.Pause();
    }
  }
}

bool ShmServer::SweepOnce() {
  bool progress = false;
  const std::int64_t now_ms = SteadyMillis();
  for (std::uint32_t i = 0; i < options_.slot_count; ++i) {
    SlotView slot = Slot(base_, i);
    SlotRuntime& rt = *runtime_[i];
    const std::uint32_t state = slot.hdr->state.load(std::memory_order_acquire);
    switch (state) {
      case kSlotFree:
        rt.live = false;
        break;
      case kSlotClaimed: {
        // A claimer that died before finishing the handshake leaves the
        // slot stuck here; its pid may not even be published yet, so a
        // wall-clock timeout backstops the pid check.
        if (rt.claimed_since_ms == 0) rt.claimed_since_ms = now_ms;
        const std::uint64_t pid =
            slot.hdr->client_pid.load(std::memory_order_acquire);
        if (!PidAlive(pid) ||
            now_ms - rt.claimed_since_ms > kClaimHandshakeTimeoutMs) {
          ReclaimSlot(i, /*client_died=*/true);
          progress = true;
        }
        break;
      }
      case kSlotActive: {
        const std::uint32_t gen =
            slot.hdr->generation.load(std::memory_order_acquire);
        if (!rt.live || rt.generation != gen) {
          rt.Restart(gen, options_.max_frame_bytes);
          rt.last_liveness_ms = now_ms;
          progress = true;
        }
        if (ServiceSlot(i)) {
          rt.last_liveness_ms = now_ms;
          progress = true;
        } else if (now_ms - rt.last_liveness_ms > kLivenessCheckIntervalMs) {
          rt.last_liveness_ms = now_ms;
          if (!ClientAlive(i)) {
            ReclaimSlot(i, /*client_died=*/true);
            progress = true;
          }
        }
        break;
      }
      case kSlotClosing:
        ReclaimSlot(i, /*client_died=*/false);
        progress = true;
        break;
      default:
        // Unknown state can only come from a corrupted segment; retire
        // the slot rather than wedging the sweep.
        ReclaimSlot(i, /*client_died=*/true);
        progress = true;
        break;
    }
  }
  return progress;
}

bool ShmServer::ServiceSlot(std::uint32_t index) {
  SlotView slot = Slot(base_, index);
  SlotRuntime& rt = *runtime_[index];
  bool progress = false;

  // Flush buffered responses first so ring space frees before we decode
  // more requests (otherwise a pipelining client could deadlock us).
  if (rt.pending_pos < rt.pending_out.size()) {
    const std::size_t wrote = slot.resp.WriteSome(
        rt.pending_out.data() + rt.pending_pos,
        rt.pending_out.size() - rt.pending_pos, wraps_);
    rt.pending_pos += wrote;
    if (wrote > 0) progress = true;
    if (rt.pending_pos == rt.pending_out.size()) {
      rt.pending_out.clear();
      rt.pending_pos = 0;
    }
  }

  std::string chunk;
  if (slot.req.ReadSome(&chunk, 64 << 10, wraps_) > 0) {
    rt.decoder.Append(chunk);
    progress = true;
  }

  while (true) {
    StatusOr<Frame> frame = rt.decoder.Next();
    if (frame.status().IsNotFound()) break;  // partial frame; wait for bytes
    if (!frame.ok()) {
      // Framing lost — same as a TCP connection gone bad: evict.
      rt.conn.close = true;
      break;
    }
    const SendFn send = [&rt](std::string&& encoded) {
      rt.pending_out.append(encoded);
    };
    handler_(*frame, &rt.conn, send);
    progress = true;
    if (rt.conn.close) break;

    // Opportunistic flush between frames keeps the client's reader fed
    // while long pipelines drain.
    if (rt.pending_pos < rt.pending_out.size()) {
      rt.pending_pos += slot.resp.WriteSome(
          rt.pending_out.data() + rt.pending_pos,
          rt.pending_out.size() - rt.pending_pos, wraps_);
      if (rt.pending_pos == rt.pending_out.size()) {
        rt.pending_out.clear();
        rt.pending_pos = 0;
      }
    }
  }

  const std::size_t backlog = rt.pending_out.size() - rt.pending_pos;
  if (rt.conn.close || backlog > options_.max_pending_response_bytes) {
    // Protocol violation or a client that stopped draining: take the
    // slot back. If the client is alive it notices via the generation
    // check on its next call (§9.5).
    ReclaimSlot(index, !ClientAlive(index));
    return true;
  }
  return progress;
}

void ShmServer::ReclaimSlot(std::uint32_t index, bool client_died) {
  SlotView slot = Slot(base_, index);
  SlotRuntime& rt = *runtime_[index];
  slot.req.Reset();
  slot.resp.Reset();
  slot.hdr->client_pid.store(0, std::memory_order_relaxed);
  slot.hdr->generation.fetch_add(1, std::memory_order_acq_rel);
  slot.hdr->state.store(kSlotFree, std::memory_order_release);
  rt.live = false;
  rt.claimed_since_ms = 0;
  rt.pending_out.clear();
  rt.pending_pos = 0;
  if (client_died) {
    slots_reclaimed_.fetch_add(1, std::memory_order_relaxed);
    if (reclaims_ != nullptr) reclaims_->Increment();
  }
}

bool ShmServer::ClientAlive(std::uint32_t index) const {
  return PidAlive(
      Slot(base_, index).hdr->client_pid.load(std::memory_order_acquire));
}

// ---------------------------------------------------------------------------
// ShmClient.

ShmClient::ShmClient(std::string shm_name, const Options& options)
    : shm_name_(std::move(shm_name)),
      options_(options),
      decoder_(options.max_frame_bytes) {
  if (options_.metrics != nullptr) {
    polls_ = options_.metrics->GetCounter("shm.ring.polls");
    wraps_ = options_.metrics->GetCounter("shm.ring.wraps");
  }
}

StatusOr<std::unique_ptr<ShmClient>> ShmClient::Attach(
    const std::string& shm_name, const Options& options) {
  RTREC_RETURN_IF_ERROR(ValidateShmName(shm_name));
  std::unique_ptr<ShmClient> client(new ShmClient(shm_name, options));
  Status attached = client->AttachLocked();
  if (!attached.ok()) {
    if (options.metrics != nullptr) {
      options.metrics->GetCounter("shm.ring.attach_errors")->Increment();
    }
    return attached;
  }
  return client;
}

Status ShmClient::AttachLocked() {
  const int fd = ::shm_open(shm_name_.c_str(), O_RDWR, 0);
  if (fd < 0) {
    return Status::Unavailable(StringPrintf("shm_open(%s): %s",
                                            shm_name_.c_str(),
                                            std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < kSegHdrBytes) {
    ::close(fd);
    return Status::Unavailable("shm segment truncated");
  }
  map_bytes_ = static_cast<std::size_t>(st.st_size);
  base_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                 0);
  ::close(fd);
  if (base_ == MAP_FAILED) {
    base_ = nullptr;
    return Status::Unavailable(
        StringPrintf("mmap(shm): %s", std::strerror(errno)));
  }
  SegHdr* seg = Header(base_);
  if (seg->server_state.load(std::memory_order_acquire) != 1 ||
      seg->magic != kShmMagic || seg->layout_version != kShmLayoutVersion) {
    return Status::Unavailable("shm segment not serving (or wrong layout)");
  }
  if (SegmentBytes(seg->slot_count,
                   static_cast<std::size_t>(seg->ring_bytes)) > map_bytes_) {
    return Status::Corruption("shm segment smaller than its header claims");
  }
  // The segment's frame cap is authoritative for both directions.
  options_.max_frame_bytes = static_cast<std::size_t>(seg->max_frame_bytes);
  decoder_ = FrameDecoder(options_.max_frame_bytes);

  for (std::uint32_t i = 0; i < seg->slot_count; ++i) {
    SlotView slot = Slot(base_, i);
    std::uint32_t expected = kSlotFree;
    if (slot.hdr->state.compare_exchange_strong(expected, kSlotClaimed,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
      slot_index_ = i;
      generation_ = slot.hdr->generation.load(std::memory_order_acquire);
      slot.hdr->client_pid.store(static_cast<std::uint64_t>(::getpid()),
                                 std::memory_order_release);
      slot.hdr->state.store(kSlotActive, std::memory_order_release);
      claimed_ = true;
      return Status::OK();
    }
  }
  return Status::ResourceExhausted(
      StringPrintf("all %u shm slots busy on %s", seg->slot_count,
                   shm_name_.c_str()));
}

ShmClient::~ShmClient() {
  if (base_ == nullptr) return;
  if (claimed_ && !abandoned_ && SlotStillMine()) {
    // Announce a clean close; the server resets the rings and frees the
    // slot on its next sweep (§9.4).
    Slot(base_, slot_index_)
        .hdr->state.store(kSlotClosing, std::memory_order_release);
  }
  ::munmap(base_, map_bytes_);
  base_ = nullptr;
}

bool ShmClient::SlotStillMine() const {
  SlotView slot = Slot(base_, slot_index_);
  return slot.hdr->state.load(std::memory_order_acquire) == kSlotActive &&
         slot.hdr->generation.load(std::memory_order_acquire) == generation_;
}

Status ShmClient::Send(std::string_view bytes, std::int64_t deadline_ms) {
  if (base_ == nullptr) return Status::Unavailable("shm client detached");
  SlotView slot = Slot(base_, slot_index_);
  std::size_t sent = 0;
  PollBackoff backoff;
  while (sent < bytes.size()) {
    if (Header(base_)->server_state.load(std::memory_order_acquire) != 1) {
      return Status::Unavailable("shm server is down");
    }
    if (!SlotStillMine()) {
      return Status::Unavailable("shm slot reclaimed by server");
    }
    const std::size_t wrote = slot.req.WriteSome(
        bytes.data() + sent, bytes.size() - sent, wraps_);
    sent += wrote;
    if (wrote > 0) {
      backoff.Reset();
      continue;
    }
    if (SteadyMillis() >= deadline_ms) {
      return Status::Unavailable("shm send timed out (request ring full)");
    }
    backoff.Pause();
  }
  return Status::OK();
}

StatusOr<Frame> ShmClient::NextFrame(std::int64_t deadline_ms) {
  if (base_ == nullptr) return Status::Unavailable("shm client detached");
  SlotView slot = Slot(base_, slot_index_);
  PollBackoff backoff;
  std::string chunk;
  while (true) {
    StatusOr<Frame> frame = decoder_.Next();
    if (frame.ok()) return frame;
    if (!frame.status().IsNotFound()) return frame;  // framing lost

    chunk.clear();
    if (polls_ != nullptr) polls_->Increment();
    if (slot.resp.ReadSome(&chunk, 64 << 10, wraps_) > 0) {
      decoder_.Append(chunk);
      backoff.Reset();
      continue;
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      return Status::Unavailable("shm read shut down");
    }
    if (Header(base_)->server_state.load(std::memory_order_acquire) != 1) {
      return Status::Unavailable("shm server is down");
    }
    if (!SlotStillMine()) {
      return Status::Unavailable("shm slot reclaimed by server");
    }
    if (SteadyMillis() >= deadline_ms) {
      return Status::NotFound("no shm frame before deadline");
    }
    backoff.Pause();
  }
}

void ShmClient::ShutdownRead() {
  shutdown_.store(true, std::memory_order_release);
}

void ShmClient::TestOnlySetSlotPid(std::uint64_t pid) {
  Slot(base_, slot_index_)
      .hdr->client_pid.store(pid, std::memory_order_release);
}

bool ShmClient::TestOnlyWriteRaw(const char* data, std::size_t len) {
  SlotView slot = Slot(base_, slot_index_);
  return slot.req.WriteSome(data, len, nullptr) == len;
}

void ShmClient::TestOnlyAbandon() {
  // Drop the mapping without announcing a close — observationally the
  // same slot state a SIGKILL leaves behind.
  abandoned_ = true;
  if (base_ != nullptr) {
    ::munmap(base_, map_bytes_);
    base_ = nullptr;
  }
}

}  // namespace rtrec
