#ifndef RTREC_NET_SHM_TRANSPORT_H_
#define RTREC_NET_SHM_TRANSPORT_H_

/// Same-host shared-memory transport for the rtrec wire protocol.
/// Normative layout and recovery rules: docs/WIRE_PROTOCOL.md §9.
///
/// A server owns one POSIX shm segment holding a fixed array of client
/// slots. Each slot is a pair of single-producer/single-consumer byte
/// rings (request: client→server, response: server→client) carrying
/// ordinary wire frames — the exact bytes that would cross a TCP
/// socket, so FrameDecoder and every codec in wire.h are reused
/// unchanged and v2 negotiation/pipelining work identically.
///
/// Crash safety is broker-less: a client claims a slot with a CAS,
/// publishes its pid, and bumps nothing on exit that the server cannot
/// redo. The server's poller reclaims a slot when the client announced
/// a clean close (kSlotClosing) or when its pid is gone (ESRCH) — a
/// client killed mid-request therefore cannot wedge the server. A
/// per-slot generation counter makes reclaim ABA-safe: clients check
/// it on every call and see Unavailable instead of touching a slot
/// that was handed to someone else.
///
/// Memory ordering: each ring position is a monotonically increasing
/// u64. The producer publishes bytes with a release store of `tail`
/// after the memcpy; the consumer acquires `tail`, copies, then
/// release-stores `head` to return space. Slot claim/handshake uses
/// acq_rel CAS on `state`. See DESIGN.md "Transport v2" for the full
/// argument.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/wire.h"

namespace rtrec {

/// Parses a same-host shm address. Accepted spellings (case-sensitive):
///   rec://shm/NAME   |   shm:NAME   |   shm://NAME
/// NAME must be 1..63 chars of [A-Za-z0-9._-]. Returns the POSIX shm
/// object name ("/rtrec.NAME") or nullopt if `address` is not an shm
/// address (i.e. should be treated as a TCP host).
std::optional<std::string> ParseShmAddress(std::string_view address);

/// Slot lifecycle states (docs/WIRE_PROTOCOL.md §9.3).
inline constexpr std::uint32_t kSlotFree = 0;     ///< claimable
inline constexpr std::uint32_t kSlotClaimed = 1;  ///< CAS won, handshake
inline constexpr std::uint32_t kSlotActive = 2;   ///< rings live
inline constexpr std::uint32_t kSlotClosing = 3;  ///< client left; reclaim

/// Serves wire frames over a shared-memory segment. Create() builds the
/// segment and starts one poller thread; the handler runs on that
/// thread, one decoded frame at a time, and replies through `send`.
class ShmServer {
 public:
  struct Options {
    /// Concurrent client attachments (slots). Each costs 2*ring_bytes.
    std::uint32_t slot_count = 8;
    /// Per-direction ring capacity; must be a power of two and at
    /// least max_frame_bytes + 4 so any single frame fits.
    std::size_t ring_bytes = 1 << 21;
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Response bytes buffered server-side for a slow client before the
    /// server evicts it (docs/WIRE_PROTOCOL.md §9.5).
    std::size_t max_pending_response_bytes = 8u << 20;
    MetricsRegistry* metrics = nullptr;  ///< optional; may be null
  };

  /// Per-attachment connection state threaded through the handler so
  /// version negotiation persists across frames of one attachment.
  struct ConnState {
    std::uint8_t negotiated_version = kWireVersion;
    /// Feature bits acked in this slot's Hello (net/wire.h kFeature*).
    std::uint32_t negotiated_features = 0;
    /// Handler sets this to evict the client (protocol violation).
    bool close = false;
  };

  /// Appends one encoded response frame for the current client.
  using SendFn = std::function<void(std::string&&)>;
  /// Invoked on the poller thread for every decoded request frame.
  using FrameHandler =
      std::function<void(const Frame&, ConnState*, const SendFn&)>;

  /// Creates the segment (unlinking any stale one with the same name)
  /// and starts the poller. `shm_name` is the POSIX object name, e.g.
  /// from ParseShmAddress.
  static StatusOr<std::unique_ptr<ShmServer>> Create(
      const std::string& shm_name, const Options& options,
      FrameHandler handler);

  ~ShmServer();
  ShmServer(const ShmServer&) = delete;
  ShmServer& operator=(const ShmServer&) = delete;

  const std::string& shm_name() const { return shm_name_; }

  /// Slots reclaimed because the owning client died (test/ops counter;
  /// also exported as shm.slots.reclaimed).
  std::uint64_t slots_reclaimed() const {
    return slots_reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  ShmServer(std::string shm_name, const Options& options,
            FrameHandler handler);

  Status Init();
  void PollLoop();
  /// One pass over every slot; returns true if any byte or state moved.
  bool SweepOnce();
  /// Drains one active slot's request ring; returns true on progress.
  bool ServiceSlot(std::uint32_t index);
  void ReclaimSlot(std::uint32_t index, bool client_died);
  bool ClientAlive(std::uint32_t index) const;

  struct SlotRuntime;  // per-slot decoder + conn state (server private)

  std::string shm_name_;
  Options options_;
  FrameHandler handler_;
  void* base_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::vector<std::unique_ptr<SlotRuntime>> runtime_;
  std::thread poller_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> slots_reclaimed_{0};
  Counter* polls_ = nullptr;
  Counter* wraps_ = nullptr;
  Counter* reclaims_ = nullptr;
};

/// Client side of the shm transport: attach to a serving segment, send
/// encoded frames, and poll decoded frames back. One attachment per
/// object; not thread-safe (RecClient serializes sends and runs one
/// reader, exactly as it does for a socket).
class ShmClient {
 public:
  struct Options {
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    MetricsRegistry* metrics = nullptr;  ///< optional; may be null
  };

  /// Attaches to `shm_name` and claims a free slot. Fails Unavailable
  /// if the segment is missing or the server is down, ResourceExhausted
  /// if every slot is taken.
  static StatusOr<std::unique_ptr<ShmClient>> Attach(
      const std::string& shm_name, const Options& options);

  ~ShmClient();
  ShmClient(const ShmClient&) = delete;
  ShmClient& operator=(const ShmClient&) = delete;

  /// Writes one encoded frame into the request ring, waiting for ring
  /// space up to `deadline_ms` (SteadyMillis clock).
  Status Send(std::string_view bytes, std::int64_t deadline_ms);

  /// Returns the next complete response frame, polling the response
  /// ring until `deadline_ms`. NotFound when the deadline passes with
  /// no complete frame (poll again); Unavailable on server exit, slot
  /// reclaim, or ShutdownRead; Corruption if framing is lost.
  StatusOr<Frame> NextFrame(std::int64_t deadline_ms);

  /// Unblocks a concurrent NextFrame poll (used by Disconnect).
  void ShutdownRead();

  /// Test hooks for the kill-9-mid-request drill (tests only). Raw
  /// write skips ring-space waiting and allocation so it is safe in a
  /// forked child; abandon drops the mapping without announcing a
  /// close, leaving the slot exactly as a SIGKILL would.
  void TestOnlySetSlotPid(std::uint64_t pid);
  bool TestOnlyWriteRaw(const char* data, std::size_t len);
  void TestOnlyAbandon();

 private:
  ShmClient(std::string shm_name, const Options& options);

  Status AttachLocked();
  bool SlotStillMine() const;

  std::string shm_name_;
  Options options_;
  void* base_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::uint32_t slot_index_ = 0;
  std::uint32_t generation_ = 0;
  FrameDecoder decoder_;
  bool claimed_ = false;
  bool abandoned_ = false;
  std::atomic<bool> shutdown_{false};
  Counter* polls_ = nullptr;
  Counter* wraps_ = nullptr;
};

}  // namespace rtrec

#endif  // RTREC_NET_SHM_TRANSPORT_H_
