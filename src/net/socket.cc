#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/string_util.h"

namespace rtrec {
namespace {

Status ErrnoStatus(const char* op, int err) {
  return Status::Internal(StringPrintf("%s: %s", op, strerror(err)));
}

StatusOr<sockaddr_in> ResolveV4(const std::string& host, std::uint16_t port) {
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StringPrintf("not an IPv4 address: %s", host.c_str()));
  }
  return addr;
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  flags = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, flags) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

Status SetTcpNoDelay(int fd) {
  int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)", errno);
  }
  return Status::OK();
}

StatusOr<UniqueFd> ListenTcp(const std::string& host, std::uint16_t port,
                             int backlog) {
  auto addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();

  UniqueFd fd(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket", errno);

  int one = 1;
  if (setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)", errno);
  }
  if (bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
           sizeof(*addr)) < 0) {
    return ErrnoStatus("bind", errno);
  }
  if (listen(fd.get(), backlog) < 0) return ErrnoStatus("listen", errno);
  RTREC_RETURN_IF_ERROR(SetNonBlocking(fd.get(), true));
  return fd;
}

StatusOr<std::uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoStatus("getsockname", errno);
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

StatusOr<UniqueFd> ConnectTcp(const std::string& host, std::uint16_t port,
                              int timeout_ms) {
  auto addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();

  UniqueFd fd(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket", errno);

  // Non-blocking connect so the timeout is enforceable, then back to
  // blocking for the caller.
  RTREC_RETURN_IF_ERROR(SetNonBlocking(fd.get(), true));
  int rc = connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
                   sizeof(*addr));
  if (rc < 0 && errno != EINPROGRESS) return ErrnoStatus("connect", errno);
  if (rc < 0) {
    Status ready = WaitReady(fd.get(), /*for_read=*/false, timeout_ms);
    if (!ready.ok()) {
      if (ready.IsUnavailable()) {
        return Status::Unavailable(
            StringPrintf("connect to %s:%u timed out after %dms", host.c_str(),
                         port, timeout_ms));
      }
      return ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)", errno);
    }
    if (err != 0) {
      return Status::Unavailable(StringPrintf("connect to %s:%u: %s",
                                              host.c_str(), port,
                                              strerror(err)));
    }
  }
  RTREC_RETURN_IF_ERROR(SetNonBlocking(fd.get(), false));
  RTREC_RETURN_IF_ERROR(SetTcpNoDelay(fd.get()));
  return fd;
}

Status WaitReady(int fd, bool for_read, int timeout_ms) {
  pollfd pfd;
  pfd.fd = fd;
  pfd.events = for_read ? POLLIN : POLLOUT;
  pfd.revents = 0;
  int rc;
  do {
    rc = poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return ErrnoStatus("poll", errno);
  if (rc == 0) return Status::Unavailable("poll timed out");
  return Status::OK();
}

}  // namespace rtrec
