#ifndef RTREC_NET_SOCKET_H_
#define RTREC_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace rtrec {

/// Owning wrapper around a POSIX file descriptor. Move-only; closes on
/// destruction.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int Release() { return std::exchange(fd_, -1); }

  /// Closes the current descriptor (if any) and adopts `fd`.
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Toggles O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd, bool nonblocking);

/// Sets TCP_NODELAY — RPC frames are small; Nagle adds 40ms of latency.
Status SetTcpNoDelay(int fd);

/// Opens a TCP listening socket bound to `host:port` (port 0 picks an
/// ephemeral port; query it with LocalPort). SO_REUSEADDR, non-blocking.
StatusOr<UniqueFd> ListenTcp(const std::string& host, std::uint16_t port,
                             int backlog);

/// Returns the locally bound port of a socket (after bind).
StatusOr<std::uint16_t> LocalPort(int fd);

/// Blocking TCP connect to `host:port` with a timeout. The returned
/// socket is in blocking mode with TCP_NODELAY set.
StatusOr<UniqueFd> ConnectTcp(const std::string& host, std::uint16_t port,
                              int timeout_ms);

/// poll()s `fd` for readability (`for_read`) or writability until
/// `timeout_ms` elapses. OK when ready; Unavailable on timeout; Internal
/// on poll failure.
Status WaitReady(int fd, bool for_read, int timeout_ms);

}  // namespace rtrec

#endif  // RTREC_NET_SOCKET_H_
