#include "net/stats_server.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string_view>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/span_collector.h"

namespace rtrec {

StatsServer::StatsServer(MetricsRegistry* registry, Options options)
    : registry_(registry), options_(std::move(options)) {
  scrapes_ = registry_->GetCounter("stats.scrapes");
}

StatsServer::~StatsServer() { Stop(); }

Status StatsServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("stats server already running");
  }
  stopping_.store(false, std::memory_order_release);
  auto listener = ListenTcp(options_.host, options_.port, /*backlog=*/16);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(*listener);
  auto port = LocalPort(listen_fd_.get());
  if (!port.ok()) return port.status();
  port_ = *port;
  thread_ = std::thread([this] { AcceptLoop(); });
  running_.store(true, std::memory_order_release);
  RTREC_LOG(kInfo) << "StatsServer listening on " << options_.host << ":"
                   << port_;
  return Status::OK();
}

void StatsServer::Stop() {
  stopping_.store(true, std::memory_order_release);
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  listen_fd_.Reset();
  port_ = 0;
}

void StatsServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Status ready = WaitReady(listen_fd_.get(), /*for_read=*/true,
                             /*timeout_ms=*/250);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (!ready.ok()) {
      if (ready.IsUnavailable()) continue;  // Poll timeout: re-check stop.
      RTREC_LOG(kError) << "stats acceptor poll failed: " << ready.ToString();
      break;
    }
    int fd = accept4(listen_fd_.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      RTREC_LOG(kWarn) << "stats accept4: " << strerror(errno);
      continue;
    }
    ServeOne(fd);
    ::close(fd);
  }
}

namespace {

/// Path of the request line ("GET /quality HTTP/1.1" → "/quality"), or
/// "/" when the first chunk does not parse as one.
std::string RequestPath(const char* buf, std::size_t len) {
  const std::string_view request(buf, len);
  const std::size_t sp = request.find(' ');
  if (sp == std::string_view::npos) return "/";
  const std::size_t start = sp + 1;
  const std::size_t end = request.find_first_of(" \r\n", start);
  if (end == std::string_view::npos || end == start) return "/";
  return std::string(request.substr(start, end - start));
}

/// Keeps only the metrics of the `quality.` namespace: every exposition
/// line (including its # TYPE header) whose metric name starts with
/// "quality_" after Prometheus name sanitization.
std::string FilterQualitySection(const std::string& text) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size() - 1;
    const std::string_view line(text.data() + pos, eol - pos + 1);
    const bool comment = line.rfind("# TYPE ", 0) == 0;
    const std::string_view name =
        comment ? line.substr(7) : line;
    if (name.rfind("quality_", 0) == 0) out.append(line);
    pos = eol + 1;
  }
  return out;
}

}  // namespace

void StatsServer::ServeOne(int fd) {
  // Read whatever arrives in the first chunk and parse just the request
  // path out of it; route by path (see class comment). A collector that
  // pipelines or sends a huge request still gets a scrape.
  char buf[4096];
  ssize_t got = 0;
  if (WaitReady(fd, /*for_read=*/true, options_.io_timeout_ms).ok()) {
    got = read(fd, buf, sizeof(buf));
  }
  std::string path =
      got > 0 ? RequestPath(buf, static_cast<std::size_t>(got)) : "/";
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  scrapes_->Increment();

  const char* status_line = "200 OK";
  const char* content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (path == "/" || path == "/metrics") {
    MetricsRegistry::ExportOptions export_options;
    export_options.native_histograms = options_.native_histograms;
    body = registry_->PrometheusText(export_options);
  } else if (path == "/quality") {
    body = FilterQualitySection(registry_->PrometheusText());
  } else if (path == "/healthz") {
    content_type = "text/plain; charset=utf-8";
    body = StringPrintf("ok shard=%d\n", options_.shard_id);
  } else if (path == "/traces" && options_.spans != nullptr) {
    content_type = "application/json";
    options_.spans->Flush();
    body = options_.spans->ExportChromeJson();
  } else if (path == "/traces/slow" && options_.spans != nullptr) {
    content_type = "application/json";
    options_.spans->Flush();
    body = options_.spans->ExportSlowJson();
  } else {
    status_line = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found\n";
  }
  std::string response =
      StringPrintf("HTTP/1.0 %s\r\n"
                   "Content-Type: %s\r\n"
                   "Content-Length: %zu\r\n"
                   "Connection: close\r\n"
                   "\r\n",
                   status_line, content_type, body.size());
  response += body;
  std::size_t sent = 0;
  while (sent < response.size()) {
    if (!WaitReady(fd, /*for_read=*/false, options_.io_timeout_ms).ok()) {
      return;  // Slow or dead collector; drop the scrape.
    }
    ssize_t n = write(fd, response.data() + sent, response.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace rtrec
