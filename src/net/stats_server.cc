#include "net/stats_server.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/string_util.h"

namespace rtrec {

StatsServer::StatsServer(MetricsRegistry* registry, Options options)
    : registry_(registry), options_(std::move(options)) {
  scrapes_ = registry_->GetCounter("stats.scrapes");
}

StatsServer::~StatsServer() { Stop(); }

Status StatsServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("stats server already running");
  }
  stopping_.store(false, std::memory_order_release);
  auto listener = ListenTcp(options_.host, options_.port, /*backlog=*/16);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(*listener);
  auto port = LocalPort(listen_fd_.get());
  if (!port.ok()) return port.status();
  port_ = *port;
  thread_ = std::thread([this] { AcceptLoop(); });
  running_.store(true, std::memory_order_release);
  RTREC_LOG(kInfo) << "StatsServer listening on " << options_.host << ":"
                   << port_;
  return Status::OK();
}

void StatsServer::Stop() {
  stopping_.store(true, std::memory_order_release);
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  listen_fd_.Reset();
  port_ = 0;
}

void StatsServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Status ready = WaitReady(listen_fd_.get(), /*for_read=*/true,
                             /*timeout_ms=*/250);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (!ready.ok()) {
      if (ready.IsUnavailable()) continue;  // Poll timeout: re-check stop.
      RTREC_LOG(kError) << "stats acceptor poll failed: " << ready.ToString();
      break;
    }
    int fd = accept4(listen_fd_.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      RTREC_LOG(kWarn) << "stats accept4: " << strerror(errno);
      continue;
    }
    ServeOne(fd);
    ::close(fd);
  }
}

void StatsServer::ServeOne(int fd) {
  // Read whatever request line/headers arrive in the first chunk and
  // ignore them: every request is treated as GET /metrics. A collector
  // that pipelines or sends a huge request gets the scrape anyway.
  char buf[4096];
  if (WaitReady(fd, /*for_read=*/true, options_.io_timeout_ms).ok()) {
    [[maybe_unused]] ssize_t ignored = read(fd, buf, sizeof(buf));
  }
  scrapes_->Increment();
  const std::string body = registry_->PrometheusText();
  std::string response =
      StringPrintf("HTTP/1.0 200 OK\r\n"
                   "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                   "Content-Length: %zu\r\n"
                   "Connection: close\r\n"
                   "\r\n",
                   body.size());
  response += body;
  std::size_t sent = 0;
  while (sent < response.size()) {
    if (!WaitReady(fd, /*for_read=*/false, options_.io_timeout_ms).ok()) {
      return;  // Slow or dead collector; drop the scrape.
    }
    ssize_t n = write(fd, response.data() + sent, response.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace rtrec
