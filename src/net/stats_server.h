#ifndef RTREC_NET_STATS_SERVER_H_
#define RTREC_NET_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"
#include "net/socket.h"

namespace rtrec {

namespace obs {
class SpanCollector;
}  // namespace obs

/// Minimal HTTP endpoint exposing a MetricsRegistry in Prometheus
/// text-format (0.0.4) — the `--stats-port` behind `examples/serve.cpp`,
/// so a stock Prometheus (or curl) can scrape the serving stack without
/// speaking the rtrec wire protocol.
///
/// Deliberately tiny: one accept-loop thread, one connection at a time,
/// Connection: close. Routing is by request path only:
///   "/" and "/metrics"  → full registry scrape (text-format 0.0.4)
///   "/quality"          → scrape narrowed to the `quality_*` section
///   "/healthz"          → 200 "ok shard=<id>" liveness probe
///   "/traces"           → Chrome trace-event JSON of finished traces
///                         (Options::spans; 404 when unset)
///   "/traces/slow"      → slowest-N traces with per-stage breakdown
///   anything else       → 404
/// Scrapes arrive every few seconds from one collector; this is not a
/// web server and does not try to be one.
class StatsServer {
 public:
  struct Options {
    /// IPv4 address to bind; loopback by default.
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port; read it back via port().
    std::uint16_t port = 0;
    /// Per-connection read/write poll timeout.
    int io_timeout_ms = 2'000;
    /// Shard id reported by /healthz (and useful to tell multi-shard
    /// deployments apart when each shard runs its own stats port).
    int shard_id = 0;
    /// When set, /traces and /traces/slow serve this collector's export
    /// JSON (obs/span_collector.h). Null answers those paths with 404.
    obs::SpanCollector* spans = nullptr;
    /// Export native Prometheus histogram families (cumulative
    /// `_bucket{le=...}`) alongside the summary lines on full scrapes.
    bool native_histograms = false;
  };

  /// Serves scrapes of `registry` (not owned; must outlive the server).
  StatsServer(MetricsRegistry* registry, Options options);
  ~StatsServer();  ///< Stops the server if still running.

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Binds, listens, and spawns the accept-loop thread.
  Status Start();

  /// Stops accepting and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound port (useful with Options::port == 0). 0 before Start.
  std::uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeOne(int fd);

  MetricsRegistry* registry_;
  Options options_;

  UniqueFd listen_fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  Counter* scrapes_ = nullptr;
  std::thread thread_;
};

}  // namespace rtrec

#endif  // RTREC_NET_STATS_SERVER_H_
