#include "net/wire.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/string_util.h"

namespace rtrec {
namespace {

// --- Big-endian primitive writers -----------------------------------------

void PutU8(std::uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v >> 8));
  out->push_back(static_cast<char>(v));
}

void PutU32(std::uint32_t v, std::string* out) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>(v >> shift));
  }
}

void PutU64(std::uint64_t v, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>(v >> shift));
  }
}

void PutI64(std::int64_t v, std::string* out) {
  PutU64(static_cast<std::uint64_t>(v), out);
}

void PutF64(double v, std::string* out) {
  PutU64(std::bit_cast<std::uint64_t>(v), out);
}

// --- Bounds-checked big-endian reader -------------------------------------

class BodyReader {
 public:
  explicit BodyReader(std::string_view body) : data_(body) {}

  bool ReadU8(std::uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU16(std::uint16_t* v) {
    if (pos_ + 2 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v = static_cast<std::uint16_t>(
          (*v << 8) | static_cast<std::uint8_t>(data_[pos_++]));
    }
    return true;
  }

  bool ReadU32(std::uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v = (*v << 8) | static_cast<std::uint8_t>(data_[pos_++]);
    }
    return true;
  }

  bool ReadU64(std::uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v = (*v << 8) | static_cast<std::uint8_t>(data_[pos_++]);
    }
    return true;
  }

  bool ReadI64(std::int64_t* v) {
    std::uint64_t u;
    if (!ReadU64(&u)) return false;
    *v = static_cast<std::int64_t>(u);
    return true;
  }

  bool ReadF64(double* v) {
    std::uint64_t u;
    if (!ReadU64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }

  bool ReadBytes(std::size_t n, std::string* out) {
    if (pos_ + n > data_.size()) return false;
    out->assign(data_.substr(pos_, n));
    pos_ += n;
    return true;
  }

  /// Decoders reject bodies with unread trailing bytes: a well-formed
  /// peer never sends them, so they signal version skew or corruption.
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(StringPrintf("truncated %s body", what));
}

Status TrailingGarbage(const char* what) {
  return Status::InvalidArgument(
      StringPrintf("trailing bytes after %s body", what));
}

Status WrongType(const char* expected, MessageType got) {
  return Status::InvalidArgument(
      StringPrintf("expected %s, got %s", expected, MessageTypeToString(got)));
}

std::string EncodeEmpty(MessageType type, std::uint64_t request_id) {
  Frame frame;
  frame.type = type;
  frame.request_id = request_id;
  std::string out;
  AppendFrame(frame, &out);
  return out;
}

}  // namespace

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kPingRequest: return "ping_request";
    case MessageType::kRecommendRequest: return "recommend_request";
    case MessageType::kObserveRequest: return "observe_request";
    case MessageType::kRegisterProfileRequest: return "register_profile_request";
    case MessageType::kStatsRequest: return "stats_request";
    case MessageType::kHelloRequest: return "hello_request";
    case MessageType::kBatchRecommendRequest: return "batch_recommend_request";
    case MessageType::kPongResponse: return "pong_response";
    case MessageType::kRecommendResponse: return "recommend_response";
    case MessageType::kAckResponse: return "ack_response";
    case MessageType::kErrorResponse: return "error_response";
    case MessageType::kStatsResponse: return "stats_response";
    case MessageType::kHelloResponse: return "hello_response";
    case MessageType::kBatchRecommendResponse:
      return "batch_recommend_response";
  }
  return "unknown";
}

const char* WireErrorToString(WireError error) {
  switch (error) {
    case WireError::kMalformedFrame: return "MALFORMED_FRAME";
    case WireError::kBadVersion: return "BAD_VERSION";
    case WireError::kUnknownType: return "UNKNOWN_TYPE";
    case WireError::kBadRequest: return "BAD_REQUEST";
    case WireError::kOverloaded: return "OVERLOADED";
    case WireError::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

void AppendFrame(const Frame& frame, std::string* out) {
  const std::size_t extension = frame.has_trace ? kTraceExtensionBytes : 0;
  PutU32(static_cast<std::uint32_t>(kFrameHeaderBytes + extension +
                                    frame.body.size()),
         out);
  PutU8(frame.has_trace
            ? static_cast<std::uint8_t>(frame.version | kFrameVersionTraceBit)
            : frame.version,
        out);
  PutU8(static_cast<std::uint8_t>(frame.type), out);
  PutU64(frame.request_id, out);
  if (frame.has_trace) {
    PutU64(frame.trace_id, out);
    PutU8(frame.trace_flags, out);
    PutU8(frame.trace_hop, out);
  }
  out->append(frame.body);
}

void StampTraceExtension(std::string* encoded_frame, std::uint64_t trace_id,
                         std::uint8_t flags, std::uint8_t hop) {
  const std::size_t header = kLengthPrefixBytes + kFrameHeaderBytes;
  if (encoded_frame->size() < header) return;  // Not a complete frame.
  std::string extension;
  extension.reserve(kTraceExtensionBytes);
  PutU64(trace_id, &extension);
  PutU8(flags, &extension);
  PutU8(hop, &extension);
  encoded_frame->insert(header, extension);
  std::uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len =
        (payload_len << 8) | static_cast<std::uint8_t>((*encoded_frame)[i]);
  }
  payload_len += static_cast<std::uint32_t>(kTraceExtensionBytes);
  for (int i = 0; i < 4; ++i) {
    (*encoded_frame)[i] = static_cast<char>(payload_len >> (24 - 8 * i));
  }
  (*encoded_frame)[4] = static_cast<char>(
      static_cast<std::uint8_t>((*encoded_frame)[4]) | kFrameVersionTraceBit);
}

StatusOr<Frame> FrameDecoder::Next() {
  if (buffer_.size() < kLengthPrefixBytes) {
    return Status::NotFound("incomplete length prefix");
  }
  std::uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len = (payload_len << 8) | static_cast<std::uint8_t>(buffer_[i]);
  }
  if (payload_len < kFrameHeaderBytes) {
    return Status::Corruption(StringPrintf(
        "frame payload length %u below the %zu-byte header",
        payload_len, kFrameHeaderBytes));
  }
  if (payload_len > max_frame_bytes_) {
    return Status::Corruption(StringPrintf(
        "frame payload length %u exceeds the %zu-byte cap", payload_len,
        max_frame_bytes_));
  }
  const std::size_t total = kLengthPrefixBytes + payload_len;
  if (buffer_.size() < total) {
    return Status::NotFound("incomplete frame");
  }
  Frame frame;
  frame.version = static_cast<std::uint8_t>(buffer_[4]);
  frame.type = static_cast<MessageType>(static_cast<std::uint8_t>(buffer_[5]));
  frame.request_id = 0;
  for (int i = 6; i < 14; ++i) {
    frame.request_id =
        (frame.request_id << 8) | static_cast<std::uint8_t>(buffer_[i]);
  }
  std::size_t body_offset = kLengthPrefixBytes + kFrameHeaderBytes;
  std::size_t body_len = payload_len - kFrameHeaderBytes;
  if ((frame.version & kFrameVersionTraceBit) != 0) {
    if (body_len < kTraceExtensionBytes) {
      return Status::Corruption(StringPrintf(
          "frame payload length %u too short for the trace extension",
          payload_len));
    }
    frame.version &= static_cast<std::uint8_t>(~kFrameVersionTraceBit);
    frame.has_trace = true;
    frame.trace_id = 0;
    for (std::size_t i = body_offset; i < body_offset + 8; ++i) {
      frame.trace_id =
          (frame.trace_id << 8) | static_cast<std::uint8_t>(buffer_[i]);
    }
    frame.trace_flags = static_cast<std::uint8_t>(buffer_[body_offset + 8]);
    frame.trace_hop = static_cast<std::uint8_t>(buffer_[body_offset + 9]);
    body_offset += kTraceExtensionBytes;
    body_len -= kTraceExtensionBytes;
  }
  frame.body.assign(buffer_, body_offset, body_len);
  buffer_.erase(0, total);
  return frame;
}

// ---------------------------------------------------------------------------
// Requests.

std::string EncodePingRequest(std::uint64_t request_id) {
  return EncodeEmpty(MessageType::kPingRequest, request_id);
}

std::string EncodeStatsRequest(std::uint64_t request_id) {
  return EncodeEmpty(MessageType::kStatsRequest, request_id);
}

namespace {

void AppendRecommendBody(const RecRequest& request, std::string* body) {
  PutU64(request.user, body);
  PutI64(request.now, body);
  PutU32(static_cast<std::uint32_t>(request.top_n), body);
  PutU32(static_cast<std::uint32_t>(request.seed_videos.size()), body);
  for (VideoId seed : request.seed_videos) PutU64(seed, body);
}

Status ReadRecommendBody(BodyReader& reader, const char* what,
                         RecRequest* request) {
  std::uint32_t top_n = 0;
  std::uint32_t num_seeds = 0;
  if (!reader.ReadU64(&request->user) || !reader.ReadI64(&request->now) ||
      !reader.ReadU32(&top_n) || !reader.ReadU32(&num_seeds)) {
    return Truncated(what);
  }
  if (num_seeds > kMaxListedVideos) {
    return Status::InvalidArgument(StringPrintf(
        "%s lists %u seeds (cap %zu)", what, num_seeds, kMaxListedVideos));
  }
  request->top_n = top_n;
  request->seed_videos.clear();
  request->seed_videos.reserve(num_seeds);
  for (std::uint32_t i = 0; i < num_seeds; ++i) {
    VideoId seed = 0;
    if (!reader.ReadU64(&seed)) return Truncated(what);
    request->seed_videos.push_back(seed);
  }
  return Status::OK();
}

}  // namespace

std::string EncodeRecommendRequest(std::uint64_t request_id,
                                   const RecRequest& request) {
  Frame frame;
  frame.type = MessageType::kRecommendRequest;
  frame.request_id = request_id;
  AppendRecommendBody(request, &frame.body);
  std::string out;
  AppendFrame(frame, &out);
  return out;
}

StatusOr<RecRequest> DecodeRecommendRequest(const Frame& frame) {
  if (frame.type != MessageType::kRecommendRequest) {
    return WrongType("recommend_request", frame.type);
  }
  BodyReader reader(frame.body);
  RecRequest request;
  RTREC_RETURN_IF_ERROR(
      ReadRecommendBody(reader, "recommend_request", &request));
  if (!reader.AtEnd()) return TrailingGarbage("recommend_request");
  return request;
}

std::string EncodeHelloRequest(std::uint64_t request_id,
                               const HelloRequest& hello) {
  Frame frame;
  frame.version = kWireVersion;  // Parseable by every server (§5).
  frame.type = MessageType::kHelloRequest;
  frame.request_id = request_id;
  PutU8(hello.min_version, &frame.body);
  PutU8(hello.max_version, &frame.body);
  PutU32(hello.features, &frame.body);
  std::string out;
  AppendFrame(frame, &out);
  return out;
}

StatusOr<HelloRequest> DecodeHelloRequest(const Frame& frame) {
  if (frame.type != MessageType::kHelloRequest) {
    return WrongType("hello_request", frame.type);
  }
  BodyReader reader(frame.body);
  HelloRequest hello;
  if (!reader.ReadU8(&hello.min_version) ||
      !reader.ReadU8(&hello.max_version) || !reader.ReadU32(&hello.features)) {
    return Truncated("hello_request");
  }
  if (hello.min_version == 0 || hello.min_version > hello.max_version) {
    return Status::InvalidArgument(StringPrintf(
        "hello_request version range [%u, %u] is empty or zero-based",
        hello.min_version, hello.max_version));
  }
  if (!reader.AtEnd()) return TrailingGarbage("hello_request");
  return hello;
}

std::string EncodeBatchRecommendRequest(std::uint64_t request_id,
                                        const std::vector<RecRequest>& batch) {
  Frame frame;
  frame.version = kWireVersionV2;
  frame.type = MessageType::kBatchRecommendRequest;
  frame.request_id = request_id;
  PutU32(static_cast<std::uint32_t>(batch.size()), &frame.body);
  for (const RecRequest& request : batch) {
    AppendRecommendBody(request, &frame.body);
  }
  std::string out;
  AppendFrame(frame, &out);
  return out;
}

StatusOr<std::vector<RecRequest>> DecodeBatchRecommendRequest(
    const Frame& frame) {
  if (frame.type != MessageType::kBatchRecommendRequest) {
    return WrongType("batch_recommend_request", frame.type);
  }
  BodyReader reader(frame.body);
  std::uint32_t count = 0;
  if (!reader.ReadU32(&count)) return Truncated("batch_recommend_request");
  if (count == 0 || count > kMaxBatchedRequests) {
    return Status::InvalidArgument(StringPrintf(
        "batch_recommend_request carries %u items (cap %zu, min 1)", count,
        kMaxBatchedRequests));
  }
  std::vector<RecRequest> batch;
  batch.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RecRequest request;
    RTREC_RETURN_IF_ERROR(
        ReadRecommendBody(reader, "batch_recommend_request", &request));
    batch.push_back(std::move(request));
  }
  if (!reader.AtEnd()) return TrailingGarbage("batch_recommend_request");
  return batch;
}

std::string EncodeObserveRequest(std::uint64_t request_id,
                                 const UserAction& action) {
  Frame frame;
  frame.type = MessageType::kObserveRequest;
  frame.request_id = request_id;
  PutU64(action.user, &frame.body);
  PutU64(action.video, &frame.body);
  PutU8(static_cast<std::uint8_t>(action.type), &frame.body);
  PutF64(action.view_fraction, &frame.body);
  PutI64(action.time, &frame.body);
  std::string out;
  AppendFrame(frame, &out);
  return out;
}

StatusOr<UserAction> DecodeObserveRequest(const Frame& frame) {
  if (frame.type != MessageType::kObserveRequest) {
    return WrongType("observe_request", frame.type);
  }
  BodyReader reader(frame.body);
  UserAction action;
  std::uint8_t type = 0;
  if (!reader.ReadU64(&action.user) || !reader.ReadU64(&action.video) ||
      !reader.ReadU8(&type) || !reader.ReadF64(&action.view_fraction) ||
      !reader.ReadI64(&action.time)) {
    return Truncated("observe_request");
  }
  if (type >= kNumActionTypes) {
    return Status::InvalidArgument(
        StringPrintf("observe_request action type %u out of range", type));
  }
  action.type = static_cast<ActionType>(type);
  if (!std::isfinite(action.view_fraction) || action.view_fraction < 0.0 ||
      action.view_fraction > 1.0) {
    return Status::InvalidArgument(
        "observe_request view fraction outside [0, 1]");
  }
  if (!reader.AtEnd()) return TrailingGarbage("observe_request");
  return action;
}

std::string EncodeRegisterProfileRequest(std::uint64_t request_id, UserId user,
                                         const UserProfile& profile) {
  Frame frame;
  frame.type = MessageType::kRegisterProfileRequest;
  frame.request_id = request_id;
  PutU64(user, &frame.body);
  PutU8(profile.registered ? 1 : 0, &frame.body);
  PutU8(static_cast<std::uint8_t>(profile.gender), &frame.body);
  PutU8(static_cast<std::uint8_t>(profile.age), &frame.body);
  PutU8(static_cast<std::uint8_t>(profile.education), &frame.body);
  std::string out;
  AppendFrame(frame, &out);
  return out;
}

StatusOr<ProfileUpdate> DecodeRegisterProfileRequest(const Frame& frame) {
  if (frame.type != MessageType::kRegisterProfileRequest) {
    return WrongType("register_profile_request", frame.type);
  }
  BodyReader reader(frame.body);
  ProfileUpdate update;
  std::uint8_t registered = 0, gender = 0, age = 0, education = 0;
  if (!reader.ReadU64(&update.user) || !reader.ReadU8(&registered) ||
      !reader.ReadU8(&gender) || !reader.ReadU8(&age) ||
      !reader.ReadU8(&education)) {
    return Truncated("register_profile_request");
  }
  if (registered > 1 || gender >= kNumGenders || age >= kNumAgeBuckets ||
      education >= kNumEducationLevels) {
    return Status::InvalidArgument(
        "register_profile_request field out of range");
  }
  update.profile.registered = registered != 0;
  update.profile.gender = static_cast<Gender>(gender);
  update.profile.age = static_cast<AgeBucket>(age);
  update.profile.education = static_cast<Education>(education);
  if (!reader.AtEnd()) return TrailingGarbage("register_profile_request");
  return update;
}

// ---------------------------------------------------------------------------
// Responses.

std::string EncodePongResponse(std::uint64_t request_id) {
  return EncodeEmpty(MessageType::kPongResponse, request_id);
}

std::string EncodeAckResponse(std::uint64_t request_id) {
  return EncodeEmpty(MessageType::kAckResponse, request_id);
}

std::string EncodeRecommendResponse(std::uint64_t request_id,
                                    const std::vector<ScoredVideo>& results,
                                    std::uint8_t flags) {
  Frame frame;
  frame.type = MessageType::kRecommendResponse;
  frame.request_id = request_id;
  PutU8(flags, &frame.body);
  PutU32(static_cast<std::uint32_t>(results.size()), &frame.body);
  for (const ScoredVideo& r : results) {
    PutU64(r.video, &frame.body);
    PutF64(r.score, &frame.body);
  }
  std::string out;
  AppendFrame(frame, &out);
  return out;
}

StatusOr<RecommendReply> DecodeRecommendReply(const Frame& frame) {
  if (frame.type != MessageType::kRecommendResponse) {
    return WrongType("recommend_response", frame.type);
  }
  BodyReader reader(frame.body);
  RecommendReply reply;
  std::uint32_t count = 0;
  if (!reader.ReadU8(&reply.flags) || !reader.ReadU32(&count)) {
    return Truncated("recommend_response");
  }
  if (count > kMaxListedVideos) {
    return Status::InvalidArgument(
        StringPrintf("recommend_response lists %u videos (cap %zu)", count,
                     kMaxListedVideos));
  }
  reply.videos.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ScoredVideo r;
    if (!reader.ReadU64(&r.video) || !reader.ReadF64(&r.score)) {
      return Truncated("recommend_response");
    }
    reply.videos.push_back(r);
  }
  if (!reader.AtEnd()) return TrailingGarbage("recommend_response");
  return reply;
}

StatusOr<std::vector<ScoredVideo>> DecodeRecommendResponse(
    const Frame& frame) {
  StatusOr<RecommendReply> reply = DecodeRecommendReply(frame);
  RTREC_RETURN_IF_ERROR(reply.status());
  return std::move(reply->videos);
}

std::string EncodeHelloResponse(std::uint64_t request_id,
                                const HelloReply& reply) {
  Frame frame;
  frame.version = kWireVersion;  // Parseable by every client (§5).
  frame.type = MessageType::kHelloResponse;
  frame.request_id = request_id;
  PutU8(reply.version, &frame.body);
  PutU32(reply.features, &frame.body);
  PutU32(reply.max_in_flight_hint, &frame.body);
  PutU32(reply.max_batch, &frame.body);
  std::string out;
  AppendFrame(frame, &out);
  return out;
}

StatusOr<HelloReply> DecodeHelloResponse(const Frame& frame) {
  if (frame.type != MessageType::kHelloResponse) {
    return WrongType("hello_response", frame.type);
  }
  BodyReader reader(frame.body);
  HelloReply reply;
  if (!reader.ReadU8(&reply.version) || !reader.ReadU32(&reply.features) ||
      !reader.ReadU32(&reply.max_in_flight_hint) ||
      !reader.ReadU32(&reply.max_batch)) {
    return Truncated("hello_response");
  }
  if (reply.version == 0 || reply.version > kMaxWireVersion) {
    return Status::InvalidArgument(StringPrintf(
        "hello_response selected unsupported version %u", reply.version));
  }
  if (!reader.AtEnd()) return TrailingGarbage("hello_response");
  return reply;
}

std::string EncodeBatchRecommendResponse(
    std::uint64_t request_id, const std::vector<BatchRecommendItem>& items) {
  Frame frame;
  frame.version = kWireVersionV2;
  frame.type = MessageType::kBatchRecommendResponse;
  frame.request_id = request_id;
  PutU32(static_cast<std::uint32_t>(items.size()), &frame.body);
  for (const BatchRecommendItem& item : items) {
    PutU8(item.error, &frame.body);
    PutU8(item.reply.flags, &frame.body);
    // A failed item carries no videos regardless of what the handler left
    // in the reply — keeps the frame small and the contract unambiguous.
    const std::size_t num_videos = item.ok() ? item.reply.videos.size() : 0;
    PutU32(static_cast<std::uint32_t>(num_videos), &frame.body);
    for (std::size_t j = 0; j < num_videos; ++j) {
      PutU64(item.reply.videos[j].video, &frame.body);
      PutF64(item.reply.videos[j].score, &frame.body);
    }
  }
  std::string out;
  AppendFrame(frame, &out);
  return out;
}

StatusOr<std::vector<BatchRecommendItem>> DecodeBatchRecommendResponse(
    const Frame& frame) {
  if (frame.type != MessageType::kBatchRecommendResponse) {
    return WrongType("batch_recommend_response", frame.type);
  }
  BodyReader reader(frame.body);
  std::uint32_t count = 0;
  if (!reader.ReadU32(&count)) return Truncated("batch_recommend_response");
  if (count == 0 || count > kMaxBatchedRequests) {
    return Status::InvalidArgument(StringPrintf(
        "batch_recommend_response carries %u items (cap %zu, min 1)", count,
        kMaxBatchedRequests));
  }
  std::vector<BatchRecommendItem> items;
  items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    BatchRecommendItem item;
    std::uint32_t num_videos = 0;
    if (!reader.ReadU8(&item.error) || !reader.ReadU8(&item.reply.flags) ||
        !reader.ReadU32(&num_videos)) {
      return Truncated("batch_recommend_response");
    }
    if (num_videos > kMaxListedVideos) {
      return Status::InvalidArgument(
          StringPrintf("batch_recommend_response item %u lists %u videos "
                       "(cap %zu)",
                       i, num_videos, kMaxListedVideos));
    }
    item.reply.videos.reserve(num_videos);
    for (std::uint32_t j = 0; j < num_videos; ++j) {
      ScoredVideo r;
      if (!reader.ReadU64(&r.video) || !reader.ReadF64(&r.score)) {
        return Truncated("batch_recommend_response");
      }
      item.reply.videos.push_back(r);
    }
    items.push_back(std::move(item));
  }
  if (!reader.AtEnd()) return TrailingGarbage("batch_recommend_response");
  return items;
}

std::string EncodeStatsResponse(std::uint64_t request_id,
                                std::string_view text,
                                std::size_t max_text_bytes) {
  if (text.size() > max_text_bytes) {
    // Cut at the last newline that fits: a Prometheus payload must be
    // whole lines, and a registry can outgrow the frame cap.
    const std::size_t cut = text.rfind('\n', max_text_bytes);
    text = cut == std::string_view::npos ? std::string_view()
                                         : text.substr(0, cut + 1);
  }
  Frame frame;
  frame.type = MessageType::kStatsResponse;
  frame.request_id = request_id;
  PutU32(static_cast<std::uint32_t>(text.size()), &frame.body);
  frame.body.append(text);
  std::string out;
  AppendFrame(frame, &out);
  return out;
}

StatusOr<std::string> DecodeStatsResponse(const Frame& frame) {
  if (frame.type != MessageType::kStatsResponse) {
    return WrongType("stats_response", frame.type);
  }
  BodyReader reader(frame.body);
  std::uint32_t len = 0;
  if (!reader.ReadU32(&len)) return Truncated("stats_response");
  std::string text;
  if (!reader.ReadBytes(len, &text)) return Truncated("stats_response");
  if (!reader.AtEnd()) return TrailingGarbage("stats_response");
  return text;
}

std::string EncodeErrorResponse(std::uint64_t request_id, WireError code,
                                std::string_view message) {
  Frame frame;
  frame.type = MessageType::kErrorResponse;
  frame.request_id = request_id;
  const std::size_t len =
      std::min<std::size_t>(message.size(), 0xFFFF);  // u16 length field
  PutU8(static_cast<std::uint8_t>(code), &frame.body);
  PutU16(static_cast<std::uint16_t>(len), &frame.body);
  frame.body.append(message.substr(0, len));
  std::string out;
  AppendFrame(frame, &out);
  return out;
}

StatusOr<WireErrorInfo> DecodeErrorResponse(const Frame& frame) {
  if (frame.type != MessageType::kErrorResponse) {
    return WrongType("error_response", frame.type);
  }
  BodyReader reader(frame.body);
  std::uint8_t code = 0;
  std::uint16_t len = 0;
  if (!reader.ReadU8(&code) || !reader.ReadU16(&len)) {
    return Truncated("error_response");
  }
  if (code < static_cast<std::uint8_t>(WireError::kMalformedFrame) ||
      code > static_cast<std::uint8_t>(WireError::kInternal)) {
    return Status::InvalidArgument(
        StringPrintf("error_response code %u out of range", code));
  }
  WireErrorInfo info;
  info.code = static_cast<WireError>(code);
  if (!reader.ReadBytes(len, &info.message)) return Truncated("error_response");
  if (!reader.AtEnd()) return TrailingGarbage("error_response");
  return info;
}

Status WireErrorToStatus(const WireErrorInfo& error) {
  const std::string msg = StringPrintf("%s: %s", WireErrorToString(error.code),
                                       error.message.c_str());
  switch (error.code) {
    case WireError::kOverloaded:
      return Status::Unavailable(msg);
    case WireError::kMalformedFrame:
    case WireError::kBadVersion:
    case WireError::kUnknownType:
    case WireError::kBadRequest:
      return Status::InvalidArgument(msg);
    case WireError::kInternal:
      return Status::Internal(msg);
  }
  return Status::Internal(msg);
}

}  // namespace rtrec
