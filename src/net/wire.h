#ifndef RTREC_NET_WIRE_H_
#define RTREC_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/action.h"
#include "core/recommender.h"
#include "demographic/profile.h"

namespace rtrec {

/// The rtrec binary wire protocol, versions 1 and 2. The normative spec
/// lives in docs/WIRE_PROTOCOL.md; this header is its implementation.
///
/// Every message travels in one length-prefixed frame:
///
///   offset  size  field
///   ------  ----  -----------------------------------------------
///        0     4  payload length N, big-endian (bytes after this field)
///        4     1  protocol version (1 or 2; see below)
///        5     1  message type (MessageType)
///        6     8  request id, big-endian (echoed back in the response)
///       14   N-10 message body (layout depends on the type)
///
/// All multi-byte integers are big-endian; doubles are the IEEE-754 bit
/// pattern as a big-endian u64. The payload length covers version, type,
/// request id, and body, so the minimum legal value is
/// kFrameHeaderBytes (10) and the maximum is enforced by the receiver
/// (Options::max_frame_bytes; kDefaultMaxFrameBytes by default). A peer
/// that sends a length outside those bounds is structurally corrupt and
/// gets disconnected after a typed ErrorResponse.
///
/// Version 2 keeps the frame layout bit-identical and adds semantics:
///
///  - negotiation: a client that wants v2 sends a Hello frame (carried
///    with version byte 1 so any server can parse it) naming the version
///    range it speaks; a v2 server answers HelloResponse with the chosen
///    version, a v1 server answers a typed UNKNOWN_TYPE error — the
///    client then falls back to v1. A connection on which no Hello
///    succeeded is a v1 connection and version-2 frames on it are
///    rejected with BAD_VERSION (WIRE_PROTOCOL.md §5);
///  - pipelining: on a negotiated v2 connection any number of requests
///    may be in flight; responses correlate by request id and MAY arrive
///    in any order (§6);
///  - batching: BatchRecommend carries up to kMaxBatchedRequests
///    Recommend bodies in one frame and is answered by one
///    BatchRecommendResponse with per-item status (§7).

/// Version-1 protocol tag; also the version every Hello frame carries.
inline constexpr std::uint8_t kWireVersion = 1;

/// Version-2 protocol tag: pipelined, out-of-order responses, batching.
inline constexpr std::uint8_t kWireVersionV2 = 2;

/// Highest version this implementation speaks.
inline constexpr std::uint8_t kMaxWireVersion = kWireVersionV2;

/// Bytes of payload occupied by version + type + request id.
inline constexpr std::size_t kFrameHeaderBytes = 10;

/// Bytes of the leading length prefix.
inline constexpr std::size_t kLengthPrefixBytes = 4;

// --- Trace propagation (docs/WIRE_PROTOCOL.md §2.1, §5.5) ------------------

/// Hello feature bit: the peer understands the per-frame trace
/// extension. A connection carries trace contexts only when the client
/// offered this bit and the server echoed it back.
inline constexpr std::uint32_t kFeatureTracePropagation = 0x1;

/// Bit set on the frame's version byte when a trace extension sits
/// between the request id and the body. Stripped (and the version
/// masked back) by FrameDecoder, so dispatchers and codecs never see it.
inline constexpr std::uint8_t kFrameVersionTraceBit = 0x80;

/// Bytes of the trace extension: u64 trace id, u8 flags, u8 hop.
inline constexpr std::size_t kTraceExtensionBytes = 10;

/// Trace-extension flag: the originator sampled this trace; the server
/// adopts the context instead of minting its own root.
inline constexpr std::uint8_t kTraceFlagSampled = 0x01;

/// Default cap on the payload length a receiver will accept.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1 << 20;  // 1 MiB

/// Cap on seed videos per RecommendRequest and results per
/// RecommendResponse; a peer exceeding it is sending garbage.
inline constexpr std::size_t kMaxListedVideos = 4096;

/// Cap on Recommend bodies per BatchRecommendRequest (v2). One batch
/// frame occupies one admission-control slot on the server, so the cap
/// bounds the work a single slot can demand.
inline constexpr std::size_t kMaxBatchedRequests = 64;

/// Message discriminator. Requests have the high bit clear, responses set.
enum class MessageType : std::uint8_t {
  kPingRequest = 0x01,
  kRecommendRequest = 0x02,
  kObserveRequest = 0x03,
  kRegisterProfileRequest = 0x04,
  kStatsRequest = 0x05,
  kHelloRequest = 0x06,           ///< v2 negotiation (frame version is 1).
  kBatchRecommendRequest = 0x07,  ///< v2 only.

  kPongResponse = 0x81,
  kRecommendResponse = 0x82,
  kAckResponse = 0x83,
  kErrorResponse = 0x84,
  kStatsResponse = 0x85,
  kHelloResponse = 0x86,
  kBatchRecommendResponse = 0x87,
};

/// Stable name for logs ("recommend_request", ...); "unknown" if invalid.
const char* MessageTypeToString(MessageType type);

/// Typed error codes carried by ErrorResponse.
enum class WireError : std::uint8_t {
  kMalformedFrame = 1,  ///< Structurally bad frame or undecodable body.
  kBadVersion = 2,      ///< Frame version the connection may not use.
  kUnknownType = 3,     ///< Message type the server does not handle.
  kBadRequest = 4,      ///< Decoded, but semantically invalid.
  kOverloaded = 5,      ///< Shed by admission control; retry later.
  kInternal = 6,        ///< Server-side failure while handling.
};

/// Stable name for logs ("OVERLOADED", ...); "UNKNOWN" if invalid.
const char* WireErrorToString(WireError error);

/// One parsed frame: the fixed header plus the raw body bytes. When the
/// sender attached a trace extension (kFrameVersionTraceBit), the
/// decoder strips it into the trace_* fields and masks the version
/// byte, so `version` always holds a plain protocol version.
struct Frame {
  std::uint8_t version = kWireVersion;
  MessageType type = MessageType::kPingRequest;
  std::uint64_t request_id = 0;
  std::string body;

  bool has_trace = false;
  std::uint64_t trace_id = 0;
  std::uint8_t trace_flags = 0;
  std::uint8_t trace_hop = 0;
};

/// Serializes `frame` (length prefix included) onto `out`. If
/// `frame.has_trace` is set, the trace extension is emitted and the
/// version byte carries kFrameVersionTraceBit.
void AppendFrame(const Frame& frame, std::string* out);

/// Splices a trace extension into `encoded_frame` (one already-complete
/// frame as produced by the Encode* helpers): sets kFrameVersionTraceBit
/// on the version byte, inserts {trace_id, flags, hop} after the request
/// id, and patches the length prefix. Lets callers stamp a context onto
/// pre-encoded bytes without threading trace state through every codec.
void StampTraceExtension(std::string* encoded_frame, std::uint64_t trace_id,
                         std::uint8_t flags, std::uint8_t hop);

/// Incremental frame extractor for a byte stream. Feed bytes with
/// Append, then drain complete frames with Next. One decoder per
/// connection; not thread-safe.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete frame.
  ///  - OK: one frame (version is NOT validated here — callers decide
  ///    how to answer a bad version).
  ///  - NotFound: the buffer holds only a partial frame; feed more bytes.
  ///  - Corruption: structurally invalid stream (payload length below
  ///    the header size or above max_frame_bytes). The connection is
  ///    unrecoverable: framing is lost, so the caller must close it.
  StatusOr<Frame> Next();

  /// Bytes currently buffered (partial frame awaiting more input).
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
};

// ---------------------------------------------------------------------------
// Request codecs.

/// Ping: empty body.
std::string EncodePingRequest(std::uint64_t request_id);

/// Recommend body: u64 user, i64 now, u32 top_n, u32 seed count, then
/// one u64 per seed video.
std::string EncodeRecommendRequest(std::uint64_t request_id,
                                   const RecRequest& request);
StatusOr<RecRequest> DecodeRecommendRequest(const Frame& frame);

/// Observe body: u64 user, u64 video, u8 action type, f64 view
/// fraction, i64 time.
std::string EncodeObserveRequest(std::uint64_t request_id,
                                 const UserAction& action);
StatusOr<UserAction> DecodeObserveRequest(const Frame& frame);

/// Stats: empty body. Asks the server for a scrape of its metrics
/// registry; answered with a StatsResponse carrying Prometheus text.
/// Like ping, Stats bypasses admission control — observability must
/// keep working while the server is shedding load.
std::string EncodeStatsRequest(std::uint64_t request_id);

/// Hello body (request): u8 min_version, u8 max_version, u32 feature
/// bits (0; receivers ignore unknown bits). Always framed with version
/// byte kWireVersion (1) so a v1 server parses the header and answers a
/// typed UNKNOWN_TYPE error instead of dropping the connection.
struct HelloRequest {
  std::uint8_t min_version = kWireVersion;
  std::uint8_t max_version = kMaxWireVersion;
  std::uint32_t features = 0;
};
std::string EncodeHelloRequest(std::uint64_t request_id,
                               const HelloRequest& hello);
StatusOr<HelloRequest> DecodeHelloRequest(const Frame& frame);

/// BatchRecommend body (v2): u32 count, then `count` Recommend bodies
/// (u64 user, i64 now, u32 top_n, u32 seed count, u64 seeds...). The
/// whole batch shares one request id; per-item outcomes travel in the
/// BatchRecommendResponse.
std::string EncodeBatchRecommendRequest(std::uint64_t request_id,
                                        const std::vector<RecRequest>& batch);
StatusOr<std::vector<RecRequest>> DecodeBatchRecommendRequest(
    const Frame& frame);

/// RegisterProfile body: u64 user, u8 registered, u8 gender, u8 age
/// bucket, u8 education.
struct ProfileUpdate {
  UserId user = 0;
  UserProfile profile;
};
std::string EncodeRegisterProfileRequest(std::uint64_t request_id,
                                         UserId user,
                                         const UserProfile& profile);
StatusOr<ProfileUpdate> DecodeRegisterProfileRequest(const Frame& frame);

// ---------------------------------------------------------------------------
// Response codecs.

/// Pong / Ack: empty bodies.
std::string EncodePongResponse(std::uint64_t request_id);
std::string EncodeAckResponse(std::uint64_t request_id);

/// Bit set in the RecommendResponse flags byte when the server answered
/// from the degraded fallback (demographic hot videos) rather than the
/// full engine — because the engine errored, breached its deadline
/// budget, or the server's circuit breaker is open.
inline constexpr std::uint8_t kRecommendFlagDegraded = 0x01;

/// A decoded RecommendResponse: the ranked videos plus the flags byte.
struct RecommendReply {
  std::vector<ScoredVideo> videos;
  std::uint8_t flags = 0;

  bool degraded() const { return (flags & kRecommendFlagDegraded) != 0; }
};

/// RecommendResponse body: u8 flags (kRecommendFlag*; unknown bits are
/// ignored by receivers), u32 count, then (u64 video, f64 score) pairs.
std::string EncodeRecommendResponse(std::uint64_t request_id,
                                    const std::vector<ScoredVideo>& results,
                                    std::uint8_t flags = 0);
StatusOr<RecommendReply> DecodeRecommendReply(const Frame& frame);
/// Flag-discarding convenience wrapper around DecodeRecommendReply.
StatusOr<std::vector<ScoredVideo>> DecodeRecommendResponse(const Frame& frame);

/// Hello body (response): u8 negotiated version, u32 feature bits (0),
/// u32 max in-flight hint (the server's admission cap; 0 = no hint),
/// u32 batch cap (kMaxBatchedRequests of the server). The negotiated
/// version is min(client max, server max) and the server rejects a
/// Hello whose min_version is above what it speaks with BAD_VERSION.
struct HelloReply {
  std::uint8_t version = kWireVersion;
  std::uint32_t features = 0;
  std::uint32_t max_in_flight_hint = 0;
  std::uint32_t max_batch = 0;
};
std::string EncodeHelloResponse(std::uint64_t request_id,
                                const HelloReply& reply);
StatusOr<HelloReply> DecodeHelloResponse(const Frame& frame);

/// One item of a BatchRecommendResponse: a typed wire error (kNone for
/// success) plus, on success, the flags byte and ranked videos of a
/// plain RecommendResponse.
struct BatchRecommendItem {
  /// 0 = OK; otherwise a WireError value scoped to this item only.
  std::uint8_t error = 0;
  RecommendReply reply;

  bool ok() const { return error == 0; }
};

/// BatchRecommendResponse body (v2): u32 count, then per item: u8 error
/// code (0 = OK), u8 flags, u32 video count, (u64 video, f64 score)
/// pairs. Failed items carry zero videos. Item order matches the
/// request; count always equals the request's count.
std::string EncodeBatchRecommendResponse(
    std::uint64_t request_id, const std::vector<BatchRecommendItem>& items);
StatusOr<std::vector<BatchRecommendItem>> DecodeBatchRecommendResponse(
    const Frame& frame);

/// StatsResponse body: u32 text length, then that many bytes of
/// Prometheus text-format (0.0.4) metrics. The encoder truncates at the
/// last newline that fits under `max_text_bytes` so the payload is
/// always a whole number of exposition lines.
std::string EncodeStatsResponse(std::uint64_t request_id,
                                std::string_view text,
                                std::size_t max_text_bytes =
                                    kDefaultMaxFrameBytes - 1024);
StatusOr<std::string> DecodeStatsResponse(const Frame& frame);

/// ErrorResponse body: u8 error code, u16 message length, message bytes.
struct WireErrorInfo {
  WireError code = WireError::kInternal;
  std::string message;
};
std::string EncodeErrorResponse(std::uint64_t request_id, WireError code,
                                std::string_view message);
StatusOr<WireErrorInfo> DecodeErrorResponse(const Frame& frame);

/// Maps an ErrorResponse to the Status a client API surfaces:
/// kOverloaded -> Unavailable (retryable), kBadRequest/kMalformedFrame/
/// kBadVersion/kUnknownType -> InvalidArgument, kInternal -> Internal.
Status WireErrorToStatus(const WireErrorInfo& error);

}  // namespace rtrec

#endif  // RTREC_NET_WIRE_H_
