#include "obs/span_collector.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace rtrec {
namespace obs {
namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::string HexTraceId(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return buf;
}

/// The per-thread ring cache: one collector rarely shares a thread with
/// another, so a tiny linear-scan vector beats a hash map.
struct ThreadRingCache {
  struct Entry {
    const void* collector;
    std::uint64_t instance_id;  ///< Guards address reuse across collectors.
    void* slot;
  };
  std::vector<Entry> entries;

  void* Find(const void* collector, std::uint64_t instance_id) const {
    for (const auto& entry : entries) {
      if (entry.collector == collector && entry.instance_id == instance_id) {
        return entry.slot;
      }
    }
    return nullptr;
  }
};

thread_local ThreadRingCache t_ring_cache;

/// Process-wide collector birth counter: a new collector allocated at a
/// dead one's address must not hit the dead one's cache entries.
std::atomic<std::uint64_t> g_collector_instances{0};

}  // namespace

SpanCollector::SpanCollector(const Options& options)
    : options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &MetricsRegistry::Default()),
      instance_id_(
          g_collector_instances.fetch_add(1, std::memory_order_relaxed)),
      trace_id_seed_(SplitMix64(
          static_cast<std::uint64_t>(Tracer::NowMicros()) ^
          (static_cast<std::uint64_t>(::getpid()) << 32) ^
          reinterpret_cast<std::uintptr_t>(this))),
      spans_recorded_counter_(metrics_->GetCounter(
          "obs.spans.recorded", "span records accepted onto a span ring")),
      spans_dropped_counter_(metrics_->GetCounter(
          "obs.spans.dropped", "span records dropped on a full span ring")),
      traces_finished_counter_(metrics_->GetCounter(
          "obs.traces.finished", "traces assembled to completion")),
      slow_captured_counter_(metrics_->GetCounter(
          "obs.traces.slow_captured",
          "traces kept by tail capture (e2e over --trace-slow-us)")) {
  // Interned id 0 stays "?" so a zeroed record renders sanely.
  names_.push_back("?");
  name_ids_.emplace("?", 0);
  drain_thread_ = std::thread([this] { DrainLoop(); });
}

SpanCollector::~SpanCollector() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  drain_thread_.join();
  DrainOnce();
}

std::uint16_t SpanCollector::InternName(std::string_view name) {
  std::lock_guard<std::mutex> lock(names_mu_);
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint16_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

std::string SpanCollector::NameFor(std::uint16_t id) const {
  std::lock_guard<std::mutex> lock(names_mu_);
  if (id >= names_.size()) return "?";
  return names_[id];
}

SpanCollector::RingSlot* SpanCollector::SlotForThisThread() {
  if (void* cached = t_ring_cache.Find(this, instance_id_)) {
    return static_cast<RingSlot*>(cached);
  }
  std::lock_guard<std::mutex> lock(rings_mu_);
  const auto thread_id = static_cast<std::uint16_t>(rings_.size());
  rings_.push_back(
      std::make_unique<RingSlot>(options_.ring_capacity, thread_id));
  RingSlot* slot = rings_.back().get();
  t_ring_cache.entries.push_back({this, instance_id_, slot});
  return slot;
}

void SpanCollector::Record(SpanRecord record) {
  RingSlot* slot = SlotForThisThread();
  record.thread_id = slot->thread_id;
  if (slot->ring.TryPush(record)) {
    spans_recorded_.fetch_add(1, std::memory_order_relaxed);
    spans_recorded_counter_->Increment();
  } else {
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    spans_dropped_counter_->Increment();
  }
}

std::uint64_t SpanCollector::MintTraceId() {
  const std::uint64_t seq =
      trace_id_seq_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t id = SplitMix64(trace_id_seed_ ^ ~seq);
  if (id == 0) id = 1;
  return id;
}

void SpanCollector::Flush() { DrainOnce(); }

void SpanCollector::DrainLoop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_) {
    stop_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.drain_interval_ms));
    if (stop_) break;
    lock.unlock();
    DrainOnce();
    lock.lock();
  }
}

void SpanCollector::DrainOnce() {
  std::vector<RingSlot*> slots;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    slots.reserve(rings_.size());
    for (const auto& slot : rings_) slots.push_back(slot.get());
  }
  std::vector<SpanRecord> batch;
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  ++drain_generation_;
  // Roots in ring arrival order: the recorder commits the root last on
  // the same ring, so once the root is visible the whole tree is — and
  // finalizing in root order keeps the retention deque's eviction
  // oldest-first instead of hash-map-arbitrary.
  std::vector<std::uint64_t> done;
  for (RingSlot* slot : slots) {
    batch.clear();
    while (slot->ring.TryPopBatch(batch, 256) > 0) {
      for (SpanRecord& record : batch) {
        PendingTrace& pending = pending_[record.trace_id];
        pending.drain_generation = drain_generation_;
        pending.spans.push_back(record);
        if ((record.flags & kSpanFlagRoot) != 0) {
          done.push_back(record.trace_id);
        }
      }
      batch.clear();
    }
  }
  for (const std::uint64_t trace_id : done) {
    auto node = pending_.extract(trace_id);
    if (node.empty()) continue;  // Two roots under one id: already taken.
    FinalizeTrace(trace_id, std::move(node.mapped().spans));
  }
  // Rootless strays (direct Record calls that never finish a request)
  // must not pin memory forever: evict anything untouched for a while
  // once the map outgrows the retention budget.
  if (pending_.size() > options_.max_traces * 4) {
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.drain_generation + 2 < drain_generation_) {
        traces_dropped_.fetch_add(1, std::memory_order_relaxed);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void SpanCollector::FinalizeTrace(std::uint64_t trace_id,
                                  std::vector<SpanRecord> spans) {
  FinishedTrace finished;
  finished.trace_id = trace_id;
  // Root first, then children by start time.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     const bool a_root = (a.flags & kSpanFlagRoot) != 0;
                     const bool b_root = (b.flags & kSpanFlagRoot) != 0;
                     if (a_root != b_root) return a_root;
                     return a.start_us < b.start_us;
                   });
  const SpanRecord& root = spans.front();
  finished.total_us = root.end_us - root.start_us;
  finished.hop = root.hop;
  finished.root_flags = root.flags;
  finished.spans = std::move(spans);

  traces_finished_.fetch_add(1, std::memory_order_relaxed);
  traces_finished_counter_->Increment();
  if ((finished.root_flags & kSpanFlagSlowCapture) != 0) {
    slow_captured_.fetch_add(1, std::memory_order_relaxed);
    slow_captured_counter_->Increment();
  }

  std::lock_guard<std::mutex> lock(export_mu_);
  finished_.push_back(finished);
  while (finished_.size() > options_.max_traces) {
    finished_.pop_front();
    traces_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  // Slow view: insertion-sort into the bounded slowest-first list.
  const auto pos = std::upper_bound(
      slow_.begin(), slow_.end(), finished,
      [](const FinishedTrace& a, const FinishedTrace& b) {
        return a.total_us > b.total_us;
      });
  if (pos != slow_.end() || slow_.size() < options_.slow_keep) {
    slow_.insert(pos, std::move(finished));
    if (slow_.size() > options_.slow_keep) slow_.pop_back();
  }
}

std::string SpanCollector::ExportChromeJson() const {
  std::deque<FinishedTrace> finished;
  {
    std::lock_guard<std::mutex> lock(export_mu_);
    finished = finished_;
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const FinishedTrace& trace : finished) {
    for (const SpanRecord& span : trace.spans) {
      if (!first) out += ",";
      first = false;
      std::snprintf(
          buf, sizeof(buf),
          "{\"name\":\"%s\",\"cat\":\"rtrec\",\"ph\":\"X\",\"ts\":%lld,"
          "\"dur\":%lld,\"pid\":%d,\"tid\":%u,\"args\":{\"trace_id\":"
          "\"%s\",\"span_id\":%u,\"parent_id\":%u,\"hop\":%u}}",
          NameFor(span.name_id).c_str(),
          static_cast<long long>(span.start_us),
          static_cast<long long>(span.end_us - span.start_us), span.shard_id,
          span.thread_id, HexTraceId(span.trace_id).c_str(), span.span_id,
          span.parent_id, span.hop);
      out += buf;
    }
  }
  out += "]}";
  return out;
}

std::string SpanCollector::ExportSlowJson() const {
  std::vector<FinishedTrace> slow;
  {
    std::lock_guard<std::mutex> lock(export_mu_);
    slow = slow_;
  }
  std::string out = "{\"slow\":[";
  char buf[192];
  for (std::size_t i = 0; i < slow.size(); ++i) {
    const FinishedTrace& trace = slow[i];
    if (i > 0) out += ",";
    std::snprintf(buf, sizeof(buf),
                  "{\"trace_id\":\"%s\",\"total_us\":%lld,\"hop\":%u,"
                  "\"shard\":%d,\"slow_capture\":%s,\"stages\":[",
                  HexTraceId(trace.trace_id).c_str(),
                  static_cast<long long>(trace.total_us), trace.hop,
                  trace.spans.empty() ? options_.shard_id
                                      : trace.spans.front().shard_id,
                  (trace.root_flags & kSpanFlagSlowCapture) != 0 ? "true"
                                                                 : "false");
    out += buf;
    bool first_stage = true;
    for (const SpanRecord& span : trace.spans) {
      if ((span.flags & kSpanFlagRoot) != 0) continue;
      if (!first_stage) out += ",";
      first_stage = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"start_us\":%lld,\"dur_us\":%lld}",
                    NameFor(span.name_id).c_str(),
                    static_cast<long long>(span.start_us),
                    static_cast<long long>(span.end_us - span.start_us));
      out += buf;
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

bool SpanCollector::HasTrace(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(export_mu_);
  for (const FinishedTrace& trace : finished_) {
    if (trace.trace_id == trace_id) return true;
  }
  return false;
}

SpanCollector::Stats SpanCollector::GetStats() const {
  Stats stats;
  stats.spans_recorded = spans_recorded_.load(std::memory_order_relaxed);
  stats.spans_dropped = spans_dropped_.load(std::memory_order_relaxed);
  stats.traces_finished = traces_finished_.load(std::memory_order_relaxed);
  stats.traces_dropped = traces_dropped_.load(std::memory_order_relaxed);
  stats.slow_captured = slow_captured_.load(std::memory_order_relaxed);
  return stats;
}

// ---------------------------------------------------------------------------
// RequestRecorder.

RequestRecorder::RequestRecorder(SpanCollector* collector,
                                 const TraceContext& trace,
                                 std::int64_t slow_threshold_us,
                                 std::uint8_t root_flags)
    : collector_(collector),
      trace_(trace),
      slow_threshold_us_(slow_threshold_us),
      active_(collector != nullptr &&
              (trace.sampled() || slow_threshold_us > 0)),
      root_flags_(root_flags) {
  if (active_) {
    start_us_ = Tracer::NowMicros();
    staged_.reserve(8);
  }
}

RequestRecorder::Scope RequestRecorder::Span(std::uint16_t name_id) {
  if (!active_) return Scope(nullptr, 0);
  SpanRecord record;
  record.span_id = next_span_id_++;
  record.parent_id = open_parent_;
  record.start_us = Tracer::NowMicros();
  record.name_id = name_id;
  open_parent_ = record.span_id;
  staged_.push_back(record);
  return Scope(this, staged_.size() - 1);
}

void RequestRecorder::CloseSpan(std::size_t index) {
  SpanRecord& record = staged_[index];
  record.end_us = Tracer::NowMicros();
  open_parent_ = record.parent_id;
}

std::int64_t RequestRecorder::Finish(std::uint16_t root_name_id,
                                     bool* committed) {
  if (committed != nullptr) *committed = false;
  if (!active_ || finished_) return 0;
  finished_ = true;
  const std::int64_t end_us = Tracer::NowMicros();
  const std::int64_t e2e_us = end_us - start_us_;

  std::uint8_t root_flags = root_flags_ | kSpanFlagRoot;
  std::uint64_t trace_id = trace_.id;
  if (!trace_.sampled()) {
    if (slow_threshold_us_ <= 0 || e2e_us < slow_threshold_us_) {
      staged_.clear();  // Reversed: nobody wants this trace.
      return e2e_us;
    }
    trace_id = collector_->MintTraceId();
    root_flags |= kSpanFlagSlowCapture;
  } else if (slow_threshold_us_ > 0 && e2e_us >= slow_threshold_us_) {
    root_flags |= kSpanFlagSlowCapture;
  }

  const int shard = collector_->shard_id();
  for (SpanRecord& record : staged_) {
    record.trace_id = trace_id;
    record.shard_id = shard;
    record.hop = trace_.hop;
    if (record.end_us == 0) record.end_us = end_us;  // Leaked scope.
    collector_->Record(record);
  }
  SpanRecord root;
  root.trace_id = trace_id;
  root.span_id = 1;
  root.parent_id = 0;
  root.start_us = start_us_;
  root.end_us = end_us;
  root.name_id = root_name_id;
  root.shard_id = shard;
  root.hop = trace_.hop;
  root.flags = root_flags;
  collector_->Record(root);  // Root last: its arrival finalizes the trace.
  if (committed != nullptr) *committed = true;
  return e2e_us;
}

}  // namespace obs
}  // namespace rtrec
