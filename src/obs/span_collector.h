#ifndef RTREC_OBS_SPAN_COLLECTOR_H_
#define RTREC_OBS_SPAN_COLLECTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "concurrent/spsc_ring.h"

namespace rtrec {
namespace obs {

/// Structured span recording behind the PR 3 tracing layer.
///
/// The sampling/propagation machinery in common/trace.h decides *which*
/// requests are traced; this subsystem records *what happened inside*
/// them. Request handlers stage fixed-size SpanRecords in a small
/// per-request buffer (RequestRecorder), and on commit push them onto a
/// per-thread SPSC ring. A background drain thread owned by the
/// SpanCollector pops the rings, assembles per-trace span trees, and
/// keeps two bounded views: the most recent finished traces (exported
/// as Chrome trace-event JSON, loadable in Perfetto, at /traces and via
/// serve --trace-dump), and the slowest-N requests with per-stage
/// breakdown (/traces/slow).
///
/// Tail-latency capture: the recorder stages spans for *every* request
/// when a slow threshold is armed — staging is append-to-a-small-vector
/// cheap — and at request end either commits (trace sampled, or e2e
/// latency over the threshold) or discards the buffer. That is how a
/// p99 outlier that the 1-in-N head sampler missed still ends up
/// inspectable.

/// One recorded span. Fixed-size POD so ring hand-off is a memcpy.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;    ///< Unique within (process, trace).
  std::uint32_t parent_id = 0;  ///< 0 = root span of this process's tree.
  std::int64_t start_us = 0;    ///< Steady clock, Tracer::NowMicros.
  std::int64_t end_us = 0;
  std::uint16_t name_id = 0;    ///< Interned via SpanCollector::InternName.
  std::uint16_t thread_id = 0;  ///< Stamped by SpanCollector::Record.
  std::int32_t shard_id = 0;
  std::uint8_t hop = 0;  ///< Failover hop the request arrived on.
  std::uint8_t flags = 0;
};

/// The request's root span; its duration is the e2e latency.
inline constexpr std::uint8_t kSpanFlagRoot = 0x01;
/// Committed by tail capture (e2e over threshold), not head sampling.
inline constexpr std::uint8_t kSpanFlagSlowCapture = 0x02;
/// The trace context was adopted from the wire, not minted here.
inline constexpr std::uint8_t kSpanFlagAdopted = 0x04;

class SpanCollector {
 public:
  struct Options {
    /// Capacity of each per-thread span ring. Full ring = spans drop
    /// (counted), never block: tracing must not add backpressure.
    std::size_t ring_capacity = 4096;
    /// Finished traces retained for /traces, oldest evicted first.
    std::size_t max_traces = 256;
    /// Slowest-N finished traces retained for /traces/slow.
    std::size_t slow_keep = 32;
    /// Stamped into every span (pid in the Chrome export) so traces
    /// stitched across a cluster attribute spans to shards.
    int shard_id = 0;
    int drain_interval_ms = 5;
    MetricsRegistry* metrics = nullptr;  ///< Null = MetricsRegistry::Default().
  };

  explicit SpanCollector(const Options& options);
  ~SpanCollector();

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Interns a span name, returning a stable small id. Call at setup
  /// and cache the id — interning takes a lock.
  std::uint16_t InternName(std::string_view name);

  /// The interned name for `id` ("?" if unknown).
  std::string NameFor(std::uint16_t id) const;

  /// Pushes one finished span onto the calling thread's ring (lazily
  /// registered on first use). Stamps thread_id; everything else is the
  /// caller's. Never blocks; drops (and counts) when the ring is full.
  void Record(SpanRecord record);

  /// Mints a globally-unique trace id for a tail-captured request whose
  /// context was not head-sampled (and so has no id yet).
  std::uint64_t MintTraceId();

  /// Drains all rings synchronously (the drain thread also runs this on
  /// its timer). Call before exporting when determinism matters — tests
  /// and the --trace-dump shutdown path.
  void Flush();

  /// All retained finished traces as Chrome trace-event JSON
  /// ({"traceEvents":[...]}; "X" complete events, ts/dur in µs,
  /// pid=shard, tid=recording thread). Loadable in Perfetto as-is.
  std::string ExportChromeJson() const;

  /// The slowest-N retained requests, slowest first, as JSON with a
  /// per-stage breakdown: trace id, total µs, hop, and one entry per
  /// child span.
  std::string ExportSlowJson() const;

  /// Whether a finished trace with this id is retained (drill/tests).
  bool HasTrace(std::uint64_t trace_id) const;

  struct Stats {
    std::uint64_t spans_recorded = 0;
    std::uint64_t spans_dropped = 0;
    std::uint64_t traces_finished = 0;
    std::uint64_t traces_dropped = 0;
    std::uint64_t slow_captured = 0;
  };
  Stats GetStats() const;

  int shard_id() const { return options_.shard_id; }

 private:
  struct RingSlot {
    explicit RingSlot(std::size_t capacity, std::uint16_t id)
        : ring(capacity), thread_id(id) {}
    concurrent::SpscRing<SpanRecord> ring;
    std::uint16_t thread_id;
  };

  /// One assembled request tree, kept for export.
  struct FinishedTrace {
    std::uint64_t trace_id = 0;
    std::int64_t total_us = 0;
    std::uint8_t hop = 0;
    std::uint8_t root_flags = 0;
    std::vector<SpanRecord> spans;  ///< Root first, then by start time.
  };

  RingSlot* SlotForThisThread();
  void DrainLoop();
  void DrainOnce();
  void FinalizeTrace(std::uint64_t trace_id, std::vector<SpanRecord> spans);

  const Options options_;
  MetricsRegistry* metrics_;
  /// Process-unique birth id; keys the per-thread ring cache so a
  /// collector reusing a destroyed one's address cannot hit its entries.
  const std::uint64_t instance_id_;

  mutable std::mutex names_mu_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint16_t> name_ids_;

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<RingSlot>> rings_;

  /// Serializes ring consumption (timer drain vs Flush) and guards the
  /// pending-assembly map.
  mutable std::mutex drain_mu_;
  struct PendingTrace {
    std::vector<SpanRecord> spans;
    std::uint64_t drain_generation = 0;
  };
  std::unordered_map<std::uint64_t, PendingTrace> pending_;
  std::uint64_t drain_generation_ = 0;

  /// Guards the export views (drain commits, HTTP scrapes read).
  mutable std::mutex export_mu_;
  std::deque<FinishedTrace> finished_;
  std::vector<FinishedTrace> slow_;  ///< Sorted by total_us descending.

  std::atomic<std::uint64_t> spans_recorded_{0};
  std::atomic<std::uint64_t> spans_dropped_{0};
  std::atomic<std::uint64_t> traces_finished_{0};
  std::atomic<std::uint64_t> traces_dropped_{0};
  std::atomic<std::uint64_t> slow_captured_{0};
  std::atomic<std::uint64_t> trace_id_seq_{0};
  std::uint64_t trace_id_seed_;

  Counter* spans_recorded_counter_;
  Counter* spans_dropped_counter_;
  Counter* traces_finished_counter_;
  Counter* slow_captured_counter_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread drain_thread_;
};

/// Per-request span staging. Stack-allocated in the request handler;
/// stages spans into a small local buffer and, at Finish, either pushes
/// them all to the collector or throws them away (tail capture's
/// "reversible buffer"). Inactive (every call a cheap no-op) when the
/// collector is null, or when the trace is unsampled and no slow
/// threshold is armed.
class RequestRecorder {
 public:
  /// `root_flags` is OR'd into the root span (kSpanFlagAdopted etc.).
  /// `slow_threshold_us` <= 0 disables tail capture.
  RequestRecorder(SpanCollector* collector, const TraceContext& trace,
                  std::int64_t slow_threshold_us, std::uint8_t root_flags = 0);

  RequestRecorder(const RequestRecorder&) = delete;
  RequestRecorder& operator=(const RequestRecorder&) = delete;

  /// RAII stage span nested under the current innermost open span.
  class Scope {
   public:
    Scope(Scope&& other) noexcept
        : recorder_(other.recorder_), index_(other.index_) {
      other.recorder_ = nullptr;
    }
    ~Scope() {
      if (recorder_ != nullptr) recorder_->CloseSpan(index_);
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    friend class RequestRecorder;
    Scope(RequestRecorder* recorder, std::size_t index)
        : recorder_(recorder), index_(index) {}
    RequestRecorder* recorder_;
    std::size_t index_;
  };

  Scope Span(std::uint16_t name_id);

  /// Ends the root span and commits or discards the buffer. Returns the
  /// request's e2e latency in µs (0 when the recorder is inactive).
  /// `committed` (optional) reports whether the trace was kept.
  std::int64_t Finish(std::uint16_t root_name_id, bool* committed = nullptr);

  bool active() const { return active_; }

 private:
  friend class Scope;
  void CloseSpan(std::size_t index);

  SpanCollector* collector_;
  TraceContext trace_;
  std::int64_t slow_threshold_us_;
  bool active_;
  bool finished_ = false;
  std::uint8_t root_flags_;
  std::int64_t start_us_ = 0;
  std::uint32_t next_span_id_ = 2;  ///< 1 is reserved for the root.
  std::uint32_t open_parent_ = 1;
  std::vector<SpanRecord> staged_;
};

}  // namespace obs
}  // namespace rtrec

#endif  // RTREC_OBS_SPAN_COLLECTOR_H_
