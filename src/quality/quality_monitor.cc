#include "quality/quality_monitor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/logging.h"
#include "eval/ab_test.h"

namespace rtrec {

namespace {

constexpr double kProbFloor = 1e-6;

/// Logistic link: the MF rating prediction read as an engagement
/// probability, clamped away from 0/1 so logloss stays finite.
double Probability(double prediction) {
  const double p = 1.0 / (1.0 + std::exp(-prediction));
  return std::min(1.0 - kProbFloor, std::max(kProbFloor, p));
}

double LogLoss(bool engaged, double p) {
  return engaged ? -std::log(p) : -std::log(1.0 - p);
}

}  // namespace

void QualityMonitor::CtrSegment::Click() const {
  clicks->Increment();
  const double i = static_cast<double>(impressions->value());
  if (i > 0.0) ctr->Set(static_cast<double>(clicks->value()) / i);
}

void QualityMonitor::CtrSegment::Impress(std::int64_t n) const {
  impressions->Increment(n);
  const double i = static_cast<double>(impressions->value());
  if (i > 0.0) ctr->Set(static_cast<double>(clicks->value()) / i);
}

QualityMonitor::QualityMonitor(MetricsRegistry* metrics, Options options)
    : metrics_(metrics), options_(std::move(options)) {
  assert(metrics_ != nullptr);
  assert(options_.ring_size > 0);
  assert(options_.num_arms > 0);
  if (!options_.group_name) {
    options_.group_name = [](GroupId g) { return std::to_string(g); };
  }

  // Every quality metric is registered up front so scrapes always show
  // the full schema (an absent alert counter is indistinguishable from a
  // never-fired one otherwise).
  samples_ = metrics_->GetCounter("quality.progressive.samples");
  logloss_gauge_ = metrics_->GetDoubleGauge("quality.progressive.logloss");
  calibration_gauge_ = metrics_->GetDoubleGauge("quality.progressive.bias");
  for (int t = 0; t < kNumActionTypes; ++t) {
    logloss_type_gauges_[t] = metrics_->GetDoubleGauge(
        std::string("quality.progressive.logloss.") +
        ActionTypeToString(static_cast<ActionType>(t)));
  }
  embedding_norm_gauge_ =
      metrics_->GetDoubleGauge("quality.drift.embedding_norm");
  global_bias_gauge_ = metrics_->GetDoubleGauge("quality.drift.global_bias");
  label_shift_gauge_ = metrics_->GetDoubleGauge("quality.drift.label_shift");

  holdout_evaluated_ = metrics_->GetCounter("quality.holdout.evaluated");
  holdout_hits_ = metrics_->GetCounter("quality.holdout.hits");
  online_recall_ = metrics_->GetDoubleGauge(
      "quality.online_recall@" + std::to_string(options_.recall_top_n));

  auto segment = [this](const std::string& suffix) {
    CtrSegment s;
    s.impressions = metrics_->GetCounter("quality.ctr.impressions" + suffix);
    s.clicks = metrics_->GetCounter("quality.ctr.clicks" + suffix);
    s.ctr = metrics_->GetDoubleGauge(
        suffix.empty() ? "quality.ctr.overall" : "quality.ctr" + suffix);
    return s;
  };
  overall_ = segment("");
  primary_ = segment(".primary");
  degraded_ = segment(".degraded");
  arms_.reserve(options_.num_arms);
  for (std::size_t a = 0; a < options_.num_arms; ++a) {
    arms_.push_back(segment(".arm." + std::to_string(a)));
  }
  position_weighted_ctr_ =
      metrics_->GetDoubleGauge("quality.ctr.position_weighted");
  duplicate_clicks_ = metrics_->GetCounter("quality.ctr.duplicate_clicks");
  unmatched_engagements_ =
      metrics_->GetCounter("quality.ctr.unmatched_engagements");
  served_coverage_ = metrics_->GetDoubleGauge("quality.drift.served_coverage");
  sim_staleness_ms_ = metrics_->GetGauge("quality.drift.sim_staleness_ms");

  alert_logloss_ = metrics_->GetCounter("quality.alerts.logloss");
  alert_calibration_ = metrics_->GetCounter("quality.alerts.calibration");
  alert_embedding_norm_ =
      metrics_->GetCounter("quality.alerts.embedding_norm");
  alert_bias_drift_ = metrics_->GetCounter("quality.alerts.bias_drift");
  alert_label_shift_ = metrics_->GetCounter("quality.alerts.label_shift");
  alert_staleness_ = metrics_->GetCounter("quality.alerts.staleness");
  alert_coverage_ = metrics_->GetCounter("quality.alerts.coverage");

  ring_.resize(options_.ring_size);
}

void QualityMonitor::Alert(Counter* counter, const char* kind,
                           const std::string& detail) {
  counter->Increment();
  // Sampled structured quality events: one warning per log_every_n
  // firings per alert type, so a stuck-bad signal cannot flood stderr.
  const std::int64_t n = counter->value();
  const std::int64_t every =
      static_cast<std::int64_t>(std::max<std::size_t>(1, options_.log_every_n));
  if (n % every == 1 || every == 1) {
    RTREC_LOG(kWarn) << "quality-event alert=" << kind << " count=" << n
                     << " " << detail;
  }
}

void QualityMonitor::OnMfSample(const MfSample& sample) {
  const bool engaged = sample.rating > 0.0;
  const double p = Probability(sample.prediction);
  const double loss = LogLoss(engaged, p);
  const double y = engaged ? 1.0 : 0.0;
  const GroupId group =
      options_.group_of ? options_.group_of(sample.action.user) : kGlobalGroup;
  const double a = options_.ewma_alpha;

  samples_->Increment();
  if (engaged) {
    // Engagements advance the model clock (impressions never train).
    last_train_time_.store(sample.action.time, std::memory_order_relaxed);
  }

  std::lock_guard<std::mutex> lock(progressive_mu_);
  logloss_.Update(loss, a);
  logloss_gauge_->Set(logloss_.value);
  calibration_.Update(y - p, a);
  calibration_gauge_->Set(calibration_.value);

  const int type = static_cast<int>(sample.action.type);
  if (type >= 0 && type < kNumActionTypes) {
    logloss_by_type_[type].Update(loss, a);
    logloss_type_gauges_[type]->Set(logloss_by_type_[type].value);
  }

  GroupState& gs = logloss_by_group_[group];
  if (gs.gauge == nullptr) {
    gs.gauge = metrics_->GetDoubleGauge("quality.progressive.logloss.group." +
                                        options_.group_name(group));
  }
  gs.logloss.Update(loss, a);
  gs.gauge->Set(gs.logloss.value);

  embedding_norm_.Update(0.5 * (sample.user_norm + sample.video_norm), a);
  embedding_norm_gauge_->Set(embedding_norm_.value);
  prediction_fast_.Update(sample.prediction, a);
  // A 10× slower EWMA is the reference operating point the fast one is
  // compared against by the watchdog.
  prediction_slow_.Update(sample.prediction, 0.1 * a);
  global_bias_gauge_->Set(prediction_fast_.value - prediction_slow_.value);
  // Label-shift pair: the raw engagement rate on two timescales orders
  // of magnitude slower than the loss EWMAs. The loss/calibration
  // signals re-center within a day because every SGD step pulls the
  // per-entity biases toward the new labels; the label mean itself has
  // no such feedback, so a population-level shift stays visible here for
  // the full fast-vs-slow horizon gap. The binary labels make this pair
  // noisy at loss-EWMA timescales (σ ≈ √(α/2)·σ_y), which is why it
  // runs 50× slower: a real shift is sustained, noise averages out.
  label_fast_.Update(y, 0.02 * a);
  label_slow_.Update(y, 0.002 * a);
  label_shift_gauge_->Set(label_fast_.value - label_slow_.value);

  if (++progressive_count_ % std::max<std::size_t>(1, options_.watchdog_every_n)
      == 0) {
    CheckTrainingWatchdog();
  }
}

void QualityMonitor::CheckTrainingWatchdog() {
  if (logloss_.seeded && logloss_.value > options_.logloss_alert) {
    Alert(alert_logloss_, "logloss",
          "ewma=" + std::to_string(logloss_.value) +
              " threshold=" + std::to_string(options_.logloss_alert));
  }
  if (calibration_.seeded &&
      std::abs(calibration_.value) > options_.calibration_alert) {
    Alert(alert_calibration_, "calibration",
          "ewma=" + std::to_string(calibration_.value) +
              " threshold=" + std::to_string(options_.calibration_alert));
  }
  if (embedding_norm_.seeded &&
      embedding_norm_.value > options_.embedding_norm_alert) {
    Alert(alert_embedding_norm_, "embedding_norm",
          "ewma=" + std::to_string(embedding_norm_.value) +
              " threshold=" + std::to_string(options_.embedding_norm_alert));
  }
  const double drift = prediction_fast_.value - prediction_slow_.value;
  if (prediction_slow_.seeded && std::abs(drift) > options_.bias_drift_alert) {
    Alert(alert_bias_drift_, "bias_drift",
          "drift=" + std::to_string(drift) +
              " threshold=" + std::to_string(options_.bias_drift_alert));
  }
  // The label-shift check waits for the slow EWMA to mature (five time
  // constants of samples, residual < 1% of the seed offset): both EWMAs
  // seed from the same first sample and converge toward the true rate at
  // different speeds, so the warm-up gap is an artifact of cold start,
  // not a shift.
  const double label_shift = label_fast_.value - label_slow_.value;
  const double slow_alpha = 0.002 * options_.ewma_alpha;
  if (label_slow_.seeded &&
      static_cast<double>(progressive_count_) * slow_alpha >= 5.0 &&
      std::abs(label_shift) > options_.label_shift_alert) {
    Alert(alert_label_shift_, "label_shift",
          "shift=" + std::to_string(label_shift) +
              " threshold=" + std::to_string(options_.label_shift_alert));
  }
}

bool QualityMonitor::ShouldHoldOut(const UserAction& action) const {
  if (options_.holdout_every_n == 0) return false;
  if (action.type == ActionType::kImpress) return false;
  // Deterministic per-action selection: stable under concurrency, replay,
  // and across processes — no shared counter to race on.
  const std::uint64_t h =
      MixHash64(action.user ^ MixHash64(action.video) ^
                static_cast<std::uint64_t>(action.time));
  return h % options_.holdout_every_n == 0;
}

void QualityMonitor::OnHoldoutResult(const UserAction& action, bool hit) {
  (void)action;
  holdout_evaluated_->Increment();
  if (hit) holdout_hits_->Increment();
  std::lock_guard<std::mutex> lock(holdout_mu_);
  const double evaluated = static_cast<double>(holdout_evaluated_->value());
  if (evaluated > 0.0) {
    online_recall_->Set(static_cast<double>(holdout_hits_->value()) /
                        evaluated);
  }
}

void QualityMonitor::OnServed(UserId user,
                              const std::vector<ScoredVideo>& results,
                              bool degraded, Timestamp now) {
  if (results.empty()) return;
  const std::uint32_t arm =
      static_cast<std::uint32_t>(AbArmOf(user, options_.num_arms));

  std::lock_guard<std::mutex> lock(ring_mu_);
  for (std::size_t k = 0; k < results.size(); ++k) {
    Slot& slot = ring_[ring_next_];
    ring_next_ = (ring_next_ + 1) % ring_.size();
    if (slot.occupied) {
      // Eagerly unlink the evicted impression from both side indexes so
      // the join stays O(slots-per-user), not O(ring).
      auto it = slots_by_user_.find(slot.user);
      if (it != slots_by_user_.end()) {
        auto& indices = it->second;
        const std::uint32_t evicted = static_cast<std::uint32_t>(
            (&slot - ring_.data()));
        indices.erase(std::remove(indices.begin(), indices.end(), evicted),
                      indices.end());
        if (indices.empty()) slots_by_user_.erase(it);
      }
      auto vit = served_video_counts_.find(slot.video);
      if (vit != served_video_counts_.end() && --vit->second == 0) {
        served_video_counts_.erase(vit);
      }
      --ring_occupied_;
    }
    slot.user = user;
    slot.video = results[k].video;
    slot.served_at = now;
    slot.position = static_cast<std::uint32_t>(k);
    slot.arm = arm;
    slot.degraded = degraded;
    slot.clicked = false;
    slot.occupied = true;
    ++ring_occupied_;
    slots_by_user_[user].push_back(
        static_cast<std::uint32_t>(&slot - ring_.data()));
    ++served_video_counts_[slot.video];
  }

  const std::int64_t n = static_cast<std::int64_t>(results.size());
  overall_.Impress(n);
  (degraded ? degraded_ : primary_).Impress(n);
  arms_[arm].Impress(n);

  // Serving-side drift: catalog coverage of the live ring, and how far
  // serving time runs ahead of the newest trained action.
  const double coverage =
      static_cast<double>(served_video_counts_.size()) /
      static_cast<double>(ring_occupied_);
  served_coverage_->Set(coverage);
  if (ring_occupied_ * 2 >= ring_.size() &&
      coverage < options_.coverage_alert) {
    Alert(alert_coverage_, "coverage",
          "coverage=" + std::to_string(coverage) +
              " threshold=" + std::to_string(options_.coverage_alert));
  }
  const Timestamp last_train =
      last_train_time_.load(std::memory_order_relaxed);
  if (last_train > 0) {
    const std::int64_t staleness =
        static_cast<std::int64_t>(now) - static_cast<std::int64_t>(last_train);
    sim_staleness_ms_->Set(staleness);
    if (staleness > options_.staleness_alert_ms) {
      Alert(alert_staleness_, "staleness",
            "staleness_ms=" + std::to_string(staleness) + " threshold_ms=" +
                std::to_string(options_.staleness_alert_ms));
    }
  }
}

void QualityMonitor::OnEngagement(const UserAction& action) {
  if (action.type == ActionType::kImpress) return;

  std::lock_guard<std::mutex> lock(ring_mu_);
  auto it = slots_by_user_.find(action.user);
  Slot* match = nullptr;
  if (it != slots_by_user_.end()) {
    // Most-recent first: a re-served video joins its newest impression.
    for (auto idx = it->second.rbegin(); idx != it->second.rend(); ++idx) {
      Slot& slot = ring_[*idx];
      if (!slot.occupied || slot.video != action.video) continue;
      if (action.time < slot.served_at ||
          action.time - slot.served_at > options_.join_window_ms) {
        continue;
      }
      match = &slot;
      break;
    }
  }
  if (match == nullptr) {
    // An engagement we never served (organic traffic, expired slot, or a
    // user with no impressions at all) must not contribute clicks — it
    // has no impression to be a rate of.
    unmatched_engagements_->Increment();
    return;
  }
  if (match->clicked) {
    // Second engagement on an already-joined slot: dedup so one served
    // impression can never count more than one click.
    duplicate_clicks_->Increment();
    return;
  }
  match->clicked = true;
  overall_.Click();
  (match->degraded ? degraded_ : primary_).Click();
  arms_[match->arm].Click();
  weighted_clicks_ +=
      std::pow(options_.position_bias, -static_cast<double>(match->position));
  const double impressions =
      static_cast<double>(overall_.impressions->value());
  if (impressions > 0.0) {
    position_weighted_ctr_->Set(weighted_clicks_ / impressions);
  }
}

}  // namespace rtrec
