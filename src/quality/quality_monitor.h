#ifndef RTREC_QUALITY_QUALITY_MONITOR_H_
#define RTREC_QUALITY_QUALITY_MONITOR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "core/action.h"
#include "core/online_mf.h"
#include "core/recommender.h"

namespace rtrec {

/// Live model-quality monitoring (the online counterpart of the paper's
/// Section 6 evaluation). Four signal sources, all exported through the
/// MetricsRegistry and therefore visible on the Stats RPC, the Prometheus
/// endpoint, and the bench ledger:
///
///  1. Progressive validation — installed as the MF model's
///     MfValidationHook, it scores every training action *before* the SGD
///     step consumes it (predict-then-train, Alg. 1) and maintains
///     logloss / calibration-bias EWMAs, overall and segmented per action
///     type and per demographic group. Impressions are the negatives.
///  2. Online recall@N — a deterministic 1-in-N slice of engaged actions
///     is scored against the current model's top-N for that user before
///     being trained on (`quality.online_recall@N`).
///  3. Live CTR — every served page is recorded in a ring buffer of
///     impressions; subsequent Observe engagements join against it,
///     giving CTR and position-weighted CTR segmented by A/B arm
///     (AbArmOf identity, shared with the offline harness) and by
///     degraded-vs-primary responses. Duplicate engagements on a slot
///     and engagements with no recorded impression are counted apart and
///     never inflate CTR.
///  4. Drift watchdog — embedding-norm / prediction-drift /
///     engagement-rate (label-shift) EWMAs from the training stream plus
///     serving-side staleness and served-catalog coverage, checked
///     against thresholds on a fixed cadence;
///     violations bump `quality.alerts.*` and emit sampled structured
///     "quality-event" warnings.
///
/// Thread-safe; designed to sit on the Observe/Recommend hot paths (two
/// small critical sections, no allocation at steady state).
class QualityMonitor : public MfValidationHook {
 public:
  struct Options {
    /// EWMA smoothing factor for the progressive-validation statistics.
    double ewma_alpha = 0.02;

    /// Hold out one in N engaged actions for online recall (0 disables).
    /// Selection is a deterministic hash of (user, video, time), so it is
    /// stable under concurrency and across replays.
    std::size_t holdout_every_n = 100;
    /// N of online recall@N.
    std::size_t recall_top_n = 10;

    /// Served-impression slots retained for the CTR join.
    std::size_t ring_size = 4096;
    /// An engagement joins an impression only within this window.
    std::int64_t join_window_ms = 6 * 60 * 60 * 1000;
    /// A/B arms for CTR segmentation (users hashed via AbArmOf).
    std::size_t num_arms = 2;
    /// Position-bias base: a click at position k counts 1/bias^k in the
    /// position-weighted CTR (matches AbTestHarness::Options).
    double position_bias = 0.85;

    /// Watchdog cadence: thresholds are checked every N progressive
    /// samples (and staleness/coverage on every served page).
    std::size_t watchdog_every_n = 256;
    /// At most one structured warning per alert type per N firings.
    std::size_t log_every_n = 64;
    /// Alert when the logloss EWMA exceeds this (untrained baseline is
    /// ln 2 ≈ 0.693; a healthy model trends well below it).
    double logloss_alert = 1.0;
    /// Alert when |calibration bias EWMA| (y − p) exceeds this.
    double calibration_alert = 0.5;
    /// Alert when the embedding-norm EWMA exceeds this (norm blow-up is
    /// the classic SGD divergence signature).
    double embedding_norm_alert = 10.0;
    /// Alert when the fast and slow prediction EWMAs diverge by more
    /// than this (sudden shift of the model's operating point).
    double bias_drift_alert = 2.0;
    /// Alert when the fast and slow *engagement-rate* EWMAs diverge by
    /// more than this: label shift — P(engage | impression) moved. This
    /// is how a population-wide preference (demographic) drift shows up
    /// in the training stream even after per-entity SGD biases have
    /// re-calibrated the loss signals away. The pair runs 50× slower
    /// than the loss EWMAs (binary labels are noisy; a real shift is
    /// sustained) and is checked only once the slow EWMA has matured
    /// (5 / slow-alpha samples), so the cold-start warm-up, where the
    /// two EWMAs converge at different speeds from the same seed,
    /// cannot fire it.
    double label_shift_alert = 0.04;
    /// Alert when serving time runs this far ahead of the newest trained
    /// action (stale model / stalled ingest).
    std::int64_t staleness_alert_ms = 24 * 60 * 60 * 1000;
    /// Alert when distinct videos / occupied ring slots drops below this
    /// with the ring at least half full (the system keeps serving the
    /// same few videos).
    double coverage_alert = 0.01;

    /// Demographic identity for per-group segmentation; when unset all
    /// samples land in the global segment. Must be thread-safe.
    std::function<GroupId(UserId)> group_of;
    /// Human-readable group label; std::to_string when unset.
    std::function<std::string(GroupId)> group_name;
  };

  /// `metrics` is required and must outlive the monitor.
  QualityMonitor(MetricsRegistry* metrics, Options options);

  QualityMonitor(const QualityMonitor&) = delete;
  QualityMonitor& operator=(const QualityMonitor&) = delete;

  /// MfValidationHook: one pre-step training sample (signal 1 + drift).
  void OnMfSample(const MfSample& sample) override;

  /// True when `action` is in the deterministic held-out slice. The
  /// caller scores the user's current top-N first and reports via
  /// OnHoldoutResult, then trains on the action as usual.
  bool ShouldHoldOut(const UserAction& action) const;
  void OnHoldoutResult(const UserAction& action, bool hit);

  /// Records one served page into the impression ring (signal 3).
  /// `degraded` marks hot-video fallback answers.
  void OnServed(UserId user, const std::vector<ScoredVideo>& results,
                bool degraded, Timestamp now);

  /// Joins one observed action against the impression ring. Impressions
  /// are ignored (they are not engagements); engaged actions either mark
  /// a served slot clicked or count as unmatched.
  void OnEngagement(const UserAction& action);

  const Options& options() const { return options_; }

 private:
  /// Exponentially weighted moving average seeded by its first sample.
  struct Ewma {
    double value = 0.0;
    bool seeded = false;
    void Update(double x, double alpha) {
      value = seeded ? (1.0 - alpha) * value + alpha * x : x;
      seeded = true;
    }
  };

  /// CTR segment: raw impression/click counters plus the derived gauge.
  struct CtrSegment {
    Counter* impressions = nullptr;
    Counter* clicks = nullptr;
    DoubleGauge* ctr = nullptr;
    void Click() const;
    void Impress(std::int64_t n) const;
  };

  /// One served impression awaiting its engagement.
  struct Slot {
    UserId user = 0;
    VideoId video = 0;
    Timestamp served_at = 0;
    std::uint32_t position = 0;
    std::uint32_t arm = 0;
    bool degraded = false;
    bool clicked = false;
    bool occupied = false;
  };

  void CheckTrainingWatchdog();  // Requires progressive_mu_.
  void Alert(Counter* counter, const char* kind, const std::string& detail);

  MetricsRegistry* metrics_;
  Options options_;

  // --- Progressive validation + training-side drift (progressive_mu_).
  mutable std::mutex progressive_mu_;
  Ewma logloss_;
  Ewma calibration_;  // EWMA of y − p.
  std::array<Ewma, kNumActionTypes> logloss_by_type_;
  struct GroupState {
    Ewma logloss;
    DoubleGauge* gauge = nullptr;
  };
  std::unordered_map<GroupId, GroupState> logloss_by_group_;
  Ewma embedding_norm_;   // Mean of pre-step ‖x_u‖, ‖y_i‖.
  Ewma prediction_fast_;  // Operating-point drift pair.
  Ewma prediction_slow_;
  Ewma label_fast_;  // Engagement-rate (label-shift) drift pair.
  Ewma label_slow_;
  std::size_t progressive_count_ = 0;
  Counter* samples_ = nullptr;
  DoubleGauge* logloss_gauge_ = nullptr;
  DoubleGauge* calibration_gauge_ = nullptr;
  std::array<DoubleGauge*, kNumActionTypes> logloss_type_gauges_{};
  DoubleGauge* embedding_norm_gauge_ = nullptr;
  DoubleGauge* global_bias_gauge_ = nullptr;
  DoubleGauge* label_shift_gauge_ = nullptr;
  std::atomic<Timestamp> last_train_time_{0};

  // --- Holdout recall (holdout_mu_ only orders the gauge update).
  mutable std::mutex holdout_mu_;
  Counter* holdout_evaluated_ = nullptr;
  Counter* holdout_hits_ = nullptr;
  DoubleGauge* online_recall_ = nullptr;

  // --- CTR join (ring_mu_).
  mutable std::mutex ring_mu_;
  std::vector<Slot> ring_;
  std::size_t ring_next_ = 0;
  std::size_t ring_occupied_ = 0;
  /// user → indices of their live slots (eagerly pruned on overwrite).
  std::unordered_map<UserId, std::vector<std::uint32_t>> slots_by_user_;
  /// video → live-slot count; its size is the distinct served catalog.
  std::unordered_map<VideoId, std::uint32_t> served_video_counts_;
  double weighted_clicks_ = 0.0;  // Σ over clicks of position_bias^-k.
  CtrSegment overall_;
  CtrSegment primary_;
  CtrSegment degraded_;
  std::vector<CtrSegment> arms_;
  DoubleGauge* position_weighted_ctr_ = nullptr;
  Counter* duplicate_clicks_ = nullptr;
  Counter* unmatched_engagements_ = nullptr;
  DoubleGauge* served_coverage_ = nullptr;
  Gauge* sim_staleness_ms_ = nullptr;

  // --- Alerts (atomic counters; log sampling via counter values).
  Counter* alert_logloss_ = nullptr;
  Counter* alert_calibration_ = nullptr;
  Counter* alert_embedding_norm_ = nullptr;
  Counter* alert_bias_drift_ = nullptr;
  Counter* alert_label_shift_ = nullptr;
  Counter* alert_staleness_ = nullptr;
  Counter* alert_coverage_ = nullptr;
};

}  // namespace rtrec

#endif  // RTREC_QUALITY_QUALITY_MONITOR_H_
