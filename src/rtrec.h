#ifndef RTREC_RTREC_H_
#define RTREC_RTREC_H_

/// Umbrella header: the public API of the rtrec library — the real-time
/// video recommendation system of Huang et al., SIGMOD 2016 (see
/// README.md / DESIGN.md). Include individual headers for finer-grained
/// dependencies; this header is the convenient kitchen-sink for
/// applications.

// The production engine and its pieces.
#include "core/action.h"
#include "core/engine.h"
#include "core/implicit_feedback.h"
#include "core/model_config.h"
#include "core/online_mf.h"
#include "core/recommender.h"
#include "core/sim_table.h"
#include "core/similarity.h"
#include "core/topology_factory.h"

// Demographic optimizations (Section 5.2).
#include "demographic/demographic_filter.h"
#include "demographic/demographic_topology.h"
#include "demographic/demographic_trainer.h"
#include "demographic/group_checkpoint.h"
#include "demographic/group_stores.h"
#include "demographic/grouper.h"
#include "demographic/hot_videos.h"
#include "demographic/profile.h"

// The full production serving stack.
#include "service/recommendation_service.h"

// The network serving layer: wire protocol, epoll TCP server, client.
#include "net/rec_client.h"
#include "net/rec_server.h"
#include "net/socket.h"
#include "net/wire.h"

// Storage.
#include "kvstore/checkpoint.h"
#include "kvstore/factor_store.h"
#include "kvstore/history_store.h"
#include "kvstore/kv_store.h"
#include "kvstore/sim_table_store.h"

// Stream engine.
#include "stream/bolt.h"
#include "stream/acker.h"
#include "stream/grouping.h"
#include "stream/reliable_spout.h"
#include "stream/topology.h"
#include "stream/topology_builder.h"
#include "stream/tuple.h"

// Baselines (Section 6.2 comparative methods).
#include "baselines/assoc_rules.h"
#include "baselines/hot_recommender.h"
#include "baselines/item_cf.h"
#include "baselines/reservoir_mf.h"
#include "baselines/simhash_cf.h"

// Workload + evaluation.
#include "data/dataset.h"
#include "data/event_generator.h"
#include "data/action_source.h"
#include "data/log_format.h"
#include "eval/ab_test.h"
#include "eval/evaluator.h"
#include "eval/experiment_runner.h"
#include "eval/metrics.h"

#endif  // RTREC_RTREC_H_
