#include "service/checkpointer.h"

#include <chrono>

#include "common/logging.h"

namespace rtrec {

Checkpointer::Checkpointer(RecommendationService* service, Options options)
    : service_(service), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    saves_ = options_.metrics->GetCounter("checkpoint.saves");
    failures_ = options_.metrics->GetCounter("checkpoint.failures");
  }
}

Checkpointer::~Checkpointer() { Stop(); }

Status Checkpointer::Start() {
  if (options_.directory.empty()) {
    return Status::InvalidArgument("checkpointer needs a directory");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      return Status::FailedPrecondition("checkpointer already started");
    }
    started_ = true;
    stop_ = false;
  }
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void Checkpointer::Stop() {
  bool was_started = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    was_started = started_ && !stop_;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (was_started && options_.snapshot_on_stop) {
    Status status = SnapshotNow();
    if (!status.ok()) {
      RTREC_LOG(kWarn) << "final snapshot failed: " << status.ToString();
    }
  }
}

Status Checkpointer::SnapshotNow() {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  Status status = service_->Checkpoint(options_.directory);
  if (status.ok()) {
    if (saves_ != nullptr) saves_->Increment();
  } else {
    if (failures_ != nullptr) failures_->Increment();
  }
  return status;
}

void Checkpointer::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    Status status = SnapshotNow();
    if (!status.ok()) {
      RTREC_LOG(kWarn) << "periodic snapshot failed: " << status.ToString();
    }
    lock.lock();
  }
}

}  // namespace rtrec
