#ifndef RTREC_SERVICE_CHECKPOINTER_H_
#define RTREC_SERVICE_CHECKPOINTER_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"
#include "service/recommendation_service.h"

namespace rtrec {

/// Background thread that snapshots a RecommendationService into a
/// directory on a fixed interval, bounding the model state lost to a
/// crash by that interval. Snapshots go through SaveCheckpoint's
/// tmp + fsync + atomic-rename path, so a kill -9 mid-snapshot leaves
/// the previous snapshot intact and a restart with Restore() resumes
/// from it.
///
///   Checkpointer::Options options;
///   options.directory = "/var/lib/rtrec/ckpt";
///   Checkpointer checkpointer(&service, options);
///   RTREC_RETURN_IF_ERROR(checkpointer.Start());
///   ...
///   checkpointer.Stop();  // Also takes one final snapshot.
///
/// Thread-safe; SnapshotNow may be called from any thread and is
/// serialized against the background snapshots.
class Checkpointer {
 public:
  struct Options {
    std::string directory;
    /// Interval between snapshots; also the worst-case model loss window.
    int interval_ms = 30'000;
    /// If true, Stop() (and the destructor) writes a final snapshot.
    bool snapshot_on_stop = true;
    /// Counters "checkpoint.saves" / "checkpoint.failures"; null disables.
    MetricsRegistry* metrics = nullptr;
  };

  /// `service` is shared, not owned, and must outlive the checkpointer.
  Checkpointer(RecommendationService* service, Options options);
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Spawns the background thread. Call at most once.
  Status Start();

  /// Joins the background thread (no-op if never started). Idempotent.
  void Stop();

  /// Takes one snapshot synchronously.
  Status SnapshotNow();

 private:
  void Run();

  RecommendationService* service_;
  Options options_;
  Counter* saves_ = nullptr;
  Counter* failures_ = nullptr;

  std::mutex snapshot_mu_;  // Serializes snapshots.
  std::mutex mu_;           // Guards stop_ / cv_.
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace rtrec

#endif  // RTREC_SERVICE_CHECKPOINTER_H_
