#include "service/recommendation_service.h"

#include <filesystem>
#include <fstream>

#include "kvstore/checkpoint.h"

namespace rtrec {

RecommendationService::RecommendationService(VideoTypeResolver type_resolver)
    : RecommendationService(std::move(type_resolver), Options{}) {}

RecommendationService::RecommendationService(VideoTypeResolver type_resolver,
                                             Options options)
    : options_(std::move(options)), hot_(options_.hot) {
  Recommender* primary = nullptr;
  if (options_.demographic_training) {
    DemographicTrainer::Options trainer_options;
    trainer_options.engine = options_.engine;
    trainer_ = std::make_unique<DemographicTrainer>(
        &grouper_, type_resolver, trainer_options);
    primary = trainer_.get();
  } else {
    global_engine_ =
        std::make_unique<RecEngine>(std::move(type_resolver),
                                    options_.engine);
    primary = global_engine_.get();
  }
  filter_ = std::make_unique<DemographicFilter>(primary, &hot_, &grouper_,
                                                options_.filter);
  if (options_.metrics != nullptr) {
    requests_ = options_.metrics->GetCounter("service.requests");
    actions_ = options_.metrics->GetCounter("service.actions");
  }
}

Status RecommendationService::Checkpoint(const std::string& directory) const {
  if (trainer_ != nullptr) return trainer_->SaveSnapshot(directory);
  // Global-only mode: the single engine goes into the same layout.
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Unavailable("cannot create '" + directory +
                               "': " + ec.message());
  }
  std::ofstream manifest(directory + "/manifest.txt", std::ios::trunc);
  if (!manifest.is_open()) {
    return Status::Unavailable("cannot write manifest");
  }
  manifest << kGlobalGroup << std::endl;
  manifest.flush();
  return SaveCheckpoint(directory + "/group_global.ckpt",
                        &global_engine_->factors(),
                        &global_engine_->sim_table(),
                        &global_engine_->history());
}

Status RecommendationService::Restore(const std::string& directory) {
  if (trainer_ != nullptr) return trainer_->LoadSnapshot(directory);
  return LoadCheckpoint(directory + "/group_global.ckpt",
                        &global_engine_->factors(),
                        &global_engine_->sim_table(),
                        &global_engine_->history());
}

void RecommendationService::RegisterProfile(UserId user,
                                            const UserProfile& profile) {
  grouper_.RegisterProfile(user, profile);
}

void RecommendationService::Observe(const UserAction& action) {
  if (actions_ != nullptr) actions_->Increment();
  // The filter fans out to the primary model and the hot trackers.
  filter_->Observe(action);
}

StatusOr<std::vector<ScoredVideo>> RecommendationService::Recommend(
    const RecRequest& request) {
  ScopedLatencyTimer timer(&request_latency_);
  if (requests_ != nullptr) requests_->Increment();
  return filter_->Recommend(request);
}

}  // namespace rtrec
