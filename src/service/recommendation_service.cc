#include "service/recommendation_service.h"

#include <filesystem>
#include <unordered_set>

#include "common/fault_injection.h"
#include "kvstore/checkpoint.h"

namespace rtrec {

RecommendationService::RecommendationService(VideoTypeResolver type_resolver)
    : RecommendationService(std::move(type_resolver), Options{}) {}

RecommendationService::RecommendationService(VideoTypeResolver type_resolver,
                                             Options options)
    : options_(std::move(options)), hot_(options_.hot) {
  // The engines register their own metrics (kvstore.multiget.*,
  // service.factor_cache.*) against the service's registry.
  options_.engine.metrics = options_.metrics;
  if (options_.metrics != nullptr) {
    QualityMonitor::Options quality_options = options_.quality;
    if (!quality_options.group_of) {
      quality_options.group_of = [this](UserId user) {
        return grouper_.GroupOf(user);
      };
    }
    if (!quality_options.group_name) {
      quality_options.group_name = &DemographicGrouper::GroupName;
    }
    quality_ = std::make_unique<QualityMonitor>(options_.metrics,
                                                std::move(quality_options));
    // Progressive validation: the engines built below score every action
    // before training on it. DemographicTrainer keeps the hook on its
    // global engine only, so each action is sampled exactly once.
    options_.engine.validation_hook = quality_.get();
  }
  Recommender* primary = nullptr;
  if (options_.demographic_training) {
    DemographicTrainer::Options trainer_options;
    trainer_options.engine = options_.engine;
    trainer_ = std::make_unique<DemographicTrainer>(
        &grouper_, type_resolver, trainer_options);
    primary = trainer_.get();
  } else {
    global_engine_ =
        std::make_unique<RecEngine>(std::move(type_resolver),
                                    options_.engine);
    primary = global_engine_.get();
  }
  filter_ = std::make_unique<DemographicFilter>(primary, &hot_, &grouper_,
                                                options_.filter);
  if (options_.metrics != nullptr) {
    requests_ = options_.metrics->GetCounter("service.requests");
    actions_ = options_.metrics->GetCounter("service.actions");
    recommend_span_ =
        options_.metrics->GetHistogram("trace.stage.service.recommend.us");
    observe_span_ =
        options_.metrics->GetHistogram("trace.stage.service.observe.us");
  }
}

Status RecommendationService::Checkpoint(const std::string& directory) const {
  if (trainer_ != nullptr) return trainer_->SaveSnapshot(directory);
  // Global-only mode: the single engine goes into the same layout.
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Unavailable("cannot create '" + directory +
                               "': " + ec.message());
  }
  // Data file first, manifest last and atomically: a failed checkpoint
  // write must leave the previous snapshot (and its manifest) serving.
  RTREC_RETURN_IF_ERROR(SaveCheckpoint(directory + "/group_global.ckpt",
                                       &global_engine_->factors(),
                                       &global_engine_->sim_table(),
                                       &global_engine_->history()));
  return WriteFileAtomic(directory + "/manifest.txt",
                         std::to_string(kGlobalGroup) + "\n");
}

Status RecommendationService::Restore(const std::string& directory) {
  if (trainer_ != nullptr) return trainer_->LoadSnapshot(directory);
  return LoadCheckpoint(directory + "/group_global.ckpt",
                        &global_engine_->factors(),
                        &global_engine_->sim_table(),
                        &global_engine_->history());
}

void RecommendationService::RegisterProfile(UserId user,
                                            const UserProfile& profile) {
  grouper_.RegisterProfile(user, profile);
}

void RecommendationService::Observe(const UserAction& action) {
  TraceSpan span(observe_span_);
  if (actions_ != nullptr) actions_->Increment();
  if (quality_ != nullptr) {
    // CTR join first: this engagement may answer an impression we served.
    quality_->OnEngagement(action);
    if (quality_->ShouldHoldOut(action)) {
      // Online recall@N: score the user's current top-N before the model
      // trains on the held-out action. The probe goes straight to the
      // filter so it is not counted as a request or recorded as served
      // impressions.
      RecRequest probe;
      probe.user = action.user;
      probe.top_n = quality_->options().recall_top_n;
      probe.now = action.time;
      StatusOr<std::vector<ScoredVideo>> page = filter_->Recommend(probe);
      bool hit = false;
      if (page.ok()) {
        for (const ScoredVideo& v : *page) {
          if (v.video == action.video) {
            hit = true;
            break;
          }
        }
      }
      quality_->OnHoldoutResult(action, hit);
    }
  }
  // The filter fans out to the primary model and the hot trackers.
  filter_->Observe(action);
}

StatusOr<std::vector<ScoredVideo>> RecommendationService::Recommend(
    const RecRequest& request) {
  ScopedLatencyTimer timer(&request_latency_);
  TraceSpan span(recommend_span_);
  if (requests_ != nullptr) requests_->Increment();
  RTREC_RETURN_IF_ERROR(RTREC_FAULT_POINT("service.recommend"));
  StatusOr<std::vector<ScoredVideo>> page = filter_->Recommend(request);
  if (page.ok() && quality_ != nullptr) {
    quality_->OnServed(request.user, *page, /*degraded=*/false, request.now);
  }
  return page;
}

std::vector<ScoredVideo> RecommendationService::FallbackRecommend(
    const RecRequest& request) const {
  const std::size_t n =
      request.top_n > 0 ? request.top_n : options_.filter.top_n;
  const GroupId group = grouper_.GroupOf(request.user);

  // Honour the same exclusions as the primary path: never hand back the
  // video the user is watching (request seeds), and under exclude_watched
  // drop their history too — a degraded answer must not be "the page you
  // are on".
  std::unordered_set<VideoId> excluded(request.seed_videos.begin(),
                                       request.seed_videos.end());
  if (options_.engine.recommend.exclude_watched) {
    const RecEngine* engine = nullptr;
    if (trainer_ != nullptr) {
      engine = trainer_->GetEngine(group);
      if (engine == nullptr) engine = trainer_->GetEngine(kGlobalGroup);
    } else {
      engine = global_engine_.get();
    }
    if (engine != nullptr) {
      for (const HistoryEntry& e : engine->history().Get(request.user)) {
        excluded.insert(e.video);
      }
    }
  }

  // Over-fetch so the list survives filtering at full length.
  const std::size_t fetch = n + excluded.size();
  std::vector<ScoredVideo> hot = hot_.Hottest(group, fetch, request.now);
  if (hot.empty() && group != kGlobalGroup) {
    hot = hot_.Hottest(kGlobalGroup, fetch, request.now);
  }
  if (!excluded.empty()) {
    std::erase_if(hot, [&excluded](const ScoredVideo& v) {
      return excluded.contains(v.video);
    });
  }
  if (hot.size() > n) hot.resize(n);
  if (quality_ != nullptr) {
    // Degraded answers are impressions too: a fallback page the user
    // never clicks is exactly the regression the CTR segmentation is
    // there to show. (If RecServer later discards a raced primary
    // answer, its impressions still count — an accepted small skew,
    // noted in the runbook.)
    quality_->OnServed(request.user, hot, /*degraded=*/true, request.now);
  }
  return hot;
}

}  // namespace rtrec
