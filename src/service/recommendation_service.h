#ifndef RTREC_SERVICE_RECOMMENDATION_SERVICE_H_
#define RTREC_SERVICE_RECOMMENDATION_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/engine.h"
#include "demographic/demographic_filter.h"
#include "demographic/demographic_trainer.h"
#include "demographic/grouper.h"
#include "demographic/hot_videos.h"
#include "quality/quality_monitor.h"

namespace rtrec {

/// The full production serving stack behind one object — what the paper
/// actually deploys: demographic training (per-group rMF engines with a
/// global fallback, Section 5.2.2) underneath demographic filtering
/// (group hot-video blending and cold-start fallback, Section 5.2.1),
/// with request metrics on top.
///
///   RecommendationService service(catalog.TypeResolver(), {});
///   service.RegisterProfile(user, profile);   // at sign-up
///   service.Observe(action);                  // the real-time stream
///   auto recs = service.Recommend(request);   // both Fig. 6 scenarios
///
/// Thread-safe: Observe and Recommend may run concurrently from any
/// number of threads.
class RecommendationService : public Recommender {
 public:
  struct Options {
    /// Per-group engine configuration (also the global fallback's).
    RecEngine::Options engine;
    /// Demographic filtering (blend ratio, cold-start floor).
    DemographicFilter::Options filter;
    /// Per-group hot-video tracking.
    HotVideoTracker::Options hot;
    /// If false, a single global engine is used instead of per-group
    /// training (demographic filtering still applies).
    bool demographic_training = true;
    /// Optional registry for service counters; null disables.
    MetricsRegistry* metrics = nullptr;
    /// Model-quality monitoring (progressive validation, online recall,
    /// live CTR join, drift watchdog). Active only when `metrics` is set;
    /// the demographic/arm identity functions are filled in by the
    /// service unless provided.
    QualityMonitor::Options quality;
  };

  /// Constructs with default options.
  explicit RecommendationService(VideoTypeResolver type_resolver);
  RecommendationService(VideoTypeResolver type_resolver, Options options);

  /// Registers (or updates) a user's demographic profile.
  void RegisterProfile(UserId user, const UserProfile& profile);

  /// The real-time update path.
  void Observe(const UserAction& action) override;

  /// The serving path; never errors into an empty page for cold users
  /// (hot-video fallback).
  StatusOr<std::vector<ScoredVideo>> Recommend(
      const RecRequest& request) override;

  /// Model-free serving path for degraded mode: answers purely from the
  /// demographic hot-video tracker (the user's group, falling back to
  /// the global list). Never errors and touches no engine state, so it
  /// stays available while the primary engine is failing or over its
  /// latency budget; RecServer flags such answers DEGRADED on the wire.
  std::vector<ScoredVideo> FallbackRecommend(const RecRequest& request) const;

  std::string name() const override { return "rtrec-service"; }

  /// Snapshots the model state (per-group engines or the global engine)
  /// into `directory`; Restore rebuilds it after a restart. Demographic
  /// profiles and hot lists are rebuilt from live traffic and sign-up
  /// data, mirroring production practice.
  Status Checkpoint(const std::string& directory) const;
  Status Restore(const std::string& directory);

  /// End-to-end request latency in microseconds.
  const Histogram& request_latency() const { return request_latency_; }

  DemographicGrouper& grouper() { return grouper_; }
  DemographicTrainer* trainer() { return trainer_.get(); }
  HotVideoTracker& hot_tracker() { return hot_; }
  /// Null when the service was built without a metrics registry.
  QualityMonitor* quality() { return quality_.get(); }

 private:
  Options options_;
  DemographicGrouper grouper_;
  HotVideoTracker hot_;
  std::unique_ptr<QualityMonitor> quality_;  // When options_.metrics set.
  std::unique_ptr<DemographicTrainer> trainer_;  // When demographic_training.
  std::unique_ptr<RecEngine> global_engine_;     // Otherwise.
  std::unique_ptr<DemographicFilter> filter_;
  Histogram request_latency_;
  Counter* requests_ = nullptr;
  Counter* actions_ = nullptr;
  // Trace spans recorded only when the calling thread carries a sampled
  // trace (a traced topology tuple reaching Observe through a bolt, or a
  // traced RecServer request reaching Recommend).
  Histogram* recommend_span_ = nullptr;
  Histogram* observe_span_ = nullptr;
};

}  // namespace rtrec

#endif  // RTREC_SERVICE_RECOMMENDATION_SERVICE_H_
