#include "stream/acker.h"

#include <vector>

namespace rtrec::stream {

AckTracker::AckTracker(Options options) : options_(options) {
  sweeper_ = std::thread([this] { SweeperLoop(); });
}

AckTracker::~AckTracker() {
  {
    std::lock_guard<std::mutex> lock(sweeper_mu_);
    stop_ = true;
  }
  sweeper_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
}

std::uint64_t AckTracker::RegisterOwner(Callback callback) {
  std::lock_guard<std::mutex> lock(owners_mu_);
  const std::uint64_t owner = next_owner_++;
  owners_.emplace(owner, std::move(callback));
  return owner;
}

void AckTracker::UnregisterOwner(std::uint64_t owner) {
  // Abandon the owner's pending roots first so no completion can race
  // into the callback after it is erased.
  {
    std::lock_guard<std::mutex> lock(roots_mu_);
    for (auto it = roots_.begin(); it != roots_.end();) {
      if (it->second.owner == owner) {
        it = roots_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // owners_mu_ serializes against in-flight callback invocations.
  std::lock_guard<std::mutex> lock(owners_mu_);
  owners_.erase(owner);
}

std::uint64_t AckTracker::CreateRoot(std::uint64_t owner,
                                     std::int64_t initial_count) {
  std::uint64_t root_id = 0;
  {
    std::lock_guard<std::mutex> lock(roots_mu_);
    root_id = next_root_++;
    if (initial_count > 0) {
      Root root;
      root.owner = owner;
      root.outstanding = initial_count;
      root.deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(options_.timeout_millis);
      roots_.emplace(root_id, root);
      return root_id;
    }
  }
  // Nothing downstream: the tree is trivially complete.
  Complete(root_id, owner, /*acked=*/true);
  return root_id;
}

void AckTracker::Add(std::uint64_t root_id, std::int64_t delta) {
  std::uint64_t owner = 0;
  bool completed = false;
  {
    std::lock_guard<std::mutex> lock(roots_mu_);
    auto it = roots_.find(root_id);
    if (it == roots_.end()) return;  // Already resolved or abandoned.
    it->second.outstanding += delta;
    if (it->second.outstanding <= 0) {
      owner = it->second.owner;
      roots_.erase(it);
      completed = true;
    }
  }
  if (completed) Complete(root_id, owner, /*acked=*/true);
}

void AckTracker::Complete(std::uint64_t root_id, std::uint64_t owner,
                          bool acked) {
  std::lock_guard<std::mutex> lock(owners_mu_);
  auto it = owners_.find(owner);
  if (it == owners_.end()) return;  // Owner already gone.
  it->second(root_id, acked);
}

std::size_t AckTracker::PendingRoots() const {
  std::lock_guard<std::mutex> lock(roots_mu_);
  return roots_.size();
}

void AckTracker::SweeperLoop() {
  std::unique_lock<std::mutex> sweeper_lock(sweeper_mu_);
  while (!stop_) {
    sweeper_cv_.wait_for(
        sweeper_lock,
        std::chrono::milliseconds(options_.sweep_interval_millis),
        [this] { return stop_; });
    if (stop_) return;

    std::vector<std::pair<std::uint64_t, std::uint64_t>> expired;
    {
      const auto now = std::chrono::steady_clock::now();
      std::lock_guard<std::mutex> lock(roots_mu_);
      for (auto it = roots_.begin(); it != roots_.end();) {
        if (it->second.deadline <= now) {
          expired.emplace_back(it->first, it->second.owner);
          it = roots_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const auto& [root_id, owner] : expired) {
      Complete(root_id, owner, /*acked=*/false);
    }
  }
}

}  // namespace rtrec::stream
