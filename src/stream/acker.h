#ifndef RTREC_STREAM_ACKER_H_
#define RTREC_STREAM_ACKER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace rtrec::stream {

/// Tracks tuple trees for at-least-once processing — the role of Storm's
/// acker executors. Every spout emission opens a *root*; every anchored
/// downstream emission grows the root's outstanding count and every
/// completed Process() shrinks it; at zero the root's owner (the spout)
/// gets an Ack, and a root that stays outstanding past the timeout gets
/// a Fail.
///
/// Storm tracks completion with XORed random tuple ids so each acker
/// needs O(1) state per root across a cluster; inside one process a
/// signed counter is observably equivalent and simpler, so that is what
/// this implementation uses.
///
/// Thread-safe. Callbacks fire on the tracker's sweeper thread or on the
/// completing task's thread; they must not reenter the tracker.
class AckTracker {
 public:
  struct Options {
    /// A root older than this without completing is failed.
    std::int64_t timeout_millis = 30'000;
    /// Sweep cadence of the timeout thread.
    std::int64_t sweep_interval_millis = 20;
  };

  /// Called with (root id, true) on ack and (root id, false) on fail.
  using Callback = std::function<void(std::uint64_t, bool)>;

  explicit AckTracker(Options options);
  ~AckTracker();

  AckTracker(const AckTracker&) = delete;
  AckTracker& operator=(const AckTracker&) = delete;

  /// Registers a root owner (one per spout task). The callback must stay
  /// valid until UnregisterOwner returns.
  std::uint64_t RegisterOwner(Callback callback);

  /// Drops the owner; its pending roots are abandoned without callbacks.
  /// After return, no further callback for this owner is running or will
  /// run.
  void UnregisterOwner(std::uint64_t owner);

  /// Opens a root with `initial_count` outstanding tuples. A zero count
  /// completes (acks) immediately. Returns the root id (never 0).
  std::uint64_t CreateRoot(std::uint64_t owner, std::int64_t initial_count);

  /// Adjusts a root's outstanding count; reaching zero acks it. Unknown
  /// roots (already acked/failed/abandoned) are ignored.
  void Add(std::uint64_t root, std::int64_t delta);

  /// Roots currently outstanding.
  std::size_t PendingRoots() const;

 private:
  struct Root {
    std::uint64_t owner = 0;
    std::int64_t outstanding = 0;
    std::chrono::steady_clock::time_point deadline;
  };

  void Complete(std::uint64_t root_id, std::uint64_t owner, bool acked);
  void SweeperLoop();

  Options options_;

  mutable std::mutex roots_mu_;
  std::unordered_map<std::uint64_t, Root> roots_;
  std::uint64_t next_root_ = 1;

  std::mutex owners_mu_;
  std::unordered_map<std::uint64_t, Callback> owners_;
  std::uint64_t next_owner_ = 1;

  std::mutex sweeper_mu_;
  std::condition_variable sweeper_cv_;
  bool stop_ = false;
  std::thread sweeper_;
};

}  // namespace rtrec::stream

#endif  // RTREC_STREAM_ACKER_H_
