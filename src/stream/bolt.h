#ifndef RTREC_STREAM_BOLT_H_
#define RTREC_STREAM_BOLT_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "stream/tuple.h"

namespace rtrec::stream {

/// Name of the stream used when a component emits without naming one.
inline const char kDefaultStream[] = "default";

/// Per-task runtime information handed to spouts and bolts at startup.
struct TaskContext {
  /// Component name as declared in the topology.
  std::string component;
  /// This task's index within the component, in [0, parallelism).
  std::size_t task_index = 0;
  /// The component's parallelism (number of tasks).
  std::size_t parallelism = 1;
  /// Topology-wide metrics registry (never null while running).
  MetricsRegistry* metrics = nullptr;
};

/// Sink for tuples produced by a spout or bolt. Bound to the emitting task;
/// not thread-safe (each task runs on one thread, as in Storm executors).
class OutputCollector {
 public:
  virtual ~OutputCollector() = default;

  /// Emits `tuple` on the component's default stream. With acking
  /// enabled, a spout emission returns the new tuple-tree id (see
  /// Spout::Ack) and a bolt emission returns the anchored root id;
  /// without acking, returns 0.
  std::uint64_t Emit(Tuple tuple) {
    return EmitTo(kDefaultStream, std::move(tuple));
  }

  /// Emits `tuple` on the named stream. Tuples on streams nobody
  /// subscribes to are dropped (counted in metrics).
  virtual std::uint64_t EmitTo(const std::string& stream, Tuple tuple) = 0;
};

/// A stream transformer: consumes input tuples, optionally emits output
/// tuples (Storm bolt). One instance is created per task via the factory,
/// so instances may keep per-task state without synchronization.
class Bolt {
 public:
  virtual ~Bolt() = default;

  /// Called once on the task's thread before any Process call.
  virtual void Prepare(const TaskContext& context) { (void)context; }

  /// Called for every input tuple, on the task's thread.
  virtual void Process(const Tuple& tuple, OutputCollector& collector) = 0;

  /// Called once after the last Process call, before shutdown.
  virtual void Cleanup() {}
};

/// A stream source (Storm spout). `Next` is called in a loop on the task's
/// thread; returning false signals exhaustion, after which the topology
/// drains and shuts the downstream bolts cleanly.
class Spout {
 public:
  virtual ~Spout() = default;

  /// Called once on the task's thread before any Next call.
  virtual void Open(const TaskContext& context) { (void)context; }

  /// Emits zero or more tuples. Returns false when the source is
  /// exhausted (finite replay) — a production spout simply never returns
  /// false.
  virtual bool Next(OutputCollector& collector) = 0;

  /// Reliability callbacks (Storm's at-least-once API; active only when
  /// TopologyOptions::enable_acking is set). `tuple_id` is the value
  /// Emit returned for the root tuple. Ack fires when every downstream
  /// tuple anchored to the root has been fully processed; Fail fires
  /// when the tree does not complete within the ack timeout (replay is
  /// the spout's decision). Called from an internal tracker thread —
  /// implementations must be thread-safe with respect to Next().
  virtual void Ack(std::uint64_t tuple_id) { (void)tuple_id; }
  virtual void Fail(std::uint64_t tuple_id) { (void)tuple_id; }

  /// Called once after the final Next call.
  virtual void Close() {}
};

/// Factories create one instance per task.
using BoltFactory = std::function<std::unique_ptr<Bolt>()>;
using SpoutFactory = std::function<std::unique_ptr<Spout>()>;

}  // namespace rtrec::stream

#endif  // RTREC_STREAM_BOLT_H_
