#include "stream/grouping.h"

#include <cassert>

#include "common/types.h"

namespace rtrec::stream {

GroupingRouter::GroupingRouter(Grouping grouping,
                               std::size_t num_consumer_tasks)
    : grouping_(std::move(grouping)), num_consumer_tasks_(num_consumer_tasks) {
  assert(num_consumer_tasks_ > 0);
  if (grouping_.type == GroupingType::kFields) {
    assert(!grouping_.fields.empty() && "fields grouping requires keys");
  }
}

void GroupingRouter::Route(const Tuple& tuple, std::vector<std::size_t>& out) {
  out.clear();
  switch (grouping_.type) {
    case GroupingType::kShuffle: {
      out.push_back(round_robin_);
      round_robin_ = (round_robin_ + 1) % num_consumer_tasks_;
      return;
    }
    case GroupingType::kFields: {
      std::uint64_t h = 0x9E3779B97F4A7C15ull;
      for (const std::string& field : grouping_.fields) {
        const Value* v = tuple.GetByName(field);
        const std::uint64_t fh =
            v == nullptr ? HashValue(Value{}) : HashValue(*v);
        h = MixHash64(h ^ fh);
      }
      out.push_back(static_cast<std::size_t>(h % num_consumer_tasks_));
      return;
    }
    case GroupingType::kGlobal: {
      out.push_back(0);
      return;
    }
    case GroupingType::kAll: {
      out.reserve(num_consumer_tasks_);
      for (std::size_t i = 0; i < num_consumer_tasks_; ++i) out.push_back(i);
      return;
    }
  }
}

}  // namespace rtrec::stream
