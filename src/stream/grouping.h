#ifndef RTREC_STREAM_GROUPING_H_
#define RTREC_STREAM_GROUPING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stream/tuple.h"

namespace rtrec::stream {

/// How a producer's tuples are distributed over a consumer's tasks —
/// Storm's stream groupings (Section 5.1 of the paper relies on fields
/// grouping to make per-key vector updates single-writer).
enum class GroupingType {
  /// Round-robin over consumer tasks (Storm's shuffle grouping; we use
  /// per-producer-task round-robin, which is deterministic).
  kShuffle,
  /// Hash of the named fields picks the task: equal keys always reach the
  /// same task.
  kFields,
  /// All tuples go to task 0.
  kGlobal,
  /// Every task receives a copy of every tuple.
  kAll,
};

/// A grouping declaration: the type plus the key fields (for kFields).
struct Grouping {
  GroupingType type = GroupingType::kShuffle;
  std::vector<std::string> fields;

  static Grouping Shuffle() { return {GroupingType::kShuffle, {}}; }
  static Grouping Fields(std::vector<std::string> fields) {
    return {GroupingType::kFields, std::move(fields)};
  }
  static Grouping Global() { return {GroupingType::kGlobal, {}}; }
  static Grouping All() { return {GroupingType::kAll, {}}; }
};

/// Routes tuples for one (producer → consumer) edge. Stateless except for
/// the round-robin cursor, so each producer task owns one router instance.
class GroupingRouter {
 public:
  GroupingRouter(Grouping grouping, std::size_t num_consumer_tasks);

  /// Destination consumer-task indices for `tuple`. For kAll this is every
  /// task; for the others exactly one.
  ///
  /// For kFields the route is a pure function of the key fields, which is
  /// the property making vector writes conflict-free in the MFStorage
  /// bolt. Missing key fields hash as null (route to a stable task) so a
  /// malformed tuple cannot crash the pipeline.
  void Route(const Tuple& tuple, std::vector<std::size_t>& out);

  std::size_t num_consumer_tasks() const { return num_consumer_tasks_; }
  const Grouping& grouping() const { return grouping_; }

 private:
  Grouping grouping_;
  std::size_t num_consumer_tasks_;
  std::size_t round_robin_ = 0;
};

}  // namespace rtrec::stream

#endif  // RTREC_STREAM_GROUPING_H_
