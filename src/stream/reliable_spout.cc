#include "stream/reliable_spout.h"

#include <cassert>
#include <utility>

namespace rtrec::stream {

ReliableReplaySpout::ReliableReplaySpout(Generator generator)
    : ReliableReplaySpout(std::move(generator), Options{}) {}

ReliableReplaySpout::ReliableReplaySpout(Generator generator, Options options)
    : generator_(std::move(generator)), options_(options) {
  assert(generator_ != nullptr);
}

bool ReliableReplaySpout::Next(OutputCollector& collector) {
  // 1. Replays first: failed trees take priority over fresh input.
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!retry_queue_.empty()) {
      InFlight item = std::move(retry_queue_.front());
      retry_queue_.pop_front();
      ++item.attempts;
      Tuple to_send = item.tuple;
      lock.unlock();
      const std::uint64_t id = collector.Emit(std::move(to_send));
      lock.lock();
      TrackLocked(id, std::move(item));
      return true;
    }
  }

  // 2. Fresh input.
  if (!generator_done_) {
    std::optional<Tuple> tuple = generator_();
    if (tuple.has_value()) {
      InFlight item;
      item.tuple = *tuple;
      const std::uint64_t id = collector.Emit(std::move(*tuple));
      std::lock_guard<std::mutex> lock(mu_);
      TrackLocked(id, std::move(item));
      return true;
    }
    generator_done_ = true;
  }

  // 3. End-of-stream drain: stay alive until every tree resolves (acks
  //    arrive, or failures land back in the retry queue and loop to 1).
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_.empty() && retry_queue_.empty()) return false;
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(options_.drain_poll_millis));
  return true;
}

void ReliableReplaySpout::TrackLocked(std::uint64_t id, InFlight item) {
  if (early_acked_.erase(id) > 0) {
    ++acked_;
    return;
  }
  if (early_failed_.erase(id) > 0) {
    ++failed_;
    if (options_.max_retries > 0 && item.attempts > options_.max_retries) {
      ++gave_up_;
      return;
    }
    retry_queue_.push_back(std::move(item));
    return;
  }
  in_flight_.emplace(id, std::move(item));
}

void ReliableReplaySpout::Ack(std::uint64_t tuple_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_.erase(tuple_id) > 0) {
    ++acked_;
    return;
  }
  // The tree completed before Next() registered the emission; park the
  // ack so TrackLocked can claim it.
  early_acked_.insert(tuple_id);
}

void ReliableReplaySpout::Fail(std::uint64_t tuple_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = in_flight_.find(tuple_id);
  if (it == in_flight_.end()) {
    // Timed out before Next() registered the emission (e.g. Emit stalled
    // on backpressure longer than the ack timeout).
    early_failed_.insert(tuple_id);
    return;
  }
  ++failed_;
  InFlight item = std::move(it->second);
  in_flight_.erase(it);
  if (options_.max_retries > 0 && item.attempts > options_.max_retries) {
    ++gave_up_;
    return;
  }
  retry_queue_.push_back(std::move(item));
}

std::size_t ReliableReplaySpout::acked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acked_;
}

std::size_t ReliableReplaySpout::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

std::size_t ReliableReplaySpout::gave_up() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gave_up_;
}

std::size_t ReliableReplaySpout::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_.size() + retry_queue_.size();
}

}  // namespace rtrec::stream
