#ifndef RTREC_STREAM_RELIABLE_SPOUT_H_
#define RTREC_STREAM_RELIABLE_SPOUT_H_

#include <chrono>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "stream/bolt.h"

namespace rtrec::stream {

/// A spout with at-least-once delivery over a finite tuple generator:
/// every emission is remembered until acked; failed (timed-out) trees
/// are replayed; Next() only declares exhaustion once the generator is
/// drained *and* every emission has been acknowledged. Requires
/// TopologyOptions::enable_acking.
///
/// This is the standard Storm reliable-spout pattern: the source must be
/// replayable (here: we retain in-flight tuples in memory; a production
/// source would retain offsets into a durable log).
class ReliableReplaySpout : public Spout {
 public:
  /// Pulls the next fresh tuple; nullopt once the source is exhausted.
  /// Called only from the spout task's thread.
  using Generator = std::function<std::optional<Tuple>()>;

  struct Options {
    /// Cap on replays of a single tuple before it is dropped (counted in
    /// `gave_up()`); 0 means retry forever.
    std::size_t max_retries = 0;
    /// Idle backoff while waiting for outstanding acks at end of stream.
    std::int64_t drain_poll_millis = 1;
  };

  explicit ReliableReplaySpout(Generator generator);
  ReliableReplaySpout(Generator generator, Options options);

  bool Next(OutputCollector& collector) override;
  void Ack(std::uint64_t tuple_id) override;
  void Fail(std::uint64_t tuple_id) override;

  /// Observability for tests and ops.
  std::size_t acked() const;
  std::size_t failed() const;
  std::size_t gave_up() const;
  std::size_t in_flight() const;

 private:
  struct InFlight {
    Tuple tuple;
    std::size_t attempts = 1;
  };

  /// Registers an emission under `id`, reconciling against completions
  /// that raced ahead of the registration. Caller holds `mu_`.
  void TrackLocked(std::uint64_t id, InFlight item);

  Generator generator_;
  Options options_;
  bool generator_done_ = false;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, InFlight> in_flight_;
  std::deque<InFlight> retry_queue_;
  // Emit() runs outside `mu_` (it can block on backpressure), so a tree
  // can be acked or failed before Next() registers it in `in_flight_`.
  // Such early completions park here until the registration claims them;
  // without this, the racing entry would sit in `in_flight_` forever and
  // the end-of-stream drain would never finish.
  std::unordered_set<std::uint64_t> early_acked_;
  std::unordered_set<std::uint64_t> early_failed_;
  std::size_t acked_ = 0;
  std::size_t failed_ = 0;
  std::size_t gave_up_ = 0;
};

}  // namespace rtrec::stream

#endif  // RTREC_STREAM_RELIABLE_SPOUT_H_
