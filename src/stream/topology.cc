#include "stream/topology.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>
#include <set>
#include <thread>
#include <unordered_set>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "concurrent/latency_stats.h"

namespace rtrec::stream {

namespace {

// Engine-wide queue defaults, used when neither TopologyOptions nor the
// TopologySpec declare a preference.
constexpr std::size_t kDefaultQueueCapacity = 1024;
constexpr std::size_t kDefaultDrainBatch = 64;

// Untraced queue-wait sampling rate: producers stamp 1 in N envelopes
// so "<component>.queue_wait_us" stays populated when tracing is off,
// at one clock read per N tuples.
constexpr std::uint32_t kQueueWaitSampleEveryN = 64;

// CAS-once (from zero) and monotonic-max stores for the ingest-window
// stamps; contention is a handful of task threads at start/end of run.
void StoreOnce(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t expected = 0;
  slot.compare_exchange_strong(expected, value, std::memory_order_relaxed);
}

void StoreMax(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t current = slot.load(std::memory_order_relaxed);
  while (current < value &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

/// Routes one producer task's emissions to consumer queues. Owns the
/// per-edge routers, so round-robin cursors are task-local (deterministic
/// per task) and no synchronization is needed on the emit path.
class Topology::TaskCollector : public OutputCollector {
 public:
  /// For spout tasks, `acker_owner` identifies the spout in the tracker;
  /// for bolt tasks, `current_root` points at the root of the tuple
  /// being processed (set by the task loop before each Process call).
  /// `current_trace` mirrors `current_root`: null for spout tasks (each
  /// emission mints a fresh trace root from `tracer`), otherwise the
  /// trace of the tuple being processed, which anchored emissions join.
  TaskCollector(ComponentRuntime* component,
                std::unordered_map<std::string, std::vector<EdgeRuntime>>
                    edges_by_stream,
                AckTracker* acker, std::uint64_t acker_owner,
                const std::uint64_t* current_root, Tracer* tracer,
                const TraceContext* current_trace)
      : component_(component),
        edges_by_stream_(std::move(edges_by_stream)),
        acker_(acker),
        acker_owner_(acker_owner),
        current_root_(current_root),
        tracer_(tracer),
        current_trace_(current_trace) {}

  std::uint64_t EmitTo(const std::string& stream, Tuple tuple) override {
    auto it = edges_by_stream_.find(stream);
    const bool subscribed =
        it != edges_by_stream_.end() && !it->second.empty();

    // Gather destinations first: the tracked count must be registered
    // before any copy is pushed (a consumer could otherwise complete the
    // tree before the remaining copies are accounted for).
    destinations_.clear();
    if (subscribed) {
      for (EdgeRuntime& edge : it->second) {
        edge.router.Route(tuple, scratch_);
        for (std::size_t consumer_task : scratch_) {
          destinations_.emplace_back(edge.consumer_queues[consumer_task],
                                     edge.consumer_depth);
        }
      }
    }

    std::uint64_t root = 0;
    if (acker_ != nullptr) {
      if (current_root_ == nullptr) {
        // Spout emission: open a tree (an unsubscribed emission is
        // trivially complete and acks immediately).
        root = acker_->CreateRoot(
            acker_owner_, static_cast<std::int64_t>(destinations_.size()));
      } else if (*current_root_ != 0) {
        // Bolt emission: anchor to the tuple being processed.
        root = *current_root_;
        if (!destinations_.empty()) {
          acker_->Add(root, static_cast<std::int64_t>(destinations_.size()));
        }
      }
    }

    // Trace attachment: spout emissions are trace roots (the tracer
    // decides sampling); bolt emissions inherit the trace of the tuple
    // being processed, so a sampled action is followed through every
    // stage it fans out to.
    TraceContext trace;
    if (tracer_ != nullptr) {
      trace = current_trace_ == nullptr ? tracer_->StartTrace()
                                        : *current_trace_;
    }

    if (!subscribed) {
      component_->dropped->Increment();
      return root;
    }
    component_->emitted->Increment();
    // Traced envelopes always carry an enqueue timestamp (the tracer's
    // queue histograms need it); untraced ones are stamped 1-in-N so the
    // consumer can keep "<component>.queue_wait_us" live with tracing
    // off, at one clock read per N tuples.
    std::int64_t enqueue_us = 0;
    if (trace.sampled() || queue_stamp_.Tick()) {
      enqueue_us = Tracer::NowMicros();
    }
    for (auto& [queue, depth] : destinations_) {
      // A fired "stream.queue.push" fault drops this copy on the floor
      // (a lost in-flight tuple); with acking on, its tree fails by
      // timeout and the spout replays it. The tracked count registered
      // above intentionally keeps the dropped copy, which is what makes
      // the tree time out instead of acking a lost tuple.
      if (!RTREC_FAULT_POINT("stream.queue.push").ok()) {
        component_->dropped->Increment();
        continue;
      }
      // Push blocks when the consumer is saturated: backpressure.
      Envelope envelope(tuple, root);
      envelope.trace = trace;
      envelope.enqueue_us = enqueue_us;
      if (queue->Push(std::move(envelope)) && depth != nullptr) {
        depth->Add(1);
      }
    }
    return root;
  }

  /// Re-points spout emissions at a new tracker registration; used when
  /// the supervisor replaces a crashed spout instance.
  void set_acker_owner(std::uint64_t owner) { acker_owner_ = owner; }

 private:
  ComponentRuntime* component_;
  std::unordered_map<std::string, std::vector<EdgeRuntime>> edges_by_stream_;
  AckTracker* acker_;
  std::uint64_t acker_owner_;
  const std::uint64_t* current_root_;
  Tracer* tracer_;
  const TraceContext* current_trace_;
  // Task-local (collectors are task-owned), so Tick() needs no sync.
  concurrent::LatencyStats queue_stamp_{nullptr, kQueueWaitSampleEveryN};
  std::vector<std::size_t> scratch_;
  std::vector<std::pair<TaskQueue*, Gauge*>> destinations_;
};

Topology::Topology(TopologySpec spec, TopologyOptions options)
    : spec_(std::move(spec)),
      options_(options),
      cpu_plan_(/*enabled=*/options.pin_cpus) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (options_.enable_acking) {
    AckTracker::Options acker_options;
    acker_options.timeout_millis = options_.ack_timeout_millis;
    acker_ = std::make_unique<AckTracker>(acker_options);
  }
}

StatusOr<std::unique_ptr<Topology>> Topology::Create(TopologySpec spec,
                                                     TopologyOptions options) {
  if (spec.components.empty()) {
    return Status::InvalidArgument("empty topology spec");
  }
  std::unique_ptr<Topology> topo(new Topology(std::move(spec), options));
  RTREC_RETURN_IF_ERROR(topo->Wire());
  return topo;
}

Status Topology::Wire() {
  // Resolve queue sizing: explicit TopologyOptions win, then the
  // builder-declared spec defaults, then the engine-wide defaults.
  resolved_queue_capacity_ = options_.queue_capacity != 0
                                 ? options_.queue_capacity
                             : spec_.default_queue_capacity != 0
                                 ? spec_.default_queue_capacity
                                 : kDefaultQueueCapacity;
  resolved_drain_batch_ =
      options_.drain_batch != 0       ? options_.drain_batch
      : spec_.default_drain_batch != 0 ? spec_.default_drain_batch
                                       : kDefaultDrainBatch;
  queue_stats_.push_retries =
      metrics_->GetCounter("stream.queue.push_retries");
  queue_stats_.batch_drains =
      metrics_->GetCounter("stream.queue.batch_drains");
  queue_stats_.parked_wakeups =
      metrics_->GetCounter("stream.queue.parked_wakeups");
  components_.resize(spec_.components.size());
  // Pass 1: metrics.
  for (std::size_t i = 0; i < spec_.components.size(); ++i) {
    ComponentRuntime& rt = components_[i];
    rt.spec = spec_.components[i];
    const std::string& name = rt.spec.name;
    rt.emitted = metrics_->GetCounter(name + ".emitted");
    rt.processed = metrics_->GetCounter(name + ".processed");
    rt.dropped = metrics_->GetCounter(name + ".dropped");
    rt.process_us = metrics_->GetHistogram(name + ".process_us");
    rt.queue_depth = metrics_->GetGauge(name + ".queue_depth");
    rt.queue_wait_us = metrics_->GetHistogram(name + ".queue_wait_us");
  }
  // Pass 2: expected EOS counts (validating producer references). A
  // consumer task's expected_eos is exactly the number of producer tasks
  // that push into its queue — every upstream task pushes data then one
  // EOS marker — so it doubles as the ring's producer count.
  for (std::size_t i = 0; i < components_.size(); ++i) {
    ComponentRuntime& consumer = components_[i];
    std::unordered_set<std::string> distinct_producers;
    for (const EdgeSpec& edge : consumer.spec.inputs) {
      distinct_producers.insert(edge.from_component);
    }
    for (const std::string& producer_name : distinct_producers) {
      const int p = spec_.IndexOf(producer_name);
      if (p < 0) {
        return Status::InvalidArgument("unknown producer '" + producer_name +
                                       "'");
      }
      consumer.expected_eos +=
          components_[static_cast<std::size_t>(p)].spec.parallelism;
    }
  }
  // Pass 3: input queues — wait-free SPSC where exactly one upstream
  // task feeds the consumer task, CAS-based MPSC where grouping fans
  // several producer tasks into one queue.
  for (ComponentRuntime& rt : components_) {
    if (rt.spec.is_spout()) continue;
    TaskQueue::Options queue_options;
    queue_options.capacity = resolved_queue_capacity_;
    queue_options.single_producer = rt.expected_eos <= 1;
    queue_options.stats = queue_stats_;
    rt.queues.reserve(rt.spec.parallelism);
    for (std::size_t t = 0; t < rt.spec.parallelism; ++t) {
      rt.queues.push_back(std::make_unique<TaskQueue>(queue_options));
    }
  }
  // Pass 4: EOS broadcast targets from the producer side.
  for (ComponentRuntime& consumer : components_) {
    std::unordered_set<std::string> distinct_producers;
    for (const EdgeSpec& edge : consumer.spec.inputs) {
      distinct_producers.insert(edge.from_component);
    }
    for (const std::string& producer_name : distinct_producers) {
      ComponentRuntime& producer =
          components_[static_cast<std::size_t>(spec_.IndexOf(producer_name))];
      for (auto& queue : consumer.queues) {
        producer.eos_targets.push_back(queue.get());
      }
    }
  }
  return Status::OK();
}

Status Topology::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("topology already started");
  }
  // Launch consumers before producers so queues exist (they do — Wire laid
  // them out), and simply spawn everything; queues buffer until ready.
  for (std::size_t i = 0; i < components_.size(); ++i) {
    for (std::size_t t = 0; t < components_[i].spec.parallelism; ++t) {
      if (components_[i].spec.is_spout()) {
        threads_.emplace_back([this, i, t] { RunSpoutTask(i, t); });
      } else {
        threads_.emplace_back([this, i, t] { RunBoltTask(i, t); });
      }
    }
  }
  return Status::OK();
}

Status Topology::Join() {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("topology not started");
  }
  for (std::thread& th : threads_) {
    if (th.joinable()) th.join();
  }
  // Every tuple has been processed (or timed out via the sweeper), so
  // all reliability callbacks have fired; retire the tracker
  // registrations. The spout objects themselves stay alive until the
  // topology is destroyed — callers inspect their counters after Join.
  if (acker_ != nullptr) {
    std::lock_guard<std::mutex> lock(parked_spouts_mu_);
    for (auto& [spout, owner] : parked_spouts_) {
      acker_->UnregisterOwner(owner);
      owner = 0;
    }
  }
  // Publish the ingest-window stamps so harnesses (bench_runner) can
  // compute honest end-to-end throughput: first spout emission through
  // the last terminal bolt finishing its drain, excluding topology
  // setup and thread teardown.
  const std::int64_t first = first_emit_us_.load(std::memory_order_relaxed);
  if (first != 0) {
    metrics_->GetGauge("topology.first_emit_us")->Set(first);
    metrics_->GetGauge("topology.spout_done_us")
        ->Set(spout_done_us_.load(std::memory_order_relaxed));
    metrics_->GetGauge("topology.final_done_us")
        ->Set(final_done_us_.load(std::memory_order_relaxed));
  }
  finished_.store(true, std::memory_order_release);
  return Status::OK();
}

void Topology::MaybePinTask() {
  const int cpu = cpu_plan_.NextCpu();
  if (cpu < 0) return;  // Pinning disabled or no CPUs discovered.
  const Status status = concurrent::CpuBind::PinCurrentThread(cpu);
  if (status.ok()) {
    metrics_->GetCounter("topology.pinned_tasks")->Increment();
  } else if (!pin_warned_.exchange(true, std::memory_order_relaxed)) {
    RTREC_LOG(kWarn) << "task CPU pinning unavailable: " << status.ToString();
  }
}

void Topology::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
}

Topology::~Topology() {
  RequestStop();
  for (std::thread& th : threads_) {
    if (th.joinable()) th.join();
  }
  if (acker_ != nullptr) {
    std::lock_guard<std::mutex> lock(parked_spouts_mu_);
    for (auto& [spout, owner] : parked_spouts_) {
      if (owner != 0) acker_->UnregisterOwner(owner);
    }
    parked_spouts_.clear();
  }
}

void Topology::BroadcastEos(ComponentRuntime& component) {
  for (TaskQueue* queue : component.eos_targets) {
    Envelope eos;
    eos.eos = true;
    queue->Push(std::move(eos));
  }
}

void Topology::RunSpoutTask(std::size_t component_index,
                            std::size_t task_index) {
  MaybePinTask();
  ComponentRuntime& rt = components_[component_index];

  // Assemble this task's collector: edges from this component to all
  // subscribers, keyed by stream.
  std::unordered_map<std::string, std::vector<EdgeRuntime>> edges;
  for (std::size_t c = 0; c < components_.size(); ++c) {
    for (const EdgeSpec& edge : components_[c].spec.inputs) {
      if (edge.from_component != rt.spec.name) continue;
      std::vector<TaskQueue*> queues;
      queues.reserve(components_[c].queues.size());
      for (auto& q : components_[c].queues) queues.push_back(q.get());
      edges[edge.stream].emplace_back(edge.grouping, std::move(queues),
                                      components_[c].queue_depth);
    }
  }
  TaskCollector collector(&rt, std::move(edges), acker_.get(),
                          /*acker_owner=*/0, /*current_root=*/nullptr,
                          options_.tracer, /*current_trace=*/nullptr);

  TaskContext context;
  context.component = rt.spec.name;
  context.task_index = task_index;
  context.parallelism = rt.spec.parallelism;
  context.metrics = metrics_;

  Counter* restarts_total = metrics_->GetCounter("topology.task_restarts");
  Counter* restarts_here =
      metrics_->GetCounter(rt.spec.name + ".task_restarts");

  std::unique_ptr<Spout> spout;
  std::uint64_t acker_owner = 0;
  // Builds (or rebuilds, after a crash) the spout instance and its
  // tracker registration. Factory/Open failures leave `spout` null.
  auto make_spout = [&]() -> bool {
    try {
      spout = rt.spec.spout_factory();
      spout->Open(context);
    } catch (const std::exception& e) {
      RTREC_LOG(kError) << rt.spec.name << " task " << task_index
                        << " failed to open spout: " << e.what();
      spout.reset();
      return false;
    } catch (...) {
      RTREC_LOG(kError) << rt.spec.name << " task " << task_index
                        << " failed to open spout";
      spout.reset();
      return false;
    }
    if (acker_ != nullptr) {
      Spout* raw = spout.get();
      acker_owner =
          acker_->RegisterOwner([raw](std::uint64_t root, bool acked) {
            if (acked) {
              raw->Ack(root);
            } else {
              raw->Fail(root);
            }
          });
      collector.set_acker_owner(acker_owner);
    }
    return true;
  };

  int consecutive_failures = 0;
  std::int64_t backoff_ms = options_.restart_backoff_initial_ms;
  bool alive = make_spout();
  // The ingest window opens when the first spout task starts pulling
  // (one clock read per task, not per tuple).
  if (alive) StoreOnce(first_emit_us_, Tracer::NowMicros());
  while (alive && !stop_requested_.load(std::memory_order_acquire)) {
    bool call_ok = false;
    bool has_more = true;
    if (RTREC_FAULT_POINT("stream.spout.next").ok()) {
      try {
        ScopedLatencyTimer timer(rt.process_us);
        has_more = spout->Next(collector);
        call_ok = true;
      } catch (const std::exception& e) {
        RTREC_LOG(kError) << rt.spec.name << " task " << task_index
                          << " crashed in Next: " << e.what();
      } catch (...) {
        RTREC_LOG(kError) << rt.spec.name << " task " << task_index
                          << " crashed in Next";
      }
    }
    if (call_ok) {
      consecutive_failures = 0;
      backoff_ms = options_.restart_backoff_initial_ms;
      if (!has_more) break;
      continue;
    }
    // Crash: retire this incarnation (abandoning its in-flight trees —
    // their replay state died with the instance) and restart from the
    // factory, unless the consecutive-failure budget is spent.
    if (++consecutive_failures > options_.max_task_restarts) {
      RTREC_LOG(kError) << rt.spec.name << " task " << task_index
                        << " exceeded max_task_restarts="
                        << options_.max_task_restarts << "; giving up";
      break;
    }
    restarts_total->Increment();
    restarts_here->Increment();
    try {
      spout->Close();
    } catch (...) {
    }
    if (acker_ != nullptr) acker_->UnregisterOwner(acker_owner);
    spout.reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, options_.restart_backoff_max_ms);
    alive = make_spout();
  }
  if (spout != nullptr) {
    try {
      spout->Close();
    } catch (...) {
    }
    if (acker_ != nullptr) {
      // Keep the spout registered: its tuple trees may still be in flight
      // downstream. Join() unregisters once the whole DAG has drained.
      std::lock_guard<std::mutex> lock(parked_spouts_mu_);
      parked_spouts_.emplace_back(std::move(spout), acker_owner);
    }
  }
  BroadcastEos(rt);
  StoreMax(spout_done_us_, Tracer::NowMicros());
}

void Topology::RunBoltTask(std::size_t component_index,
                           std::size_t task_index) {
  MaybePinTask();
  ComponentRuntime& rt = components_[component_index];

  std::unordered_map<std::string, std::vector<EdgeRuntime>> edges;
  for (std::size_t c = 0; c < components_.size(); ++c) {
    for (const EdgeSpec& edge : components_[c].spec.inputs) {
      if (edge.from_component != rt.spec.name) continue;
      std::vector<TaskQueue*> queues;
      queues.reserve(components_[c].queues.size());
      for (auto& q : components_[c].queues) queues.push_back(q.get());
      edges[edge.stream].emplace_back(edge.grouping, std::move(queues),
                                      components_[c].queue_depth);
    }
  }
  std::uint64_t current_root = 0;
  TraceContext current_trace;
  TaskCollector collector(&rt, std::move(edges), acker_.get(),
                          /*acker_owner=*/0, &current_root, options_.tracer,
                          &current_trace);

  // Per-task trace histogram pointers, resolved once: the per-tuple cost
  // of tracing on this path is a branch for unsampled tuples and three
  // Histogram::Add calls for sampled ones.
  Tracer* tracer = options_.tracer;
  Histogram* trace_stage_us = nullptr;
  Histogram* trace_queue_us = nullptr;
  Histogram* trace_e2e_us = nullptr;
  if (tracer != nullptr) {
    trace_stage_us = tracer->StageHistogram(rt.spec.name);
    trace_queue_us = tracer->QueueHistogram(rt.spec.name);
    trace_e2e_us = tracer->SinceRootHistogram(rt.spec.name);
  }

  TaskContext context;
  context.component = rt.spec.name;
  context.task_index = task_index;
  context.parallelism = rt.spec.parallelism;
  context.metrics = metrics_;

  Counter* restarts_total = metrics_->GetCounter("topology.task_restarts");
  Counter* restarts_here =
      metrics_->GetCounter(rt.spec.name + ".task_restarts");

  std::unique_ptr<Bolt> bolt;
  // Builds (or rebuilds, after a crash) the bolt instance. Factory /
  // Prepare failures leave `bolt` null.
  auto make_bolt = [&]() -> bool {
    try {
      bolt = rt.spec.bolt_factory();
      bolt->Prepare(context);
      return true;
    } catch (const std::exception& e) {
      RTREC_LOG(kError) << rt.spec.name << " task " << task_index
                        << " failed to prepare bolt: " << e.what();
    } catch (...) {
      RTREC_LOG(kError) << rt.spec.name << " task " << task_index
                        << " failed to prepare bolt";
    }
    bolt.reset();
    return false;
  };

  int consecutive_failures = 0;
  std::int64_t backoff_ms = options_.restart_backoff_initial_ms;
  // A degraded task has spent its restart budget: it keeps draining its
  // queue (dropping tuples) so the EOS cascade still completes.
  bool degraded = !make_bolt();

  TaskQueue& queue = *rt.queues[task_index];
  std::size_t eos_seen = 0;
  // Batched drain: one blocking PopBatch per wakeup amortizes the
  // park/wake handshake over up to resolved_drain_batch_ tuples; the
  // buffer is reused across wakeups so the steady state allocates
  // nothing. Per-tuple semantics (supervision, tracing, acking, EOS
  // counting) are identical to the old one-Pop-per-iteration loop.
  std::vector<Envelope> batch;
  batch.reserve(resolved_drain_batch_);
  while (eos_seen < rt.expected_eos) {
    batch.clear();
    if (queue.PopBatch(batch, resolved_drain_batch_) == 0) {
      break;  // Queue force-closed.
    }
    for (Envelope& envelope : batch) {
      if (envelope.eos) {
        ++eos_seen;
        continue;
      }
      rt.queue_depth->Add(-1);
      current_root = envelope.root;
      current_trace = envelope.trace;
      const bool traced = tracer != nullptr && current_trace.sampled();
      std::int64_t trace_start_us = 0;
      if (traced) {
        trace_start_us = Tracer::NowMicros();
        trace_queue_us->Add(trace_start_us - envelope.enqueue_us);
      } else if (envelope.enqueue_us != 0) {
        // 1-in-N stamped untraced tuple (TaskCollector's LatencyStats):
        // keeps queue-wait visible when tracing is off.
        rt.queue_wait_us->Add(Tracer::NowMicros() - envelope.enqueue_us);
      }
      bool processed_ok = false;
      if (!degraded && RTREC_FAULT_POINT("stream.bolt.process").ok()) {
        try {
          ScopedLatencyTimer timer(rt.process_us);
          // Install the tuple's trace as the thread-current one so spans
          // in layers the bolt calls into (KV stores, models) attach.
          std::optional<ScopedTraceContext> trace_scope;
          if (traced) trace_scope.emplace(current_trace);
          bolt->Process(envelope.tuple, collector);
          processed_ok = true;
        } catch (const std::exception& e) {
          RTREC_LOG(kError) << rt.spec.name << " task " << task_index
                            << " crashed in Process: " << e.what();
        } catch (...) {
          RTREC_LOG(kError) << rt.spec.name << " task " << task_index
                            << " crashed in Process";
        }
      }
      if (processed_ok) {
        consecutive_failures = 0;
        backoff_ms = options_.restart_backoff_initial_ms;
        rt.processed->Increment();
        if (traced) {
          const std::int64_t end_us = Tracer::NowMicros();
          trace_stage_us->Add(end_us - trace_start_us);
          // At a terminal bolt (result_storage in Fig. 2) this is the
          // pipeline's end-to-end latency for the traced action.
          trace_e2e_us->Add(end_us - current_trace.start_us);
        }
        if (acker_ != nullptr && current_root != 0) {
          // This tuple's own contribution to the tree is done (any
          // anchored emissions were added during Process).
          acker_->Add(current_root, -1);
        }
      } else {
        // The tuple is dropped, deliberately without acking its tree:
        // with acking on it fails by timeout and the spout replays it.
        rt.dropped->Increment();
        if (!degraded) {
          if (++consecutive_failures > options_.max_task_restarts) {
            RTREC_LOG(kError)
                << rt.spec.name << " task " << task_index
                << " exceeded max_task_restarts="
                << options_.max_task_restarts << "; degrading to drain mode";
            degraded = true;
          } else {
            restarts_total->Increment();
            restarts_here->Increment();
            if (bolt != nullptr) {
              try {
                bolt->Cleanup();
              } catch (...) {
              }
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
            backoff_ms =
                std::min(backoff_ms * 2, options_.restart_backoff_max_ms);
            degraded = !make_bolt();
          }
        }
      }
      current_root = 0;
      current_trace = TraceContext{};
    }
  }
  if (bolt != nullptr) {
    try {
      bolt->Cleanup();
    } catch (...) {
    }
  }
  // Every task broadcasts its own marker; consumers expect one marker per
  // upstream task, so the drain completes exactly once per edge.
  BroadcastEos(rt);
  // A terminal bolt (no downstream subscribers) finishing its drain
  // closes the ingest window.
  if (rt.eos_targets.empty()) {
    StoreMax(final_done_us_, Tracer::NowMicros());
  }
}

}  // namespace rtrec::stream
