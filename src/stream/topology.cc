#include "stream/topology.h"

#include <cassert>
#include <set>
#include <unordered_set>

#include "common/logging.h"

namespace rtrec::stream {

/// Routes one producer task's emissions to consumer queues. Owns the
/// per-edge routers, so round-robin cursors are task-local (deterministic
/// per task) and no synchronization is needed on the emit path.
class Topology::TaskCollector : public OutputCollector {
 public:
  /// For spout tasks, `acker_owner` identifies the spout in the tracker;
  /// for bolt tasks, `current_root` points at the root of the tuple
  /// being processed (set by the task loop before each Process call).
  TaskCollector(ComponentRuntime* component,
                std::unordered_map<std::string, std::vector<EdgeRuntime>>
                    edges_by_stream,
                AckTracker* acker, std::uint64_t acker_owner,
                const std::uint64_t* current_root)
      : component_(component),
        edges_by_stream_(std::move(edges_by_stream)),
        acker_(acker),
        acker_owner_(acker_owner),
        current_root_(current_root) {}

  std::uint64_t EmitTo(const std::string& stream, Tuple tuple) override {
    auto it = edges_by_stream_.find(stream);
    const bool subscribed =
        it != edges_by_stream_.end() && !it->second.empty();

    // Gather destinations first: the tracked count must be registered
    // before any copy is pushed (a consumer could otherwise complete the
    // tree before the remaining copies are accounted for).
    destinations_.clear();
    if (subscribed) {
      for (EdgeRuntime& edge : it->second) {
        edge.router.Route(tuple, scratch_);
        for (std::size_t consumer_task : scratch_) {
          destinations_.emplace_back(edge.consumer_queues[consumer_task],
                                     edge.consumer_depth);
        }
      }
    }

    std::uint64_t root = 0;
    if (acker_ != nullptr) {
      if (current_root_ == nullptr) {
        // Spout emission: open a tree (an unsubscribed emission is
        // trivially complete and acks immediately).
        root = acker_->CreateRoot(
            acker_owner_, static_cast<std::int64_t>(destinations_.size()));
      } else if (*current_root_ != 0) {
        // Bolt emission: anchor to the tuple being processed.
        root = *current_root_;
        if (!destinations_.empty()) {
          acker_->Add(root, static_cast<std::int64_t>(destinations_.size()));
        }
      }
    }

    if (!subscribed) {
      component_->dropped->Increment();
      return root;
    }
    component_->emitted->Increment();
    for (auto& [queue, depth] : destinations_) {
      // Push blocks when the consumer is saturated: backpressure.
      if (queue->Push(Envelope(tuple, root)) && depth != nullptr) {
        depth->Add(1);
      }
    }
    return root;
  }

 private:
  ComponentRuntime* component_;
  std::unordered_map<std::string, std::vector<EdgeRuntime>> edges_by_stream_;
  AckTracker* acker_;
  std::uint64_t acker_owner_;
  const std::uint64_t* current_root_;
  std::vector<std::size_t> scratch_;
  std::vector<std::pair<TaskQueue*, Gauge*>> destinations_;
};

Topology::Topology(TopologySpec spec, TopologyOptions options)
    : spec_(std::move(spec)), options_(options) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (options_.enable_acking) {
    AckTracker::Options acker_options;
    acker_options.timeout_millis = options_.ack_timeout_millis;
    acker_ = std::make_unique<AckTracker>(acker_options);
  }
}

StatusOr<std::unique_ptr<Topology>> Topology::Create(TopologySpec spec,
                                                     TopologyOptions options) {
  if (spec.components.empty()) {
    return Status::InvalidArgument("empty topology spec");
  }
  std::unique_ptr<Topology> topo(new Topology(std::move(spec), options));
  RTREC_RETURN_IF_ERROR(topo->Wire());
  return topo;
}

Status Topology::Wire() {
  components_.resize(spec_.components.size());
  // First pass: queues and metrics.
  for (std::size_t i = 0; i < spec_.components.size(); ++i) {
    ComponentRuntime& rt = components_[i];
    rt.spec = spec_.components[i];
    const std::string& name = rt.spec.name;
    rt.emitted = metrics_->GetCounter(name + ".emitted");
    rt.processed = metrics_->GetCounter(name + ".processed");
    rt.dropped = metrics_->GetCounter(name + ".dropped");
    rt.process_us = metrics_->GetHistogram(name + ".process_us");
    rt.queue_depth = metrics_->GetGauge(name + ".queue_depth");
    if (!rt.spec.is_spout()) {
      rt.queues.reserve(rt.spec.parallelism);
      for (std::size_t t = 0; t < rt.spec.parallelism; ++t) {
        rt.queues.push_back(
            std::make_unique<TaskQueue>(options_.queue_capacity));
      }
    }
  }
  // Second pass: EOS bookkeeping from the consumer side.
  for (std::size_t i = 0; i < components_.size(); ++i) {
    ComponentRuntime& consumer = components_[i];
    std::unordered_set<std::string> distinct_producers;
    for (const EdgeSpec& edge : consumer.spec.inputs) {
      distinct_producers.insert(edge.from_component);
    }
    for (const std::string& producer_name : distinct_producers) {
      const int p = spec_.IndexOf(producer_name);
      if (p < 0) {
        return Status::InvalidArgument("unknown producer '" + producer_name +
                                       "'");
      }
      ComponentRuntime& producer = components_[static_cast<std::size_t>(p)];
      consumer.expected_eos += producer.spec.parallelism;
      for (auto& queue : consumer.queues) {
        producer.eos_targets.push_back(queue.get());
      }
    }
  }
  return Status::OK();
}

Status Topology::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("topology already started");
  }
  // Launch consumers before producers so queues exist (they do — Wire laid
  // them out), and simply spawn everything; queues buffer until ready.
  for (std::size_t i = 0; i < components_.size(); ++i) {
    for (std::size_t t = 0; t < components_[i].spec.parallelism; ++t) {
      if (components_[i].spec.is_spout()) {
        threads_.emplace_back([this, i, t] { RunSpoutTask(i, t); });
      } else {
        threads_.emplace_back([this, i, t] { RunBoltTask(i, t); });
      }
    }
  }
  return Status::OK();
}

Status Topology::Join() {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("topology not started");
  }
  for (std::thread& th : threads_) {
    if (th.joinable()) th.join();
  }
  // Every tuple has been processed (or timed out via the sweeper), so
  // all reliability callbacks have fired; retire the parked spouts.
  if (acker_ != nullptr) {
    std::lock_guard<std::mutex> lock(parked_spouts_mu_);
    for (auto& [spout, owner] : parked_spouts_) {
      acker_->UnregisterOwner(owner);
    }
    parked_spouts_.clear();
  }
  finished_.store(true, std::memory_order_release);
  return Status::OK();
}

void Topology::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
}

Topology::~Topology() {
  RequestStop();
  for (std::thread& th : threads_) {
    if (th.joinable()) th.join();
  }
  if (acker_ != nullptr) {
    std::lock_guard<std::mutex> lock(parked_spouts_mu_);
    for (auto& [spout, owner] : parked_spouts_) {
      acker_->UnregisterOwner(owner);
    }
    parked_spouts_.clear();
  }
}

void Topology::BroadcastEos(ComponentRuntime& component) {
  for (TaskQueue* queue : component.eos_targets) {
    Envelope eos;
    eos.eos = true;
    queue->Push(std::move(eos));
  }
}

void Topology::RunSpoutTask(std::size_t component_index,
                            std::size_t task_index) {
  ComponentRuntime& rt = components_[component_index];

  // Assemble this task's collector: edges from this component to all
  // subscribers, keyed by stream.
  std::unordered_map<std::string, std::vector<EdgeRuntime>> edges;
  for (std::size_t c = 0; c < components_.size(); ++c) {
    for (const EdgeSpec& edge : components_[c].spec.inputs) {
      if (edge.from_component != rt.spec.name) continue;
      std::vector<TaskQueue*> queues;
      queues.reserve(components_[c].queues.size());
      for (auto& q : components_[c].queues) queues.push_back(q.get());
      edges[edge.stream].emplace_back(edge.grouping, std::move(queues),
                                      components_[c].queue_depth);
    }
  }
  std::unique_ptr<Spout> spout = rt.spec.spout_factory();
  std::uint64_t acker_owner = 0;
  if (acker_ != nullptr) {
    Spout* raw = spout.get();
    acker_owner =
        acker_->RegisterOwner([raw](std::uint64_t root, bool acked) {
          if (acked) {
            raw->Ack(root);
          } else {
            raw->Fail(root);
          }
        });
  }
  TaskCollector collector(&rt, std::move(edges), acker_.get(), acker_owner,
                          /*current_root=*/nullptr);

  TaskContext context;
  context.component = rt.spec.name;
  context.task_index = task_index;
  context.parallelism = rt.spec.parallelism;
  context.metrics = metrics_;

  spout->Open(context);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    ScopedLatencyTimer timer(rt.process_us);
    if (!spout->Next(collector)) break;
  }
  spout->Close();
  if (acker_ != nullptr) {
    // Keep the spout registered: its tuple trees may still be in flight
    // downstream. Join() unregisters once the whole DAG has drained.
    std::lock_guard<std::mutex> lock(parked_spouts_mu_);
    parked_spouts_.emplace_back(std::move(spout), acker_owner);
  }
  BroadcastEos(rt);
}

void Topology::RunBoltTask(std::size_t component_index,
                           std::size_t task_index) {
  ComponentRuntime& rt = components_[component_index];

  std::unordered_map<std::string, std::vector<EdgeRuntime>> edges;
  for (std::size_t c = 0; c < components_.size(); ++c) {
    for (const EdgeSpec& edge : components_[c].spec.inputs) {
      if (edge.from_component != rt.spec.name) continue;
      std::vector<TaskQueue*> queues;
      queues.reserve(components_[c].queues.size());
      for (auto& q : components_[c].queues) queues.push_back(q.get());
      edges[edge.stream].emplace_back(edge.grouping, std::move(queues),
                                      components_[c].queue_depth);
    }
  }
  std::uint64_t current_root = 0;
  TaskCollector collector(&rt, std::move(edges), acker_.get(),
                          /*acker_owner=*/0, &current_root);

  TaskContext context;
  context.component = rt.spec.name;
  context.task_index = task_index;
  context.parallelism = rt.spec.parallelism;
  context.metrics = metrics_;

  std::unique_ptr<Bolt> bolt = rt.spec.bolt_factory();
  bolt->Prepare(context);

  TaskQueue& queue = *rt.queues[task_index];
  std::size_t eos_seen = 0;
  while (eos_seen < rt.expected_eos) {
    std::optional<Envelope> envelope = queue.Pop();
    if (!envelope.has_value()) break;  // Queue force-closed.
    if (envelope->eos) {
      ++eos_seen;
      continue;
    }
    rt.queue_depth->Add(-1);
    current_root = envelope->root;
    {
      ScopedLatencyTimer timer(rt.process_us);
      bolt->Process(envelope->tuple, collector);
    }
    rt.processed->Increment();
    if (acker_ != nullptr && current_root != 0) {
      // This tuple's own contribution to the tree is done (any anchored
      // emissions were added during Process).
      acker_->Add(current_root, -1);
    }
    current_root = 0;
  }
  bolt->Cleanup();
  // Every task broadcasts its own marker; consumers expect one marker per
  // upstream task, so the drain completes exactly once per edge.
  BroadcastEos(rt);
}

}  // namespace rtrec::stream
