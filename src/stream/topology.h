#ifndef RTREC_STREAM_TOPOLOGY_H_
#define RTREC_STREAM_TOPOLOGY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "concurrent/cpu_bind.h"
#include "concurrent/ring_queue.h"
#include "stream/acker.h"
#include "stream/bolt.h"
#include "stream/topology_builder.h"

namespace rtrec::stream {

/// Execution options for a topology.
struct TopologyOptions {
  /// Capacity of each bolt task's input queue (rounded up to a power of
  /// two). Full queues block producers, giving end-to-end backpressure
  /// (Storm's max pending). 0 = use the TopologySpec's declared default
  /// if any, else 1024.
  std::size_t queue_capacity = 0;

  /// Upper bound on tuples a bolt task drains from its ring per wakeup.
  /// Batching amortizes the park/wake handshake (and, cross-core, the
  /// cache-line bounce) over many tuples. 0 = spec default, else 64.
  std::size_t drain_batch = 0;

  /// Pin each task thread to a CPU, round-robin over the process's
  /// affinity mask (concurrent::CpuBindPlan). Best-effort: failures are
  /// logged once and counted, never fatal. Off by default — pinning
  /// helps dedicated hosts and hurts shared ones.
  bool pin_cpus = false;

  /// Metrics sink; if null the topology owns a private registry.
  MetricsRegistry* metrics = nullptr;

  /// Enables at-least-once tuple-tree tracking (Storm's reliability
  /// layer): spout emissions open tracked trees, and Spout::Ack /
  /// Spout::Fail fire on completion or timeout. Off by default — the
  /// recommendation pipeline tolerates at-most-once, as the paper's
  /// deployment does.
  bool enable_acking = false;
  std::int64_t ack_timeout_millis = 30000;

  /// Supervision policy (Storm's supervisor, folded into the task loop):
  /// a task whose bolt Process / spout Next throws — or whose
  /// "stream.bolt.process" / "stream.spout.next" fault point fires — is
  /// restarted: the component instance is destroyed, recreated from its
  /// factory, and re-Prepared/re-Opened after an exponentially growing
  /// backoff. The budget counts *consecutive* failures and resets on the
  /// first successful call. A task that exhausts the budget degrades to
  /// draining its input (dropping tuples, counted in "<name>.dropped")
  /// instead of killing the process; with acking on, dropped tuples fail
  /// by ack-timeout and the spout replays them. Restarts increment
  /// "topology.task_restarts" and "<name>.task_restarts".
  int max_task_restarts = 3;
  std::int64_t restart_backoff_initial_ms = 5;
  std::int64_t restart_backoff_max_ms = 1000;

  /// Distributed tracing across the topology (common/trace.h). When set,
  /// every spout emission is a trace root (sampled 1-in-N by the
  /// tracer); sampled contexts ride the tuple envelopes to every
  /// downstream bolt, which records "trace.stage.<component>.us" /
  /// ".queue_us" and "trace.e2e.<component>.us" into the tracer's
  /// registry and installs the context as the thread-current trace for
  /// the duration of Process (so KV-store / service spans nest under
  /// it). Null disables tracing at zero cost.
  Tracer* tracer = nullptr;
};

/// A running instance of a TopologySpec: one thread per task (Storm
/// executor), bounded queues between components, grouping-based routing.
///
/// Lifecycle:
///   auto topo = Topology::Create(spec, options);
///   topo->Start();
///   ... (optionally topo->RequestStop() for infinite spouts)
///   topo->Join();   // returns when every task has cleanly finished
///
/// Completion protocol: when a spout's Next() returns false the spout task
/// broadcasts end-of-stream markers to its consumers; each bolt task
/// finishes after receiving one marker from every upstream producer task,
/// runs Cleanup(), and forwards markers downstream. The cascade drains the
/// DAG deterministically, so tests can assert on totals after Join().
///
/// Failure handling: component exceptions never escape a task thread.
/// Crashed components are restarted per TopologyOptions' supervision
/// policy, and a task that exhausts its restart budget keeps draining its
/// queue so the EOS cascade — and therefore Join() — always completes.
class Topology {
 public:
  /// Validates per-task construction and wires queues/routers.
  static StatusOr<std::unique_ptr<Topology>> Create(
      TopologySpec spec, TopologyOptions options = {});

  ~Topology();

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Spawns all task threads. Call at most once.
  Status Start();

  /// Blocks until every task finished (requires Start()).
  Status Join();

  /// Asks spouts to stop at their next Next() boundary; the normal
  /// end-of-stream drain then completes the topology. Non-blocking.
  void RequestStop();

  /// True once Join() has completed.
  bool finished() const { return finished_.load(std::memory_order_acquire); }

  /// The registry holding "<component>.emitted|processed|dropped" counters
  /// and "<component>.process_us" latency histograms.
  MetricsRegistry& metrics() { return *metrics_; }

 private:
  struct Envelope {
    Tuple tuple;
    bool eos = false;
    // Tuple-tree root this tuple is anchored to (0 = untracked).
    std::uint64_t root = 0;
    // Trace this tuple belongs to (null context when unsampled) and the
    // time it was enqueued, for queue-wait accounting. Only sampled
    // envelopes pay the clock read at enqueue.
    TraceContext trace;
    std::int64_t enqueue_us = 0;
    Envelope() = default;
    explicit Envelope(Tuple t) : tuple(std::move(t)) {}
    Envelope(Tuple t, std::uint64_t r) : tuple(std::move(t)), root(r) {}
  };

  // Lock-free ring-backed task queue (concurrent::RingQueue): SPSC when
  // exactly one upstream task feeds the consumer task, MPSC where
  // grouping fans several producer tasks into one queue.
  using TaskQueue = concurrent::RingQueue<Envelope>;

  // One (consumer, stream) subscription as seen from a producer task.
  struct EdgeRuntime {
    GroupingRouter router;
    std::vector<TaskQueue*> consumer_queues;
    // The consumer component's queue-depth gauge (incremented on push;
    // the consumer decrements on pop).
    Gauge* consumer_depth = nullptr;

    EdgeRuntime(Grouping grouping, std::vector<TaskQueue*> queues,
                Gauge* depth)
        : router(std::move(grouping), queues.size()),
          consumer_queues(std::move(queues)),
          consumer_depth(depth) {}
  };

  class TaskCollector;

  struct ComponentRuntime {
    ComponentSpec spec;
    // Input queues, one per task (bolts only).
    std::vector<std::unique_ptr<TaskQueue>> queues;
    // Number of EOS markers each task must see before finishing:
    // sum of parallelism over distinct upstream producer components.
    std::size_t expected_eos = 0;
    // Queues of every task of every distinct downstream consumer
    // component — targets of this component's EOS broadcast.
    std::vector<TaskQueue*> eos_targets;
    Counter* emitted = nullptr;
    Counter* processed = nullptr;
    Counter* dropped = nullptr;
    Histogram* process_us = nullptr;
    // Data tuples currently buffered across this component's input
    // queues ("<component>.queue_depth"); 0 after a clean drain.
    Gauge* queue_depth = nullptr;
    // Sampled wait-in-queue of *untraced* tuples
    // ("<component>.queue_wait_us"): producers stamp 1-in-N envelopes
    // via concurrent::LatencyStats, so queue health is visible even
    // with tracing disabled. Traced tuples keep feeding the tracer's
    // queue histograms as before.
    Histogram* queue_wait_us = nullptr;
  };

  Topology(TopologySpec spec, TopologyOptions options);

  Status Wire();
  void RunSpoutTask(std::size_t component_index, std::size_t task_index);
  void RunBoltTask(std::size_t component_index, std::size_t task_index);
  void BroadcastEos(ComponentRuntime& component);
  void MaybePinTask();

  TopologySpec spec_;
  TopologyOptions options_;
  // queue_capacity / drain_batch after the options → spec → engine
  // default resolution.
  std::size_t resolved_queue_capacity_ = 0;
  std::size_t resolved_drain_batch_ = 0;
  // Topology-wide ring counters ("stream.queue.*"), shared by every
  // task queue.
  TaskQueue::Stats queue_stats_;
  concurrent::CpuBindPlan cpu_plan_;
  std::atomic<bool> pin_warned_{false};
  // Ingest-window stamps for honest end-to-end throughput accounting
  // (published as gauges by Join): the first spout emission, the last
  // spout finishing, and the last *terminal* bolt task (one with no
  // downstream subscribers) finishing its drain.
  std::atomic<std::int64_t> first_emit_us_{0};
  std::atomic<std::int64_t> spout_done_us_{0};
  std::atomic<std::int64_t> final_done_us_{0};
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;

  std::vector<ComponentRuntime> components_;
  std::unique_ptr<AckTracker> acker_;  // Non-null iff acking enabled.
  // With acking, finished spouts are parked here (still registered with
  // the tracker) so trees completing after the spout's last Next() still
  // reach Ack/Fail; Join()/~Topology unregister and destroy them.
  std::mutex parked_spouts_mu_;
  std::vector<std::pair<std::unique_ptr<Spout>, std::uint64_t>>
      parked_spouts_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
};

}  // namespace rtrec::stream

#endif  // RTREC_STREAM_TOPOLOGY_H_
