#include "stream/topology_builder.h"

#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace rtrec::stream {

int TopologySpec::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (components[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

TopologyBuilder& TopologyBuilder::AddSpout(const std::string& name,
                                           SpoutFactory factory,
                                           std::size_t parallelism) {
  assert(factory != nullptr);
  ComponentSpec spec;
  spec.name = name;
  spec.parallelism = parallelism == 0 ? 1 : parallelism;
  spec.spout_factory = std::move(factory);
  components_.push_back(std::move(spec));
  return *this;
}

TopologyBuilder::BoltDeclarer TopologyBuilder::AddBolt(
    const std::string& name, BoltFactory factory, std::size_t parallelism) {
  assert(factory != nullptr);
  ComponentSpec spec;
  spec.name = name;
  spec.parallelism = parallelism == 0 ? 1 : parallelism;
  spec.bolt_factory = std::move(factory);
  components_.push_back(std::move(spec));
  return BoltDeclarer(this, components_.size() - 1);
}

TopologyBuilder& TopologyBuilder::SetQueueCapacity(std::size_t capacity) {
  default_queue_capacity_ = capacity;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetDrainBatch(std::size_t batch) {
  default_drain_batch_ = batch;
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::AddEdge(
    const std::string& from, const std::string& stream, Grouping grouping) {
  EdgeSpec edge;
  edge.from_component = from;
  edge.stream = stream;
  edge.grouping = std::move(grouping);
  builder_->components_[component_index_].inputs.push_back(std::move(edge));
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::ShuffleGrouping(
    const std::string& from) {
  return AddEdge(from, kDefaultStream, Grouping::Shuffle());
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::ShuffleGrouping(
    const std::string& from, const std::string& stream) {
  return AddEdge(from, stream, Grouping::Shuffle());
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::FieldsGrouping(
    const std::string& from, std::vector<std::string> fields) {
  return AddEdge(from, kDefaultStream, Grouping::Fields(std::move(fields)));
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::FieldsGrouping(
    const std::string& from, const std::string& stream,
    std::vector<std::string> fields) {
  return AddEdge(from, stream, Grouping::Fields(std::move(fields)));
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::GlobalGrouping(
    const std::string& from) {
  return AddEdge(from, kDefaultStream, Grouping::Global());
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::AllGrouping(
    const std::string& from) {
  return AddEdge(from, kDefaultStream, Grouping::All());
}

StatusOr<TopologySpec> TopologyBuilder::Build() const {
  // Unique names.
  std::unordered_map<std::string, std::size_t> index_by_name;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const auto& c = components_[i];
    if (!index_by_name.emplace(c.name, i).second) {
      return Status::InvalidArgument("duplicate component '" + c.name + "'");
    }
  }

  bool has_spout = false;
  for (const auto& c : components_) {
    if (c.is_spout()) {
      has_spout = true;
      if (!c.inputs.empty()) {
        return Status::InvalidArgument("spout '" + c.name + "' has inputs");
      }
    } else {
      if (c.inputs.empty()) {
        return Status::InvalidArgument("bolt '" + c.name +
                                       "' subscribes to nothing");
      }
      for (const auto& edge : c.inputs) {
        if (!index_by_name.contains(edge.from_component)) {
          return Status::InvalidArgument("bolt '" + c.name +
                                         "' subscribes to unknown component '" +
                                         edge.from_component + "'");
        }
        if (edge.from_component == c.name) {
          return Status::InvalidArgument("bolt '" + c.name +
                                         "' subscribes to itself");
        }
        if (edge.grouping.type == GroupingType::kFields &&
            edge.grouping.fields.empty()) {
          return Status::InvalidArgument(
              "fields grouping without fields on bolt '" + c.name + "'");
        }
      }
    }
  }
  if (!has_spout) return Status::InvalidArgument("topology has no spout");

  // Kahn's algorithm for a topological order; detects cycles.
  std::vector<std::size_t> in_degree(components_.size(), 0);
  std::vector<std::vector<std::size_t>> consumers(components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    std::unordered_set<std::size_t> producer_set;
    for (const auto& edge : components_[i].inputs) {
      producer_set.insert(index_by_name.at(edge.from_component));
    }
    in_degree[i] = producer_set.size();
    for (std::size_t producer : producer_set) {
      consumers[producer].push_back(i);
    }
  }
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  TopologySpec spec;
  spec.default_queue_capacity = default_queue_capacity_;
  spec.default_drain_batch = default_drain_batch_;
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    spec.components.push_back(components_[i]);
    for (std::size_t consumer : consumers[i]) {
      if (--in_degree[consumer] == 0) ready.push_back(consumer);
    }
  }
  if (spec.components.size() != components_.size()) {
    return Status::InvalidArgument("topology contains a cycle");
  }
  return spec;
}

}  // namespace rtrec::stream
