#ifndef RTREC_STREAM_TOPOLOGY_BUILDER_H_
#define RTREC_STREAM_TOPOLOGY_BUILDER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/bolt.h"
#include "stream/grouping.h"

namespace rtrec::stream {

/// One subscription of a bolt to a producer's stream.
struct EdgeSpec {
  std::string from_component;
  std::string stream = kDefaultStream;
  Grouping grouping;
};

/// Declaration of one component (spout or bolt) in a topology.
struct ComponentSpec {
  std::string name;
  std::size_t parallelism = 1;
  SpoutFactory spout_factory;  // Exactly one of the two factories is set.
  BoltFactory bolt_factory;
  std::vector<EdgeSpec> inputs;  // Empty for spouts.

  bool is_spout() const { return spout_factory != nullptr; }
};

/// A validated topology description: components in topological order
/// (producers before consumers).
struct TopologySpec {
  std::vector<ComponentSpec> components;

  /// Queue sizing the builder declared for this topology; 0 means "no
  /// preference". TopologyOptions set explicitly at Create time win
  /// over these, which win over the engine-wide defaults.
  std::size_t default_queue_capacity = 0;
  std::size_t default_drain_batch = 0;

  /// Index of `name` in `components`, or -1.
  int IndexOf(const std::string& name) const;
};

/// Fluent builder mirroring Storm's TopologyBuilder:
///
///   TopologyBuilder builder;
///   builder.AddSpout("actions", MakeActionSpout, 2);
///   builder.AddBolt("compute_mf", MakeComputeMf, 4)
///       .ShuffleGrouping("actions");
///   builder.AddBolt("mf_storage", MakeMfStorage, 4)
///       .FieldsGrouping("compute_mf", "user_vec", {"user"})
///       .FieldsGrouping("compute_mf", "video_vec", {"video"});
///   StatusOr<TopologySpec> spec = builder.Build();
class TopologyBuilder {
 public:
  /// Declares grouping subscriptions for one bolt.
  class BoltDeclarer {
   public:
    BoltDeclarer(TopologyBuilder* builder, std::size_t component_index)
        : builder_(builder), component_index_(component_index) {}

    /// Subscribes to `from`'s default stream with shuffle grouping.
    BoltDeclarer& ShuffleGrouping(const std::string& from);
    /// Subscribes to `from`'s named stream with shuffle grouping.
    BoltDeclarer& ShuffleGrouping(const std::string& from,
                                  const std::string& stream);
    /// Subscribes to `from`'s default stream keyed by `fields`.
    BoltDeclarer& FieldsGrouping(const std::string& from,
                                 std::vector<std::string> fields);
    /// Subscribes to `from`'s named stream keyed by `fields`.
    BoltDeclarer& FieldsGrouping(const std::string& from,
                                 const std::string& stream,
                                 std::vector<std::string> fields);
    /// Routes all of `from`'s default stream to task 0.
    BoltDeclarer& GlobalGrouping(const std::string& from);
    /// Broadcasts `from`'s default stream to every task.
    BoltDeclarer& AllGrouping(const std::string& from);

   private:
    BoltDeclarer& AddEdge(const std::string& from, const std::string& stream,
                          Grouping grouping);

    TopologyBuilder* builder_;
    std::size_t component_index_;
  };

  /// Declares a spout. Names must be unique; parallelism >= 1.
  TopologyBuilder& AddSpout(const std::string& name, SpoutFactory factory,
                            std::size_t parallelism = 1);

  /// Declares a bolt and returns a declarer for its subscriptions.
  BoltDeclarer AddBolt(const std::string& name, BoltFactory factory,
                       std::size_t parallelism = 1);

  /// Declares the per-task input queue capacity for this topology
  /// (rounded up to a power of two at wire time). 0 = engine default.
  TopologyBuilder& SetQueueCapacity(std::size_t capacity);

  /// Declares how many tuples a bolt task may drain per queue wakeup.
  /// 0 = engine default.
  TopologyBuilder& SetDrainBatch(std::size_t batch);

  /// Validates the graph (unique names, known producers, at least one
  /// spout, every bolt subscribed, acyclic) and returns components in
  /// topological order.
  StatusOr<TopologySpec> Build() const;

 private:
  std::vector<ComponentSpec> components_;
  std::size_t default_queue_capacity_ = 0;
  std::size_t default_drain_batch_ = 0;
};

}  // namespace rtrec::stream

#endif  // RTREC_STREAM_TOPOLOGY_BUILDER_H_
