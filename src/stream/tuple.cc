#include "stream/tuple.h"

#include <cassert>
#include <cstring>

#include "common/string_util.h"
#include "common/types.h"

namespace rtrec::stream {

std::uint64_t HashValue(const Value& v) {
  struct Hasher {
    std::uint64_t operator()(std::monostate) const { return 0x9E3779B9ull; }
    std::uint64_t operator()(std::int64_t x) const {
      return MixHash64(static_cast<std::uint64_t>(x));
    }
    std::uint64_t operator()(double x) const {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(x));
      std::memcpy(&bits, &x, sizeof(bits));
      return MixHash64(bits);
    }
    std::uint64_t operator()(const std::string& s) const {
      // FNV-1a, mixed.
      std::uint64_t h = 0xCBF29CE484222325ull;
      for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001B3ull;
      }
      return MixHash64(h);
    }
    std::uint64_t operator()(const std::vector<float>& v) const {
      std::uint64_t h = 0xCBF29CE484222325ull;
      for (float f : v) {
        std::uint32_t bits;
        std::memcpy(&bits, &f, sizeof(bits));
        h ^= bits;
        h *= 0x100000001B3ull;
      }
      return MixHash64(h);
    }
  };
  return std::visit(Hasher{}, v);
}

std::string ValueToString(const Value& v) {
  struct Printer {
    std::string operator()(std::monostate) const { return "null"; }
    std::string operator()(std::int64_t x) const { return std::to_string(x); }
    std::string operator()(double x) const {
      return StringPrintf("%.6g", x);
    }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(const std::vector<float>& v) const {
      return StringPrintf("float[%zu]", v.size());
    }
  };
  return std::visit(Printer{}, v);
}

Schema::Schema(std::vector<std::string> field_names)
    : names_(std::move(field_names)) {}

Schema::Schema(std::initializer_list<const char*> field_names) {
  names_.reserve(field_names.size());
  for (const char* name : field_names) names_.emplace_back(name);
}

int Schema::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Tuple::Tuple(std::shared_ptr<const Schema> schema, std::vector<Value> values)
    : schema_(std::move(schema)), values_(std::move(values)) {
  assert(schema_ != nullptr);
  assert(schema_->size() == values_.size());
}

const Value* Tuple::GetByName(const std::string& name) const {
  if (schema_ == nullptr) return nullptr;
  const int index = schema_->IndexOf(name);
  if (index < 0) return nullptr;
  return &values_[static_cast<std::size_t>(index)];
}

StatusOr<std::int64_t> Tuple::GetInt(const std::string& name) const {
  const Value* v = GetByName(name);
  if (v == nullptr) return Status::NotFound("field '" + name + "'");
  if (const auto* x = std::get_if<std::int64_t>(v)) return *x;
  return Status::InvalidArgument("field '" + name + "' is not int64");
}

StatusOr<double> Tuple::GetDouble(const std::string& name) const {
  const Value* v = GetByName(name);
  if (v == nullptr) return Status::NotFound("field '" + name + "'");
  if (const auto* x = std::get_if<double>(v)) return *x;
  // Ints silently widen; action weights are often emitted as ints.
  if (const auto* x = std::get_if<std::int64_t>(v)) {
    return static_cast<double>(*x);
  }
  return Status::InvalidArgument("field '" + name + "' is not double");
}

StatusOr<std::string> Tuple::GetString(const std::string& name) const {
  const Value* v = GetByName(name);
  if (v == nullptr) return Status::NotFound("field '" + name + "'");
  if (const auto* x = std::get_if<std::string>(v)) return *x;
  return Status::InvalidArgument("field '" + name + "' is not string");
}

StatusOr<std::vector<float>> Tuple::GetFloats(const std::string& name) const {
  const Value* v = GetByName(name);
  if (v == nullptr) return Status::NotFound("field '" + name + "'");
  if (const auto* x = std::get_if<std::vector<float>>(v)) return *x;
  return Status::InvalidArgument("field '" + name + "' is not float vector");
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    if (schema_ != nullptr && i < schema_->size()) {
      out += schema_->names()[i];
      out += "=";
    }
    out += ValueToString(values_[i]);
  }
  out += ")";
  return out;
}

}  // namespace rtrec::stream
