#ifndef RTREC_STREAM_TUPLE_H_
#define RTREC_STREAM_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace rtrec::stream {

/// A single field value flowing through the topology. The variant covers
/// everything the recommendation pipeline carries: ids and action codes
/// (int64), weights and similarities (double), opaque keys (string), and
/// latent vectors shipped from ComputeMF to MFStorage (vector<float>).
using Value = std::variant<std::monostate, std::int64_t, double, std::string,
                           std::vector<float>>;

/// Stable hash of a Value, used by fields grouping to route tuples with
/// equal keys to the same task.
std::uint64_t HashValue(const Value& v);

/// Render a Value for logs and tests.
std::string ValueToString(const Value& v);

/// The field layout of a stream, shared by every tuple on it (Storm's
/// declareOutputFields). Immutable after construction.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> field_names);
  Schema(std::initializer_list<const char*> field_names);

  /// Index of `name`, or -1 if the schema has no such field.
  int IndexOf(const std::string& name) const;

  std::size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

/// One data tuple: a shared schema plus positional values. Copyable;
/// values are value-semantic so a tuple can be fanned out to several
/// consumers safely.
class Tuple {
 public:
  Tuple() = default;

  /// Builds a tuple over `schema` with `values`; sizes must match.
  Tuple(std::shared_ptr<const Schema> schema, std::vector<Value> values);

  /// Value by position. Requires index < size().
  const Value& Get(std::size_t index) const { return values_[index]; }

  /// Value by field name; returns nullptr if the field is absent.
  const Value* GetByName(const std::string& name) const;

  /// Typed accessors; return an error Status if the field is absent or
  /// holds a different type.
  StatusOr<std::int64_t> GetInt(const std::string& name) const;
  StatusOr<double> GetDouble(const std::string& name) const;
  StatusOr<std::string> GetString(const std::string& name) const;
  StatusOr<std::vector<float>> GetFloats(const std::string& name) const;

  std::size_t size() const { return values_.size(); }
  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  const std::vector<Value>& values() const { return values_; }

  /// "(a=1, b=2.5)" rendering for diagnostics.
  std::string ToString() const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<Value> values_;
};

}  // namespace rtrec::stream

#endif  // RTREC_STREAM_TUPLE_H_
