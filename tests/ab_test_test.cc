#include "eval/ab_test.h"

#include <gtest/gtest.h>

#include "baselines/hot_recommender.h"
#include "core/engine.h"
#include "eval/experiment_runner.h"

namespace rtrec {
namespace {

WorldConfig TinyWorld() {
  WorldConfig config = SmallWorldConfig(17);
  config.population.num_users = 120;
  config.catalog.num_videos = 150;
  return config;
}

AbTestHarness::Options FastOptions() {
  AbTestHarness::Options options;
  options.num_days = 3;
  options.warmup_days = 1;
  options.requests_per_user = 1;
  options.top_n = 5;
  return options;
}

TEST(AbTestHarnessTest, ProducesDailyCtrSeries) {
  const SyntheticWorld world(TinyWorld());
  AbTestHarness harness(&world, FastOptions());
  HotRecommender hot_a;
  HotRecommender hot_b;
  const auto results = harness.Run({&hot_a, &hot_b});
  ASSERT_EQ(results.size(), 2u);
  for (const ArmResult& arm : results) {
    EXPECT_EQ(arm.name, "Hot");
    EXPECT_EQ(arm.daily_ctr.size(), 3u);
    EXPECT_GT(arm.impressions, 0u);
    for (double ctr : arm.daily_ctr) {
      EXPECT_GE(ctr, 0.0);
      EXPECT_LE(ctr, 1.0);
    }
    EXPECT_GE(arm.OverallCtr(), 0.0);
    EXPECT_LE(arm.OverallCtr(), 1.0);
  }
}

TEST(AbTestHarnessTest, DeterministicForSeed) {
  const SyntheticWorld world(TinyWorld());
  AbTestHarness harness(&world, FastOptions());
  HotRecommender a1, a2;
  const auto run1 = harness.Run({&a1});
  HotRecommender b1;
  const auto run2 = harness.Run({&b1});
  ASSERT_EQ(run1[0].daily_ctr.size(), run2[0].daily_ctr.size());
  for (std::size_t d = 0; d < run1[0].daily_ctr.size(); ++d) {
    EXPECT_DOUBLE_EQ(run1[0].daily_ctr[d], run2[0].daily_ctr[d]);
  }
}

TEST(AbTestHarnessTest, IdenticalArmsGetSimilarCtr) {
  // Two Hot arms over disjoint user slices: CTRs should land in the same
  // ballpark (no systematic bias from the splitter).
  const SyntheticWorld world(TinyWorld());
  AbTestHarness harness(&world, FastOptions());
  HotRecommender a, b;
  const auto results = harness.Run({&a, &b});
  ASSERT_EQ(results.size(), 2u);
  if (results[0].OverallCtr() > 0 && results[1].OverallCtr() > 0) {
    const double ratio = results[0].OverallCtr() / results[1].OverallCtr();
    EXPECT_GT(ratio, 0.4);
    EXPECT_LT(ratio, 2.5);
  }
}

TEST(AbTestHarnessTest, PersonalizedBeatsNothingArm) {
  /// An arm that recommends nothing never earns impressions or clicks.
  class NullArm : public Recommender {
   public:
    StatusOr<std::vector<ScoredVideo>> Recommend(const RecRequest&) override {
      return std::vector<ScoredVideo>{};
    }
    std::string name() const override { return "Null"; }
  };
  const SyntheticWorld world(TinyWorld());
  AbTestHarness harness(&world, FastOptions());
  HotRecommender hot;
  NullArm null_arm;
  const auto results = harness.Run({&hot, &null_arm});
  EXPECT_GT(results[0].impressions, 0u);
  EXPECT_EQ(results[1].impressions, 0u);
  EXPECT_DOUBLE_EQ(results[1].OverallCtr(), 0.0);
}

TEST(CtrImprovementMatrixTest, PairwiseRelativeDeltas) {
  ArmResult a;
  a.impressions = 100;
  a.clicks = 20;  // CTR 0.2.
  ArmResult b;
  b.impressions = 100;
  b.clicks = 10;  // CTR 0.1.
  const auto matrix = CtrImprovementMatrix({a, b});
  ASSERT_EQ(matrix.size(), 2u);
  EXPECT_NEAR(matrix[0][1], 1.0, 1e-9);    // A beats B by 100%.
  EXPECT_NEAR(matrix[1][0], -0.5, 1e-9);   // B trails A by 50%.
  EXPECT_DOUBLE_EQ(matrix[0][0], 0.0);
}

TEST(CtrImprovementMatrixTest, ZeroCtrDenominatorGuard) {
  ArmResult a;
  a.impressions = 100;
  a.clicks = 10;
  ArmResult zero;
  const auto matrix = CtrImprovementMatrix({a, zero});
  EXPECT_DOUBLE_EQ(matrix[0][1], 0.0);  // Guarded, not inf.
}

}  // namespace
}  // namespace rtrec
