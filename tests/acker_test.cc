#include "stream/acker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <mutex>
#include <thread>
#include <vector>

#include "stream/reliable_spout.h"
#include "stream/topology.h"

namespace rtrec::stream {
namespace {

/// Collects callback invocations.
struct Outcome {
  std::mutex mu;
  std::map<std::uint64_t, bool> results;  // root -> acked?
  std::atomic<int> acks{0};
  std::atomic<int> fails{0};

  AckTracker::Callback Callback() {
    return [this](std::uint64_t root, bool acked) {
      std::lock_guard<std::mutex> lock(mu);
      EXPECT_FALSE(results.contains(root)) << "double callback for " << root;
      results[root] = acked;
      (acked ? acks : fails).fetch_add(1);
    };
  }
};

AckTracker::Options FastOptions(std::int64_t timeout = 10'000) {
  AckTracker::Options o;
  o.timeout_millis = timeout;
  o.sweep_interval_millis = 5;
  return o;
}

TEST(AckTrackerTest, CountdownToZeroAcks) {
  AckTracker tracker(FastOptions());
  Outcome outcome;
  const std::uint64_t owner = tracker.RegisterOwner(outcome.Callback());
  const std::uint64_t root = tracker.CreateRoot(owner, 2);
  EXPECT_NE(root, 0u);
  EXPECT_EQ(tracker.PendingRoots(), 1u);
  tracker.Add(root, 1);   // A downstream emission.
  tracker.Add(root, -1);  // One tuple processed.
  EXPECT_EQ(outcome.acks.load(), 0);
  tracker.Add(root, -1);
  tracker.Add(root, -1);  // Count hits zero here.
  EXPECT_EQ(outcome.acks.load(), 1);
  EXPECT_TRUE(outcome.results[root]);
  EXPECT_EQ(tracker.PendingRoots(), 0u);
  tracker.UnregisterOwner(owner);
}

TEST(AckTrackerTest, ZeroInitialCountAcksImmediately) {
  AckTracker tracker(FastOptions());
  Outcome outcome;
  const std::uint64_t owner = tracker.RegisterOwner(outcome.Callback());
  tracker.CreateRoot(owner, 0);
  EXPECT_EQ(outcome.acks.load(), 1);
  tracker.UnregisterOwner(owner);
}

TEST(AckTrackerTest, LateAddsOnResolvedRootsIgnored) {
  AckTracker tracker(FastOptions());
  Outcome outcome;
  const std::uint64_t owner = tracker.RegisterOwner(outcome.Callback());
  const std::uint64_t root = tracker.CreateRoot(owner, 1);
  tracker.Add(root, -1);
  EXPECT_EQ(outcome.acks.load(), 1);
  tracker.Add(root, -1);  // Stale decrement: must not re-fire.
  tracker.Add(root, 5);
  EXPECT_EQ(outcome.acks.load(), 1);
  EXPECT_EQ(outcome.fails.load(), 0);
  tracker.UnregisterOwner(owner);
}

TEST(AckTrackerTest, TimeoutFails) {
  AckTracker tracker(FastOptions(/*timeout=*/30));
  Outcome outcome;
  const std::uint64_t owner = tracker.RegisterOwner(outcome.Callback());
  const std::uint64_t root = tracker.CreateRoot(owner, 3);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (outcome.fails.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(outcome.fails.load(), 1);
  EXPECT_FALSE(outcome.results[root]);
  // A decrement arriving after the failure is ignored.
  tracker.Add(root, -3);
  EXPECT_EQ(outcome.acks.load(), 0);
  tracker.UnregisterOwner(owner);
}

TEST(AckTrackerTest, UnregisterAbandonsPendingRootsSilently) {
  AckTracker tracker(FastOptions(/*timeout=*/20));
  Outcome outcome;
  const std::uint64_t owner = tracker.RegisterOwner(outcome.Callback());
  tracker.CreateRoot(owner, 5);
  tracker.UnregisterOwner(owner);
  EXPECT_EQ(tracker.PendingRoots(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(outcome.fails.load(), 0);  // No callback after unregister.
  EXPECT_EQ(outcome.acks.load(), 0);
}

TEST(AckTrackerTest, OwnersAreIndependent) {
  AckTracker tracker(FastOptions());
  Outcome a, b;
  const std::uint64_t owner_a = tracker.RegisterOwner(a.Callback());
  const std::uint64_t owner_b = tracker.RegisterOwner(b.Callback());
  const std::uint64_t root_a = tracker.CreateRoot(owner_a, 1);
  const std::uint64_t root_b = tracker.CreateRoot(owner_b, 1);
  EXPECT_NE(root_a, root_b);
  tracker.Add(root_a, -1);
  EXPECT_EQ(a.acks.load(), 1);
  EXPECT_EQ(b.acks.load(), 0);
  tracker.Add(root_b, -1);
  EXPECT_EQ(b.acks.load(), 1);
  tracker.UnregisterOwner(owner_a);
  tracker.UnregisterOwner(owner_b);
}

TEST(AckTrackerTest, ConcurrentTreesResolveExactlyOnce) {
  AckTracker tracker(FastOptions());
  Outcome outcome;
  const std::uint64_t owner = tracker.RegisterOwner(outcome.Callback());
  constexpr int kRoots = 2000;
  std::vector<std::uint64_t> roots;
  roots.reserve(kRoots);
  for (int i = 0; i < kRoots; ++i) {
    roots.push_back(tracker.CreateRoot(owner, 4));
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&tracker, &roots] {
      for (std::uint64_t root : roots) tracker.Add(root, -1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(outcome.acks.load(), kRoots);
  EXPECT_EQ(outcome.fails.load(), 0);
  EXPECT_EQ(tracker.PendingRoots(), 0u);
  tracker.UnregisterOwner(owner);
}

// ---------------------------------------------------------------------
// Topology-level reliability.

std::shared_ptr<const Schema> NumberSchema() {
  static const auto& schema = *new std::shared_ptr<const Schema>(
      std::make_shared<const Schema>(Schema{{"n"}}));
  return schema;
}

/// Emits `limit` tuples and records Ack/Fail callbacks.
class TrackingSpout : public Spout {
 public:
  TrackingSpout(std::int64_t limit, std::atomic<int>* acks,
                std::atomic<int>* fails)
      : limit_(limit), acks_(acks), fails_(fails) {}

  bool Next(OutputCollector& collector) override {
    if (i_ >= limit_) return false;
    const std::uint64_t id =
        collector.Emit(Tuple(NumberSchema(), {i_++}));
    EXPECT_NE(id, 0u) << "acking enabled: ids must be assigned";
    return true;
  }
  void Ack(std::uint64_t) override { acks_->fetch_add(1); }
  void Fail(std::uint64_t) override { fails_->fetch_add(1); }

 private:
  std::int64_t limit_;
  std::int64_t i_ = 0;
  std::atomic<int>* acks_;
  std::atomic<int>* fails_;
};

class ForwardBolt : public Bolt {
 public:
  void Process(const Tuple& tuple, OutputCollector& collector) override {
    collector.Emit(tuple);
  }
};

class SinkBolt : public Bolt {
 public:
  void Process(const Tuple&, OutputCollector&) override {}
};

TEST(TopologyAckingTest, EveryTreeAcksThroughMultiStageDag) {
  std::atomic<int> acks{0}, fails{0};
  TopologyBuilder builder;
  builder.AddSpout(
      "src",
      [&] { return std::make_unique<TrackingSpout>(500, &acks, &fails); },
      1);
  builder.AddBolt("mid", [] { return std::make_unique<ForwardBolt>(); }, 3)
      .ShuffleGrouping("src");
  builder.AddBolt("sink", [] { return std::make_unique<SinkBolt>(); }, 2)
      .FieldsGrouping("mid", {"n"});
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  TopologyOptions options;
  options.enable_acking = true;
  auto topo = Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_EQ(acks.load(), 500);
  EXPECT_EQ(fails.load(), 0);
}

TEST(TopologyAckingTest, UnsubscribedEmissionAcksImmediately) {
  class OrphanSpout : public Spout {
   public:
    OrphanSpout(std::atomic<int>* acks) : acks_(acks) {}
    bool Next(OutputCollector& collector) override {
      if (done_) return false;
      done_ = true;
      collector.EmitTo("nobody", Tuple(NumberSchema(), {std::int64_t{1}}));
      collector.Emit(Tuple(NumberSchema(), {std::int64_t{2}}));
      return true;
    }
    void Ack(std::uint64_t) override { acks_->fetch_add(1); }

   private:
    bool done_ = false;
    std::atomic<int>* acks_;
  };
  std::atomic<int> acks{0};
  TopologyBuilder builder;
  builder.AddSpout("src",
                   [&] { return std::make_unique<OrphanSpout>(&acks); });
  builder.AddBolt("sink", [] { return std::make_unique<SinkBolt>(); })
      .ShuffleGrouping("src");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  TopologyOptions options;
  options.enable_acking = true;
  auto topo = Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_EQ(acks.load(), 2);  // Both the orphaned and the delivered tree.
}

TEST(TopologyAckingTest, SlowConsumerTimesOutTrees) {
  class SlowBolt : public Bolt {
   public:
    void Process(const Tuple&, OutputCollector&) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  };
  std::atomic<int> acks{0}, fails{0};
  TopologyBuilder builder;
  builder.AddSpout(
      "src",
      [&] { return std::make_unique<TrackingSpout>(6, &acks, &fails); });
  builder.AddBolt("slow", [] { return std::make_unique<SlowBolt>(); }, 1)
      .ShuffleGrouping("src");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  TopologyOptions options;
  options.enable_acking = true;
  options.ack_timeout_millis = 15;  // Far below per-tuple latency.
  auto topo = Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_GT(fails.load(), 0);  // Back-of-queue trees blew the deadline.
  EXPECT_EQ(acks.load() + fails.load(), 6);
}

TEST(TopologyAckingTest, DisabledAckingAssignsNoIds) {
  class IdCheckSpout : public Spout {
   public:
    bool Next(OutputCollector& collector) override {
      if (done_) return false;
      done_ = true;
      EXPECT_EQ(collector.Emit(Tuple(NumberSchema(), {std::int64_t{1}})),
                0u);
      return true;
    }

   private:
    bool done_ = false;
  };
  TopologyBuilder builder;
  builder.AddSpout("src", [] { return std::make_unique<IdCheckSpout>(); });
  builder.AddBolt("sink", [] { return std::make_unique<SinkBolt>(); })
      .ShuffleGrouping("src");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  auto topo = Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
}

// ---------------------------------------------------------------------
// End-to-end at-least-once with the replaying reliable spout.

TEST(ReliableReplaySpoutTest, EveryTupleEventuallyDeliveredDespiteTimeouts) {
  // A bolt that stalls past the ack deadline the first time it sees each
  // value, succeeding on the retry — transient downstream slowness.
  class FlakyOnceBolt : public Bolt {
   public:
    explicit FlakyOnceBolt(std::mutex* mu, std::set<std::int64_t>* seen,
                           std::set<std::int64_t>* delivered)
        : mu_(mu), seen_(seen), delivered_(delivered) {}
    void Process(const Tuple& tuple, OutputCollector&) override {
      const std::int64_t n = *tuple.GetInt("n");
      bool first = false;
      {
        std::lock_guard<std::mutex> lock(*mu_);
        first = seen_->insert(n).second;
      }
      if (first) {
        // Blow the deadline on the first attempt.
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        return;
      }
      std::lock_guard<std::mutex> lock(*mu_);
      delivered_->insert(n);
    }

   private:
    std::mutex* mu_;
    std::set<std::int64_t>* seen_;
    std::set<std::int64_t>* delivered_;
  };

  constexpr std::int64_t kTuples = 8;
  std::mutex mu;
  std::set<std::int64_t> seen, delivered;
  ReliableReplaySpout* spout_ptr = nullptr;

  TopologyBuilder builder;
  builder.AddSpout("src", [&spout_ptr] {
    auto counter = std::make_shared<std::int64_t>(0);
    auto spout = std::make_unique<ReliableReplaySpout>(
        [counter]() -> std::optional<Tuple> {
          if (*counter >= kTuples) return std::nullopt;
          return Tuple(NumberSchema(), {(*counter)++});
        });
    spout_ptr = spout.get();
    return spout;
  });
  builder
      .AddBolt("flaky",
               [&] {
                 return std::make_unique<FlakyOnceBolt>(&mu, &seen,
                                                        &delivered);
               },
               1)
      .ShuffleGrouping("src");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  TopologyOptions options;
  options.enable_acking = true;
  options.ack_timeout_millis = 25;  // First attempt always times out.
  auto topo = Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());

  ASSERT_NE(spout_ptr, nullptr);
  // Every value reached the bolt at least twice and was delivered once.
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(delivered.size(), static_cast<std::size_t>(kTuples));
  EXPECT_GE(spout_ptr->failed(), static_cast<std::size_t>(kTuples));
  EXPECT_EQ(spout_ptr->in_flight(), 0u);
}

TEST(ReliableReplaySpoutTest, MaxRetriesGivesUp) {
  // A black-hole bolt that always stalls: with max_retries = 2 the spout
  // eventually abandons every tuple instead of looping forever.
  class StallBolt : public Bolt {
   public:
    void Process(const Tuple&, OutputCollector&) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  };
  ReliableReplaySpout* spout_ptr = nullptr;
  TopologyBuilder builder;
  builder.AddSpout("src", [&spout_ptr] {
    auto counter = std::make_shared<std::int64_t>(0);
    ReliableReplaySpout::Options spout_options;
    spout_options.max_retries = 2;
    auto spout = std::make_unique<ReliableReplaySpout>(
        [counter]() -> std::optional<Tuple> {
          if (*counter >= 3) return std::nullopt;
          return Tuple(NumberSchema(), {(*counter)++});
        },
        spout_options);
    spout_ptr = spout.get();
    return spout;
  });
  builder.AddBolt("stall", [] { return std::make_unique<StallBolt>(); }, 1)
      .ShuffleGrouping("src");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  TopologyOptions options;
  options.enable_acking = true;
  options.ack_timeout_millis = 10;
  auto topo = Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  ASSERT_NE(spout_ptr, nullptr);
  EXPECT_EQ(spout_ptr->gave_up(), 3u);
  EXPECT_EQ(spout_ptr->in_flight(), 0u);
}

}  // namespace
}  // namespace rtrec::stream
