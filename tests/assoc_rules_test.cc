#include "baselines/assoc_rules.h"

#include <gtest/gtest.h>

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;
  a.time = t;
  return a;
}

AssociationRuleRecommender::Options LooseOptions() {
  AssociationRuleRecommender::Options o;
  o.min_support_count = 2;
  o.min_confidence = 0.01;
  return o;
}

TEST(AssocRulesTest, UntrainedModelRecommendsNothing) {
  AssociationRuleRecommender ar(LooseOptions());
  ar.Observe(Play(1, 10, 100));
  ar.Observe(Play(1, 11, 200));
  RecRequest request;
  request.user = 1;
  request.now = 300;
  auto recs = ar.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());  // Rules only exist after RetrainBatch.
  EXPECT_EQ(ar.NumAntecedents(), 0u);
}

TEST(AssocRulesTest, MinesPairRulesFromBaskets) {
  AssociationRuleRecommender ar(LooseOptions());
  // Three users co-watch 10 and 11 on the same day.
  for (UserId u = 1; u <= 3; ++u) {
    ar.Observe(Play(u, 10, 100));
    ar.Observe(Play(u, 11, 200));
  }
  ar.RetrainBatch(kMillisPerDay);
  EXPECT_EQ(ar.NumAntecedents(), 2u);  // 10 -> 11 and 11 -> 10.

  RecRequest request;
  request.user = 99;
  request.seed_videos = {10};
  request.now = kMillisPerDay;
  auto recs = ar.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 1u);
  EXPECT_EQ((*recs)[0].video, 11u);
  EXPECT_NEAR((*recs)[0].score, 1.0, 1e-9);  // Confidence 3/3.
}

TEST(AssocRulesTest, SupportThresholdPrunesRarePairs) {
  AssociationRuleRecommender::Options options = LooseOptions();
  options.min_support_count = 3;
  AssociationRuleRecommender ar(options);
  // Pair (10, 11) in only two baskets.
  for (UserId u = 1; u <= 2; ++u) {
    ar.Observe(Play(u, 10, 100));
    ar.Observe(Play(u, 11, 200));
  }
  ar.RetrainBatch(kMillisPerDay);
  EXPECT_EQ(ar.NumAntecedents(), 0u);
}

TEST(AssocRulesTest, ConfidenceIsDirectional) {
  AssociationRuleRecommender::Options options = LooseOptions();
  options.use_lift = false;  // Inspect raw confidences directly.
  AssociationRuleRecommender ar(options);
  // Video 20 appears in 4 baskets, 21 in 2 of them.
  for (UserId u = 1; u <= 4; ++u) ar.Observe(Play(u, 20, 100));
  for (UserId u = 1; u <= 2; ++u) ar.Observe(Play(u, 21, 200));
  ar.RetrainBatch(kMillisPerDay);

  // conf(21 -> 20) = 2/2 = 1; conf(20 -> 21) = 2/4 = 0.5.
  RecRequest from_21;
  from_21.user = 99;
  from_21.seed_videos = {21};
  from_21.now = kMillisPerDay;
  RecRequest from_20;
  from_20.user = 98;
  from_20.seed_videos = {20};
  from_20.now = kMillisPerDay;
  auto recs_21 = ar.Recommend(from_21);
  auto recs_20 = ar.Recommend(from_20);
  ASSERT_TRUE(recs_21.ok());
  ASSERT_TRUE(recs_20.ok());
  ASSERT_EQ(recs_21->size(), 1u);
  ASSERT_EQ(recs_20->size(), 1u);
  EXPECT_NEAR((*recs_21)[0].score, 1.0, 1e-9);
  EXPECT_NEAR((*recs_20)[0].score, 0.5, 1e-9);
}

TEST(AssocRulesTest, BasketsSplitByDay) {
  AssociationRuleRecommender ar(LooseOptions());
  // Same user watches 10 on day 0 and 11 on day 1: different baskets, no
  // co-occurrence.
  for (UserId u = 1; u <= 3; ++u) {
    ar.Observe(Play(u, 10, 100));
    ar.Observe(Play(u, 11, kMillisPerDay + 100));
  }
  ar.RetrainBatch(2 * kMillisPerDay);
  EXPECT_EQ(ar.NumAntecedents(), 0u);
}

TEST(AssocRulesTest, SeedsFromRecentHistoryWhenNoneGiven) {
  AssociationRuleRecommender ar(LooseOptions());
  for (UserId u = 1; u <= 3; ++u) {
    ar.Observe(Play(u, 10, 100));
    ar.Observe(Play(u, 11, 200));
    ar.Observe(Play(u, 12, 300));
  }
  ar.RetrainBatch(kMillisPerDay);
  RecRequest request;
  request.user = 1;  // History {10, 11, 12} becomes the seed set.
  request.now = kMillisPerDay;
  auto recs = ar.Recommend(request);
  ASSERT_TRUE(recs.ok());
  // Everything is already watched by user 1 -> excluded.
  EXPECT_TRUE(recs->empty());
}

TEST(AssocRulesTest, ScoresAggregateAcrossSeeds) {
  AssociationRuleRecommender ar(LooseOptions());
  for (UserId u = 1; u <= 3; ++u) {
    ar.Observe(Play(u, 10, 100));
    ar.Observe(Play(u, 11, 200));
    ar.Observe(Play(u, 12, 300));
  }
  ar.RetrainBatch(kMillisPerDay);
  RecRequest request;
  request.user = 99;
  request.seed_videos = {10, 11};
  request.now = kMillisPerDay;
  auto recs = ar.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  // Video 12 is implied by both seeds: score = 1.0 + 1.0.
  EXPECT_EQ((*recs)[0].video, 12u);
  EXPECT_NEAR((*recs)[0].score, 2.0, 1e-9);
}

TEST(AssocRulesTest, RetrainReplacesOldRules) {
  AssociationRuleRecommender ar(LooseOptions());
  for (UserId u = 1; u <= 3; ++u) {
    ar.Observe(Play(u, 10, 100));
    ar.Observe(Play(u, 11, 200));
  }
  ar.RetrainBatch(kMillisPerDay);
  EXPECT_EQ(ar.NumAntecedents(), 2u);
  // New day adds new co-watches; rules recomputed over all baskets.
  for (UserId u = 1; u <= 3; ++u) {
    ar.Observe(Play(u, 30, kMillisPerDay + 100));
    ar.Observe(Play(u, 31, kMillisPerDay + 200));
  }
  ar.RetrainBatch(2 * kMillisPerDay);
  EXPECT_EQ(ar.NumAntecedents(), 4u);
  EXPECT_EQ(ar.name(), "AR");
}

}  // namespace
}  // namespace rtrec
