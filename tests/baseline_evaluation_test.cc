/// Integration: every Recommender implementation runs through the full
/// offline-evaluation and A/B-test harnesses on a tiny world — the
/// RetrainBatch cadence, serving path, and metric plumbing must work for
/// each of them, and basic quality orderings must hold.

#include <gtest/gtest.h>

#include "baselines/assoc_rules.h"
#include "baselines/hot_recommender.h"
#include "baselines/item_cf.h"
#include "baselines/reservoir_mf.h"
#include "baselines/simhash_cf.h"
#include "core/engine.h"
#include "demographic/demographic_filter.h"
#include "demographic/demographic_trainer.h"
#include "eval/ab_test.h"
#include "eval/evaluator.h"
#include "eval/experiment_runner.h"

namespace rtrec {
namespace {

class BaselineEvaluationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldConfig config = SmallWorldConfig(808);
    config.population.num_users = 200;
    config.catalog.num_videos = 200;
    world_ = new SyntheticWorld(config);
    Dataset all(world_->GenerateDays(0, 4));
    auto [train, test] = all.SplitAtTime(3 * kMillisPerDay);
    train_ = new Dataset(std::move(train));
    test_ = new Dataset(std::move(test));
  }
  static void TearDownTestSuite() {
    delete test_;
    delete train_;
    delete world_;
  }

  OfflineResult Evaluate(Recommender& model) {
    return OfflineEvaluator().Evaluate(model, *train_, *test_);
  }

  static SyntheticWorld* world_;
  static Dataset* train_;
  static Dataset* test_;
};

SyntheticWorld* BaselineEvaluationTest::world_ = nullptr;
Dataset* BaselineEvaluationTest::train_ = nullptr;
Dataset* BaselineEvaluationTest::test_ = nullptr;

TEST_F(BaselineEvaluationTest, EveryRecommenderSurvivesTheProtocol) {
  HotRecommender hot;
  AssociationRuleRecommender ar;
  SimHashCfRecommender simhash;
  ItemCfRecommender item_cf;
  RecEngine rmf(world_->TypeResolver(),
                DefaultEngineOptions(UpdatePolicy::kCombine));
  ReservoirMfRecommender::Options reservoir_options;
  reservoir_options.engine = DefaultEngineOptions(UpdatePolicy::kCombine);
  ReservoirMfRecommender reservoir(world_->TypeResolver(),
                                   reservoir_options);

  for (Recommender* model : std::initializer_list<Recommender*>{
           &hot, &ar, &simhash, &item_cf, &rmf, &reservoir}) {
    const OfflineResult result = Evaluate(*model);
    EXPECT_GE(result.recall(10), 0.0) << model->name();
    EXPECT_LE(result.recall(10), 1.0) << model->name();
    EXPECT_GE(result.avg_rank, 0.0) << model->name();
    EXPECT_LE(result.avg_rank, 1.0) << model->name();
  }
}

TEST_F(BaselineEvaluationTest, PersonalizedModelsBeatNothing) {
  // After training, AR and ItemCF (strong at small scale) and rMF must
  // produce strictly positive recall — they learned *something*.
  AssociationRuleRecommender ar;
  ItemCfRecommender item_cf;
  RecEngine rmf(world_->TypeResolver(),
                DefaultEngineOptions(UpdatePolicy::kCombine));
  EXPECT_GT(Evaluate(ar).recall(10), 0.0);
  EXPECT_GT(Evaluate(item_cf).recall(10), 0.0);
  EXPECT_GT(Evaluate(rmf).recall(10), 0.0);
}

TEST_F(BaselineEvaluationTest, DemographicStackRunsThroughAbHarness) {
  // The full production stack (per-group training + demographic
  // filtering) as one A/B arm against Hot.
  DemographicGrouper grouper;
  world_->RegisterProfiles(grouper);
  DemographicTrainer::Options trainer_options;
  trainer_options.engine = DefaultEngineOptions(UpdatePolicy::kCombine);
  DemographicTrainer trainer(&grouper, world_->TypeResolver(),
                             trainer_options);
  HotVideoTracker tracker;
  DemographicFilter::Options filter_options;
  DemographicFilter stack(&trainer, &tracker, &grouper, filter_options);

  HotRecommender hot;
  AbTestHarness::Options ab_options;
  ab_options.num_days = 2;
  ab_options.warmup_days = 1;
  ab_options.requests_per_user = 1;
  ab_options.top_n = 5;
  AbTestHarness harness(world_, ab_options);
  const auto results = harness.Run({&stack, &hot});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "rMF+DB");
  // The demographic stack always fills its list (hot fallback), so it
  // earns impressions for every slice user.
  EXPECT_GT(results[0].impressions, 0u);
  EXPECT_GT(results[1].impressions, 0u);
}

TEST_F(BaselineEvaluationTest, RetrainCadenceMattersForBatchModels) {
  // AR without any RetrainBatch call recommends nothing; with the daily
  // cadence it does — the offline/real-time contrast the paper draws.
  AssociationRuleRecommender no_retrain;
  OfflineEvaluator::Options options;
  options.retrain_daily = false;
  const OfflineResult result =
      OfflineEvaluator(options).Evaluate(no_retrain, *train_, *test_);
  EXPECT_DOUBLE_EQ(result.recall(10), 0.0);

  AssociationRuleRecommender with_retrain;
  const OfflineResult retrained = Evaluate(with_retrain);
  EXPECT_GT(retrained.recall(10), 0.0);
}

}  // namespace
}  // namespace rtrec
