#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace rtrec {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, TryPopOnEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::atomic<bool> got_nullopt{false};
  std::thread consumer([&] {
    auto v = q.Pop();
    got_nullopt = !v.has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
  EXPECT_TRUE(got_nullopt.load());
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> push_failed{false};
  std::thread producer([&] { push_failed = !q.Push(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  producer.join();
  EXPECT_TRUE(push_failed.load());
}

TEST(BoundedQueueTest, PopDrainsRemainingItemsAfterClose) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Push(3));
}

TEST(BoundedQueueTest, ProducerBlocksUntilConsumed) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // Still blocked on the full queue.
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BoundedQueueTest, MpmcStressAllItemsDeliveredOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  BoundedQueue<int> q(64);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        auto v = q.Pop();
        if (!v.has_value()) return;
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  const long long n = static_cast<long long>(kProducers) * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace rtrec
