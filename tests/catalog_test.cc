#include "data/catalog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/vec_math.h"

namespace rtrec {
namespace {

VideoCatalog::Options SmallOptions() {
  VideoCatalog::Options o;
  o.num_videos = 200;
  o.num_types = 8;
  o.num_genres = 4;
  o.seed = 11;
  return o;
}

TEST(CatalogTest, GeneratesRequestedSize) {
  const VideoCatalog catalog = VideoCatalog::Generate(SmallOptions());
  EXPECT_EQ(catalog.size(), 200u);
  EXPECT_EQ(catalog.Get(1).id, 1u);
  EXPECT_EQ(catalog.Get(200).id, 200u);
}

TEST(CatalogTest, DeterministicForSeed) {
  const VideoCatalog a = VideoCatalog::Generate(SmallOptions());
  const VideoCatalog b = VideoCatalog::Generate(SmallOptions());
  for (VideoId v = 1; v <= 200; ++v) {
    EXPECT_EQ(a.Get(v).type, b.Get(v).type);
    EXPECT_EQ(a.Get(v).genre, b.Get(v).genre);
    EXPECT_EQ(a.Get(v).duration_sec, b.Get(v).duration_sec);
  }
  VideoCatalog::Options other = SmallOptions();
  other.seed = 12;
  const VideoCatalog c = VideoCatalog::Generate(other);
  bool any_differs = false;
  for (VideoId v = 1; v <= 200 && !any_differs; ++v) {
    if (a.Get(v).genre != c.Get(v).genre) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(CatalogTest, TypesWithinRangeAndAllUsed) {
  const VideoCatalog catalog = VideoCatalog::Generate(SmallOptions());
  std::set<VideoType> used;
  for (const VideoInfo& v : catalog.videos()) {
    EXPECT_LT(v.type, 8u);
    used.insert(v.type);
  }
  EXPECT_EQ(used.size(), 8u);  // 200 videos over 8 types: all appear.
}

TEST(CatalogTest, GenresAreUnitNorm) {
  const VideoCatalog catalog = VideoCatalog::Generate(SmallOptions());
  for (const VideoInfo& v : catalog.videos()) {
    EXPECT_NEAR(Norm(v.genre), 1.0, 1e-5);
  }
}

TEST(CatalogTest, SameTypeVideosClusterInGenreSpace) {
  // Planted structure behind Eq. 10: same-type videos should be closer on
  // average than cross-type videos.
  const VideoCatalog catalog = VideoCatalog::Generate(SmallOptions());
  double same_sum = 0, cross_sum = 0;
  int same_n = 0, cross_n = 0;
  for (VideoId a = 1; a <= 100; ++a) {
    for (VideoId b = a + 1; b <= 100; ++b) {
      const double sim =
          Dot(catalog.Get(a).genre, catalog.Get(b).genre);
      if (catalog.Get(a).type == catalog.Get(b).type) {
        same_sum += sim;
        ++same_n;
      } else {
        cross_sum += sim;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(same_sum / same_n, cross_sum / cross_n + 0.2);
}

TEST(CatalogTest, DurationsInPlausibleRange) {
  const VideoCatalog catalog = VideoCatalog::Generate(SmallOptions());
  for (const VideoInfo& v : catalog.videos()) {
    EXPECT_GE(v.duration_sec, 60);
    EXPECT_LE(v.duration_sec, 5400);
  }
}

TEST(CatalogTest, PopularitySamplingFavoursHead) {
  const VideoCatalog catalog = VideoCatalog::Generate(SmallOptions());
  Rng rng(5);
  std::size_t head_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (catalog.SamplePopular(rng) <= 20) ++head_hits;  // Top 10% of ids.
  }
  // With zipf 0.8 over 200 items, the top-20 mass far exceeds 10%.
  EXPECT_GT(static_cast<double>(head_hits) / n, 0.2);
}

TEST(CatalogTest, DefaultCatalogReleasesEverythingOnDayZero) {
  const VideoCatalog catalog = VideoCatalog::Generate(SmallOptions());
  for (const VideoInfo& v : catalog.videos()) {
    EXPECT_EQ(v.release_day, 0);
  }
  EXPECT_TRUE(catalog.ReleasedOn(1).empty());
}

TEST(CatalogTest, StaggeredReleasesSpreadOverWindow) {
  VideoCatalog::Options options = SmallOptions();
  options.staggered_release_fraction = 0.4;
  options.release_window_days = 5;
  const VideoCatalog catalog = VideoCatalog::Generate(options);
  std::size_t staggered = 0;
  for (const VideoInfo& v : catalog.videos()) {
    EXPECT_GE(v.release_day, 0);
    EXPECT_LE(v.release_day, 5);
    if (v.release_day > 0) ++staggered;
  }
  EXPECT_NEAR(static_cast<double>(staggered) / 200.0, 0.4, 0.12);
  // The per-day index partitions the staggered set.
  std::size_t indexed = 0;
  for (int day = 1; day <= 5; ++day) {
    for (VideoId v : catalog.ReleasedOn(day)) {
      EXPECT_EQ(catalog.Get(v).release_day, day);
      ++indexed;
    }
  }
  EXPECT_EQ(indexed, staggered);
}

TEST(CatalogTest, SampleReleasedRespectsAvailability) {
  VideoCatalog::Options options = SmallOptions();
  options.staggered_release_fraction = 0.5;
  options.release_window_days = 4;
  const VideoCatalog catalog = VideoCatalog::Generate(options);
  Rng rng(3);
  for (int day = 0; day <= 4; ++day) {
    for (int i = 0; i < 500; ++i) {
      const VideoId v = catalog.SamplePopularReleased(rng, day);
      EXPECT_LE(catalog.Get(v).release_day, day)
          << "unreleased video sampled on day " << day;
    }
  }
}

TEST(CatalogTest, TypeResolverMatchesCatalog) {
  const VideoCatalog catalog = VideoCatalog::Generate(SmallOptions());
  const VideoTypeResolver resolver = catalog.TypeResolver();
  for (VideoId v = 1; v <= 200; ++v) {
    EXPECT_EQ(resolver(v), catalog.Get(v).type);
  }
  EXPECT_EQ(resolver(0), 0u);     // Out of range guards.
  EXPECT_EQ(resolver(9999), 0u);
}

}  // namespace
}  // namespace rtrec
