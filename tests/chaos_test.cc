/// Chaos tests: every fault point armed at ~1%, full stacks driven hard,
/// and the invariants that must hold anyway — no crash, no deadlock,
/// bounded tuple loss (at-least-once with acking on), monotone metrics,
/// checkpoints that survive injected write failures and a simulated
/// kill -9. Run under ASan and TSan in CI (see .github/workflows/ci.yml
/// and scripts/chaos.sh).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "core/topology_factory.h"
#include "kvstore/kv_store.h"
#include "net/rec_client.h"
#include "net/rec_server.h"
#include "service/checkpointer.h"
#include "service/recommendation_service.h"
#include "stream/topology.h"

namespace rtrec {
namespace {

constexpr double kChaosRate = 0.01;

UserAction Play(UserId user, VideoId video, Timestamp t) {
  UserAction action;
  action.user = user;
  action.video = video;
  action.type = ActionType::kPlayTime;
  action.view_fraction = 1.0;
  action.time = t;
  return action;
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A stuck drain or a server deadlock must fail loudly, not hang the
    // suite (SIGALRM's default action kills the process).
    alarm(240);
    FaultInjector::Instance().SetMetrics(&chaos_metrics_);
  }

  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    FaultInjector::Instance().SetMetrics(nullptr);
    alarm(0);
  }

  static void ArmStreamFaults() {
    auto& injector = FaultInjector::Instance();
    injector.Arm("stream.bolt.process",
                 FaultSpec::Error().WithProbability(kChaosRate));
    injector.Arm("stream.queue.push",
                 FaultSpec::Error().WithProbability(kChaosRate));
  }

  static void ArmKvStoreFaults() {
    auto& injector = FaultInjector::Instance();
    for (const char* point :
         {"kvstore.get", "kvstore.put", "kvstore.delete", "kvstore.update"}) {
      injector.Arm(point, FaultSpec::Error().WithProbability(kChaosRate));
    }
  }

  static void ArmNetFaults() {
    auto& injector = FaultInjector::Instance();
    for (const char* point :
         {"net.socket.read", "net.socket.write", "net.socket.accept"}) {
      injector.Arm(point, FaultSpec::Error().WithProbability(kChaosRate));
    }
  }

  MetricsRegistry chaos_metrics_;
};

std::vector<UserAction> MakeActions(int rounds, int users) {
  std::vector<UserAction> actions;
  Timestamp t = 0;
  for (int round = 0; round < rounds; ++round) {
    for (UserId u = 1; u <= static_cast<UserId>(users); ++u) {
      actions.push_back(
          Play(u, static_cast<VideoId>(u % 7 + 1), (t += 137)));
    }
  }
  return actions;
}

// --- Streaming layer --------------------------------------------------------

TEST_F(ChaosTest, AckedTopologyDeliversEveryActionUnderFaults) {
  // 1% bolt crashes + 1% queue drops, acking on: dropped trees time out
  // and the reliable spout replays them, so every action still trains
  // the model at least once — and the drain still completes (no
  // deadlock; the alarm in SetUp enforces that).
  ArmStreamFaults();
  ArmKvStoreFaults();  // The pipeline's typed stores don't route through
                       // ShardedKvStore, so these only prove they're inert.

  FactorStore::Options factor_options;
  factor_options.num_factors = 8;
  FactorStore factors(factor_options);
  HistoryStore history;
  SimTableStore table;

  std::vector<UserAction> actions = MakeActions(/*rounds=*/100, /*users=*/20);
  const std::size_t total = actions.size();

  PipelineDeps deps;
  deps.factors = &factors;
  deps.history = &history;
  deps.sim_table = &table;
  deps.type_resolver = [](VideoId) -> VideoType { return 0; };
  deps.model_config.num_factors = 8;
  deps.reliable_spout = true;

  PipelineParallelism wide;
  wide.compute_mf = 2;
  wide.mf_storage = 2;
  wide.user_history = 2;
  wide.get_item_pairs = 2;
  wide.item_pair_sim = 2;
  wide.result_storage = 2;

  auto source = std::make_shared<VectorActionSource>(std::move(actions));
  auto spec = BuildRecommendationTopology(source, deps, wide);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  stream::TopologyOptions options;
  options.enable_acking = true;
  options.ack_timeout_millis = 150;  // Fast replay of dropped trees.
  options.max_task_restarts = 1'000'000;  // Restart forever at 1% rates.
  options.restart_backoff_initial_ms = 1;
  options.restart_backoff_max_ms = 5;
  auto topo = stream::Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());

  // At-least-once: nothing lost; replays may train a tuple twice.
  EXPECT_GE(factors.RatingCount(), total);
  EXPECT_EQ(factors.NumUsers(), 20u);
  EXPECT_EQ(factors.NumVideos(), 7u);

  // Faults actually fired and the supervisor actually restarted tasks —
  // at 1% over tens of thousands of evaluations the probability of
  // either staying zero is negligible.
  EXPECT_GT(chaos_metrics_.GetCounter("fault.injected")->value(), 0);
  EXPECT_GT(
      (*topo)->metrics().GetCounter("topology.task_restarts")->value(), 0);
}

TEST_F(ChaosTest, UnackedTopologyDrainsWithBoundedLossUnderFaults) {
  // Acking off and the spout fault armed too: delivery is at-most-once,
  // so the only invariants are liveness (Join returns) and accounting —
  // processed + dropped covers everything that reached a bolt, and the
  // model saw no more than the emitted total.
  ArmStreamFaults();
  FaultInjector::Instance().Arm(
      "stream.spout.next", FaultSpec::Error().WithProbability(kChaosRate));

  FactorStore::Options factor_options;
  factor_options.num_factors = 8;
  FactorStore factors(factor_options);
  HistoryStore history;
  SimTableStore table;

  std::vector<UserAction> actions = MakeActions(/*rounds=*/100, /*users=*/20);
  const std::size_t total = actions.size();

  PipelineDeps deps;
  deps.factors = &factors;
  deps.history = &history;
  deps.sim_table = &table;
  deps.type_resolver = [](VideoId) -> VideoType { return 0; };
  deps.model_config.num_factors = 8;

  auto source = std::make_shared<VectorActionSource>(std::move(actions));
  auto spec = BuildRecommendationTopology(source, deps);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  stream::TopologyOptions options;
  options.max_task_restarts = 1'000'000;
  options.restart_backoff_initial_ms = 1;
  options.restart_backoff_max_ms = 5;
  auto topo = stream::Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());  // Liveness: the drain completes.

  // Bounded loss: never more trained than emitted, and 1% chaos cannot
  // wipe out the stream.
  EXPECT_LE(factors.RatingCount(), total);
  EXPECT_GT(factors.RatingCount(), total / 2);
}

// --- Serving layer ----------------------------------------------------------

TEST_F(ChaosTest, LiveServerSurvivesSocketAndEngineFaults) {
  ArmNetFaults();
  FaultInjector::Instance().Arm(
      "service.recommend", FaultSpec::Error().WithProbability(kChaosRate));

  RecommendationService::Options service_options;
  service_options.engine.model.num_factors = 8;
  RecommendationService service([](VideoId) -> VideoType { return 0; },
                                service_options);
  Timestamp t = 0;
  for (int round = 0; round < 5; ++round) {
    for (UserId user = 1; user <= 5; ++user) {
      service.Observe(Play(user, 100, t += 1000));
      service.Observe(Play(user, 101, t += 1000));
    }
  }

  MetricsRegistry server_metrics;
  RecServer::Options server_options;
  server_options.port = 0;
  server_options.metrics = &server_metrics;
  RecServer server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());

  MetricsRegistry client_metrics;
  constexpr int kClients = 4;
  constexpr int kCallsPerClient = 60;
  std::atomic<int> ok_count{0};
  std::atomic<int> failed_count{0};
  std::atomic<int> degraded_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, t] {
      RecClient::Options client_options;
      client_options.port = server.port();
      client_options.request_timeout_ms = 2000;
      client_options.retry_backoff_initial_ms = 1;
      client_options.metrics = &client_metrics;
      RecClient client(client_options);
      for (int call = 0; call < kCallsPerClient; ++call) {
        RecRequest request;
        request.user = 999;
        request.top_n = 3;
        request.now = t;
        auto reply = client.RecommendDetailed(request);
        if (reply.ok()) {
          ok_count.fetch_add(1);
          if (reply->degraded()) degraded_count.fetch_add(1);
        } else {
          failed_count.fetch_add(1);  // Retries exhausted: clean error.
        }
      }
    });
  }

  // Sample counters mid-flight to check monotonicity at the end.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::int64_t requests_mid =
      server_metrics.GetCounter("net.server.requests")->value();
  const std::int64_t faults_mid =
      chaos_metrics_.GetCounter("fault.injected")->value();

  for (auto& thread : threads) thread.join();

  // No hang (we got here), no crash, and retries + degraded fallback
  // keep the vast majority of calls succeeding despite 1% faults on
  // every socket operation and the engine itself.
  EXPECT_EQ(ok_count.load() + failed_count.load(), kClients * kCallsPerClient);
  EXPECT_GT(ok_count.load(), kClients * kCallsPerClient * 8 / 10);

  // Monotone metrics: counters only ever grow.
  EXPECT_GE(server_metrics.GetCounter("net.server.requests")->value(),
            requests_mid);
  EXPECT_GE(chaos_metrics_.GetCounter("fault.injected")->value(), faults_mid);
  EXPECT_GE(server_metrics.GetCounter("server.degraded_responses")->value(),
            degraded_count.load());

  // With the chaos off, the same server answers cleanly — it recovered.
  FaultInjector::Instance().DisarmAll();
  RecClient::Options probe_options;
  probe_options.port = server.port();
  RecClient probe(probe_options);
  EXPECT_TRUE(probe.Ping().ok());
  server.Stop();
}

// --- KV store under direct chaos --------------------------------------------

TEST_F(ChaosTest, ShardedKvStoreStaysConsistentUnderFaults) {
  ArmKvStoreFaults();
  ShardedKvStore store;
  std::atomic<int> puts_ok{0};
  std::vector<std::thread> threads;
  for (int worker = 0; worker < 4; ++worker) {
    threads.emplace_back([&store, &puts_ok, worker] {
      for (int i = 0; i < 500; ++i) {
        const std::string key =
            "k" + std::to_string(worker) + "_" + std::to_string(i);
        if (store.Put(key, "v").ok()) puts_ok.fetch_add(1);
        (void)store.Get(key);
        (void)store.Update(key, [](std::string& v) { v += "!"; }, false);
        (void)store.Contains(key);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Every successful Put is durable and readable after the chaos ends.
  FaultInjector::Instance().DisarmAll();
  EXPECT_EQ(store.Size(), static_cast<std::size_t>(puts_ok.load()));
  EXPECT_GT(puts_ok.load(), 0);
}

// --- Checkpoint layer --------------------------------------------------------

class ChaosCheckpointTest : public ChaosTest {
 protected:
  void SetUp() override {
    ChaosTest::SetUp();
    dir_ = std::filesystem::temp_directory_path() /
           ("rtrec_chaos_ckpt_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    ChaosTest::TearDown();
  }

  static RecommendationService::Options EngineOnlyOptions() {
    RecommendationService::Options options;
    options.engine.model.num_factors = 8;
    // Pure engine answers so the restored service can be compared
    // head-to-head (hot lists rebuild from live traffic, which the
    // restored instance hasn't seen).
    options.filter.blend_ratio = 0.0;
    options.filter.min_primary_results = 0;
    return options;
  }

  std::filesystem::path dir_;
};

TEST_F(ChaosCheckpointTest, FailedSnapshotLeavesPreviousCheckpointServing) {
  RecommendationService service([](VideoId) -> VideoType { return 0; },
                                EngineOnlyOptions());
  Timestamp t = 0;
  for (int round = 0; round < 30; ++round) {
    for (UserId u = 1; u <= 6; ++u) {
      for (VideoId v : {10, 11, 12}) {
        service.Observe(Play(u, v, t += 1000));
      }
    }
  }

  Checkpointer::Options options;
  options.directory = dir_.string();
  options.metrics = &chaos_metrics_;
  Checkpointer checkpointer(&service, options);
  ASSERT_TRUE(checkpointer.SnapshotNow().ok());

  // The next snapshot dies on an injected write fault: it must fail
  // cleanly and must NOT damage the snapshot already on disk.
  FaultInjector::Instance().Arm("kvstore.checkpoint.write",
                                FaultSpec::Error().WithOneShot());
  EXPECT_FALSE(checkpointer.SnapshotNow().ok());
  EXPECT_EQ(chaos_metrics_.GetCounter("checkpoint.saves")->value(), 1);
  EXPECT_EQ(chaos_metrics_.GetCounter("checkpoint.failures")->value(), 1);

  RecommendationService restored([](VideoId) -> VideoType { return 0; },
                                 EngineOnlyOptions());
  ASSERT_TRUE(restored.Restore(dir_.string()).ok());

  RecRequest request;
  request.user = 99;
  request.seed_videos = {10};
  // Two slots: videos 11 and 12 via similarity to the seed (which is
  // never recommended back). The engine fills both, so the merge never
  // backfills from the hot tracker — hot lists rebuild from live
  // traffic and are deliberately not part of the checkpoint.
  request.top_n = 2;
  request.now = t;
  auto before = service.Recommend(request);
  auto after = restored.Recommend(request);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), 2u);
  EXPECT_EQ(*before, *after);
}

TEST_F(ChaosCheckpointTest, SimulatedKillNineRestartServesFromSnapshot) {
  // In-process analog of the examples/README.md walkthrough: train,
  // snapshot on an interval, "kill" the service without any shutdown
  // path, restore a fresh instance from disk, and serve.
  auto original = std::make_unique<RecommendationService>(
      [](VideoId) -> VideoType { return 0; }, EngineOnlyOptions());
  Timestamp t = 0;
  for (int round = 0; round < 30; ++round) {
    for (UserId u = 1; u <= 6; ++u) {
      for (VideoId v : {10, 11, 12}) {
        original->Observe(Play(u, v, t += 1000));
      }
    }
  }

  Checkpointer::Options options;
  options.directory = dir_.string();
  options.interval_ms = 20;
  options.snapshot_on_stop = false;  // A kill -9 gets no final snapshot.
  options.metrics = &chaos_metrics_;
  {
    Checkpointer checkpointer(original.get(), options);
    ASSERT_TRUE(checkpointer.Start().ok());
    // Let at least one periodic snapshot land.
    while (chaos_metrics_.GetCounter("checkpoint.saves")->value() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    checkpointer.Stop();
  }

  RecRequest request;
  request.user = 99;
  request.seed_videos = {10};
  // Two slots so the engine fills the response by itself (see the
  // sibling test): the un-checkpointed hot tracker never contributes.
  request.top_n = 2;
  request.now = t;
  auto before = original->Recommend(request);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 2u);
  original.reset();  // The "crash": no checkpoint, no goodbye.

  RecommendationService restarted([](VideoId) -> VideoType { return 0; },
                                  EngineOnlyOptions());
  ASSERT_TRUE(restarted.Restore(dir_.string()).ok());
  auto after = restarted.Recommend(request);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}

}  // namespace
}  // namespace rtrec
