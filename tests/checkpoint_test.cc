#include "kvstore/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/engine.h"

namespace rtrec {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("rtrec_ckpt_" + std::to_string(::getpid()) + ".bin");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  static FactorStore::Options FactorOptions() {
    FactorStore::Options o;
    o.num_factors = 8;
    return o;
  }

  std::filesystem::path path_;
};

TEST_F(CheckpointTest, FactorRoundTrip) {
  FactorStore source(FactorOptions());
  for (UserId u = 1; u <= 20; ++u) {
    source.UpdateUser(u, [u](FactorEntry& e) {
      e.bias = static_cast<float>(u) * 0.1f;
    });
  }
  for (VideoId v = 1; v <= 30; ++v) source.GetOrInitVideo(v);
  source.ObserveRating(1.0);
  source.ObserveRating(0.5);

  ASSERT_TRUE(SaveCheckpoint(path_.string(), &source, nullptr, nullptr).ok());

  FactorStore restored(FactorOptions());
  ASSERT_TRUE(
      LoadCheckpoint(path_.string(), &restored, nullptr, nullptr).ok());
  EXPECT_EQ(restored.NumUsers(), 20u);
  EXPECT_EQ(restored.NumVideos(), 30u);
  EXPECT_EQ(restored.RatingCount(), 2u);
  EXPECT_DOUBLE_EQ(restored.GlobalMean(), 0.75);
  for (UserId u = 1; u <= 20; ++u) {
    auto entry = restored.GetUser(u);
    ASSERT_TRUE(entry.ok());
    EXPECT_FLOAT_EQ(entry->bias, static_cast<float>(u) * 0.1f);
    EXPECT_EQ(entry->vec, source.GetUser(u)->vec);
  }
}

TEST_F(CheckpointTest, SimTableRoundTrip) {
  SimTableStore source;
  source.Update(1, 2, 0.8, 1000);
  source.Update(1, 3, 0.5, 2000);
  source.Update(4, 5, 0.9, 3000);
  ASSERT_TRUE(SaveCheckpoint(path_.string(), nullptr, &source, nullptr).ok());

  SimTableStore restored;
  ASSERT_TRUE(
      LoadCheckpoint(path_.string(), nullptr, &restored, nullptr).ok());
  EXPECT_DOUBLE_EQ(restored.GetDecayedSimilarity(1, 2, 1000), 0.8);
  EXPECT_DOUBLE_EQ(restored.GetDecayedSimilarity(2, 1, 1000), 0.8);
  EXPECT_DOUBLE_EQ(restored.GetDecayedSimilarity(4, 5, 3000), 0.9);
  EXPECT_EQ(restored.NumVideos(), source.NumVideos());
}

TEST_F(CheckpointTest, HistoryRoundTrip) {
  HistoryStore source;
  source.Append(1, {10, 1.5, 100});
  source.Append(1, {11, 2.5, 200});
  source.Append(2, {20, 1.0, 300});
  ASSERT_TRUE(SaveCheckpoint(path_.string(), nullptr, nullptr, &source).ok());

  HistoryStore restored;
  ASSERT_TRUE(
      LoadCheckpoint(path_.string(), nullptr, nullptr, &restored).ok());
  const auto history = restored.Get(1);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].video, 11u);  // Newest first preserved.
  EXPECT_DOUBLE_EQ(history[0].weight, 2.5);
  EXPECT_EQ(restored.Get(2).size(), 1u);
}

TEST_F(CheckpointTest, FullEngineStateSurvivesRestart) {
  // Train an engine, checkpoint, restore into a fresh engine, and verify
  // the serving behaviour matches — the production restart scenario.
  auto types = [](VideoId) -> VideoType { return 0; };
  RecEngine::Options options;
  options.model.num_factors = 8;
  options.model.eta0 = 0.05;
  RecEngine original(types, options);
  Timestamp t = 0;
  for (int round = 0; round < 30; ++round) {
    for (UserId u = 1; u <= 6; ++u) {
      for (VideoId v : {10, 11, 12}) {
        UserAction a;
        a.user = u;
        a.video = v;
        a.type = ActionType::kPlayTime;
        a.view_fraction = 1.0;
        a.time = (t += 1000);
        original.Observe(a);
      }
    }
  }
  ASSERT_TRUE(SaveCheckpoint(path_.string(), &original.factors(),
                             &original.sim_table(), &original.history())
                  .ok());

  RecEngine restarted(types, options);
  ASSERT_TRUE(LoadCheckpoint(path_.string(), &restarted.factors(),
                             &restarted.sim_table(), &restarted.history())
                  .ok());

  RecRequest request;
  request.user = 99;
  request.seed_videos = {10};
  request.now = t;
  auto before = original.Recommend(request);
  auto after = restarted.Recommend(request);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(CheckpointTest, MissingFileIsNotFound) {
  FactorStore store(FactorOptions());
  EXPECT_TRUE(LoadCheckpoint("/nonexistent/ckpt.bin", &store, nullptr,
                             nullptr)
                  .IsNotFound());
}

TEST_F(CheckpointTest, BadMagicIsCorruption) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "NOTACKPTxxxxxxxxxxxxxxxx";
  }
  FactorStore store(FactorOptions());
  EXPECT_EQ(LoadCheckpoint(path_.string(), &store, nullptr, nullptr).code(),
            StatusCode::kCorruption);
}

TEST_F(CheckpointTest, TruncatedFileIsCorruption) {
  FactorStore source(FactorOptions());
  for (UserId u = 1; u <= 10; ++u) source.GetOrInitUser(u);
  ASSERT_TRUE(SaveCheckpoint(path_.string(), &source, nullptr, nullptr).ok());
  // Truncate to half.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size / 2);
  FactorStore store(FactorOptions());
  EXPECT_EQ(LoadCheckpoint(path_.string(), &store, nullptr, nullptr).code(),
            StatusCode::kCorruption);
}

TEST_F(CheckpointTest, DimensionalityMismatchRejected) {
  FactorStore source(FactorOptions());  // f = 8.
  source.GetOrInitUser(1);
  ASSERT_TRUE(SaveCheckpoint(path_.string(), &source, nullptr, nullptr).ok());
  FactorStore::Options other;
  other.num_factors = 16;
  FactorStore wrong(other);
  EXPECT_TRUE(LoadCheckpoint(path_.string(), &wrong, nullptr, nullptr)
                  .IsInvalidArgument());
}

TEST_F(CheckpointTest, BitFlipMidFileRejectedWithLiveStoresUntouched) {
  // Regression for the staged load: corrupting a single byte anywhere in
  // the file must fail with Corruption (per-section CRC-32), and — the
  // part the old load-in-place implementation got wrong — the target
  // stores must come through completely untouched, even when the
  // corruption sits in a later section than the one being applied.
  FactorStore source(FactorOptions());
  for (UserId u = 1; u <= 10; ++u) {
    source.UpdateUser(u, [u](FactorEntry& e) {
      e.bias = static_cast<float>(u) * 0.5f;
    });
  }
  SimTableStore sims;
  sims.Update(1, 2, 0.7, 1000);
  HistoryStore history;
  history.Append(1, {10, 1.0, 100});
  ASSERT_TRUE(SaveCheckpoint(path_.string(), &source, &sims, &history).ok());

  // Flip one bit in the middle of the file.
  {
    std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    const auto mid =
        static_cast<std::streamoff>(std::filesystem::file_size(path_) / 2);
    file.seekg(mid);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(mid);
    file.write(&byte, 1);
  }

  // Targets that already hold live serving state.
  FactorStore live(FactorOptions());
  live.UpdateUser(42, [](FactorEntry& e) { e.bias = 9.0f; });
  live.ObserveRating(2.0);
  SimTableStore live_sims;
  live_sims.Update(7, 8, 0.9, 500);
  HistoryStore live_history;
  live_history.Append(5, {50, 3.0, 999});

  EXPECT_EQ(
      LoadCheckpoint(path_.string(), &live, &live_sims, &live_history).code(),
      StatusCode::kCorruption);

  // Every live store is exactly as it was before the failed load.
  EXPECT_EQ(live.NumUsers(), 1u);
  EXPECT_EQ(live.RatingCount(), 1u);
  auto entry = live.GetUser(42);
  ASSERT_TRUE(entry.ok());
  EXPECT_FLOAT_EQ(entry->bias, 9.0f);
  EXPECT_FALSE(live.GetUser(1).ok());
  EXPECT_DOUBLE_EQ(live_sims.GetDecayedSimilarity(7, 8, 500), 0.9);
  EXPECT_EQ(live_sims.GetDecayedSimilarity(1, 2, 1000), 0.0);
  EXPECT_EQ(live_history.Get(5).size(), 1u);
  EXPECT_TRUE(live_history.Get(1).empty());
}

TEST_F(CheckpointTest, NullTargetsSkipSections) {
  FactorStore source(FactorOptions());
  source.GetOrInitUser(1);
  SimTableStore table;
  table.Update(1, 2, 0.5, 0);
  ASSERT_TRUE(SaveCheckpoint(path_.string(), &source, &table, nullptr).ok());
  // Load only the sim table.
  SimTableStore restored;
  ASSERT_TRUE(
      LoadCheckpoint(path_.string(), nullptr, &restored, nullptr).ok());
  EXPECT_DOUBLE_EQ(restored.GetDecayedSimilarity(1, 2, 0), 0.5);
}

}  // namespace
}  // namespace rtrec
