#include "cluster/cluster_client.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/manifest.h"
#include "cluster/shard_action_source.h"
#include "common/trace.h"
#include "core/topology_factory.h"
#include "net/rec_server.h"
#include "obs/span_collector.h"
#include "service/recommendation_service.h"

namespace rtrec {
namespace {

using Clock = std::chrono::steady_clock;

UserAction Play(UserId user, VideoId video, Timestamp t) {
  UserAction action;
  action.user = user;
  action.video = video;
  action.type = ActionType::kPlayTime;
  action.view_fraction = 1.0;
  action.time = t;
  return action;
}

VideoTypeResolver OneType() {
  return [](VideoId) -> VideoType { return 0; };
}

RecommendationService::Options SmallService(MetricsRegistry* metrics) {
  RecommendationService::Options options;
  options.engine.model.num_factors = 8;
  options.metrics = metrics;
  return options;
}

/// One in-process shard: its own service and server, the same pairing a
/// `serve --shard-id` process holds.
struct Shard {
  Shard()
      : service(std::make_unique<RecommendationService>(
            OneType(), SmallService(&metrics))) {
    Start(0);
  }

  void Start(std::uint16_t bind_port) {
    RecServer::Options options;
    options.port = bind_port;
    options.num_workers = 2;
    options.metrics = &metrics;
    options.tracer = tracer.get();
    options.spans = spans.get();
    server = std::make_unique<RecServer>(service.get(), options);
    Status started = server->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    port = server->port();  // Remembered across Stop (which clears it).
  }

  /// Restart this shard with span recording attached so tests can
  /// inspect what the wire delivered (adopted trace ids, hop numbers).
  void EnableTracing() {
    Tracer::Options tracer_options;
    tracer_options.sample_every_n = 0;  // Only adopted contexts record.
    tracer_options.metrics = &metrics;
    tracer = std::make_unique<Tracer>(tracer_options);
    obs::SpanCollector::Options span_options;
    span_options.drain_interval_ms = 1;
    span_options.metrics = &metrics;
    spans = std::make_unique<obs::SpanCollector>(span_options);
    server->Stop();
    Start(port);
  }

  /// kill -9 equivalent for an in-process shard: connections die, the
  /// port goes dark.
  void Kill() { server->Stop(); }

  /// Restart on the same address with a fresh service restored from
  /// `checkpoint_dir` — the shard-handoff path a supervised restart
  /// takes.
  void Restart(const std::string& checkpoint_dir) {
    server.reset();
    service = std::make_unique<RecommendationService>(
        OneType(), SmallService(&metrics));
    Status restored = service->Restore(checkpoint_dir);
    ASSERT_TRUE(restored.ok()) << restored.ToString();
    Start(port);
  }

  /// Actions this shard's service has applied ("service.actions").
  std::int64_t actions_observed() {
    return metrics.GetCounter("service.actions")->value();
  }

  MetricsRegistry metrics;
  std::unique_ptr<RecommendationService> service;
  std::unique_ptr<Tracer> tracer;
  std::unique_ptr<obs::SpanCollector> spans;
  std::unique_ptr<RecServer> server;
  std::uint16_t port = 0;
};

/// A 2-shard in-process cluster plus the manifest describing it.
struct Cluster {
  Cluster() {
    std::string text;
    for (int i = 0; i < 2; ++i) {
      text += "shard " + std::to_string(i) + " 127.0.0.1 " +
              std::to_string(shards[i].server->port()) + "\n";
    }
    auto parsed = ClusterManifest::Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (parsed.ok()) manifest = *std::move(parsed);
  }

  /// Router options tuned for test speed: quick failover, short breaker
  /// cooldown so recovery inside a test window is observable.
  ClusterClient::Options RouterOptions(MetricsRegistry* metrics = nullptr) {
    ClusterClient::Options options;
    options.manifest = manifest;
    options.breaker_failure_threshold = 2;
    options.breaker_cooldown_ms = 100;
    options.client.connect_timeout_ms = 200;
    options.client.request_timeout_ms = 1'000;
    options.client.max_retries = 1;
    options.client.retry_backoff_initial_ms = 2;
    options.client.retry_backoff_max_ms = 20;
    options.client.total_deadline_ms = 1'500;
    options.metrics = metrics;
    return options;
  }

  /// A user id owned by `shard` under the manifest's ring.
  UserId UserOwnedBy(ShardId shard) {
    const HashRing ring = manifest.Ring();
    for (UserId user = 1; user < 10'000; ++user) {
      if (*ring.OwnerOfUser(user) == shard) return user;
    }
    ADD_FAILURE() << "no user maps to shard " << shard;
    return 0;
  }

  Shard shards[2];
  ClusterManifest manifest;
};

/// Scratch directory removed on scope exit.
struct TempDir {
  TempDir() {
    char name[] = "/tmp/rtrec_cluster_test_XXXXXX";
    path = mkdtemp(name);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

// ---------------------------------------------------------------------------

TEST(ClusterClientTest, RoutesEachUserToItsOwningShard) {
  Cluster cluster;
  ClusterClient client(cluster.RouterOptions());
  // Writes land on the owner: observe through the router, then check
  // which shard's service actually trained.
  const UserId user0 = cluster.UserOwnedBy(0);
  const UserId user1 = cluster.UserOwnedBy(1);
  ASSERT_TRUE(client.Observe(Play(user0, 10, 1'000)).ok());
  ASSERT_TRUE(client.Observe(Play(user0, 11, 2'000)).ok());
  ASSERT_TRUE(client.Observe(Play(user1, 10, 3'000)).ok());
  ASSERT_TRUE(client.Observe(Play(user1, 12, 4'000)).ok());
  EXPECT_EQ(client.OwnerOf(user0), 0u);
  EXPECT_EQ(client.OwnerOf(user1), 1u);
  // Per-key single-writer across processes: each shard applied exactly
  // its own users' actions, nothing leaked to the other.
  EXPECT_EQ(cluster.shards[0].actions_observed(), 2);
  EXPECT_EQ(cluster.shards[1].actions_observed(), 2);
}

TEST(ClusterClientTest, FailoverAnswerIsDegradedAndHealsAfterRestart) {
  Cluster cluster;
  MetricsRegistry metrics;
  ClusterClient client(cluster.RouterOptions(&metrics));
  const UserId victim_user = cluster.UserOwnedBy(1);
  ASSERT_TRUE(client.Observe(Play(victim_user, 10, 1'000)).ok());

  RecRequest request;
  request.user = victim_user;
  request.top_n = 5;
  request.now = 10'000;
  auto before = client.RecommendDetailed(request);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_FALSE(before->degraded());

  cluster.shards[1].Kill();
  auto during = client.RecommendDetailed(request);
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  EXPECT_TRUE(during->degraded())
      << "a failover answer must carry the DEGRADED flag";
  EXPECT_GT(metrics.GetCounter("cluster.router.failovers")->value(), 0);

  cluster.shards[1].Start(cluster.shards[1].port);
  ASSERT_TRUE(client.ShardHealthy(1));
  auto after = client.RecommendDetailed(request);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->degraded());
}

TEST(ClusterClientTest, FailoverRetryCarriesTheHopNumber) {
  // A failover answer is the second hop of the same trace: the router
  // re-stamps the propagated context with hop=1 before retrying, and
  // the fallback shard records that hop on the spans it commits.
  Cluster cluster;
  const UserId user = cluster.UserOwnedBy(0);
  cluster.shards[1].EnableTracing();  // The fallback for shard-0 users.
  ClusterClient client(cluster.RouterOptions());
  cluster.shards[0].Kill();

  TraceContext trace;
  trace.id = 0xFA170FE2ull;
  trace.start_us = Tracer::NowMicros();
  RecRequest request;
  request.user = user;
  request.top_n = 3;
  request.now = 10'000;
  {
    ScopedTraceContext scope(trace);
    auto reply = client.RecommendDetailed(request);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_TRUE(reply->degraded());
  }

  obs::SpanCollector& spans = *cluster.shards[1].spans;
  spans.Flush();
  EXPECT_TRUE(spans.HasTrace(trace.id))
      << "the fallback shard should have adopted the propagated context";
  const std::string slow = spans.ExportSlowJson();
  EXPECT_NE(slow.find("\"trace_id\":\"00000000fa170fe2\""), std::string::npos)
      << slow;
  EXPECT_NE(slow.find("\"hop\":1"), std::string::npos)
      << "failover spans must carry hop=1: " << slow;
  EXPECT_EQ(
      cluster.shards[1].metrics.GetCounter("trace.adopted")->value(), 1);
}

TEST(ClusterClientTest, AllShardsDownSurfacesUnavailable) {
  Cluster cluster;
  ClusterClient client(cluster.RouterOptions());
  cluster.shards[0].Kill();
  cluster.shards[1].Kill();
  RecRequest request;
  request.user = 1;
  request.top_n = 5;
  auto reply = client.RecommendDetailed(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().IsUnavailable());
  EXPECT_FALSE(client.Healthy());
}

TEST(ClusterClientTest, BreakerOpensAndRecoversViaProbe) {
  Cluster cluster;
  MetricsRegistry metrics;
  ClusterClient client(cluster.RouterOptions(&metrics));
  const UserId victim_user = cluster.UserOwnedBy(0);
  cluster.shards[0].Kill();

  RecRequest request;
  request.user = victim_user;
  request.top_n = 5;
  // Enough calls to trip the breaker (threshold 2), all answered via
  // failover.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.RecommendDetailed(request).ok());
  }
  EXPECT_GT(metrics.GetCounter("cluster.router.breaker_trips")->value(), 0);
  EXPECT_FALSE(client.ShardHealthy(0));
  EXPECT_GT(metrics.GetCounter("cluster.router.probe_failure")->value(), 0);

  cluster.shards[0].Start(cluster.shards[0].port);
  ASSERT_TRUE(client.ShardHealthy(0));
  EXPECT_GT(metrics.GetCounter("cluster.router.probe_success")->value(), 0);
  auto reply = client.RecommendDetailed(request);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->degraded());
}

TEST(ClusterClientTest, MergedScrapeCarriesClusterHeaderAndShardSections) {
  Cluster cluster;
  ClusterClient client(cluster.RouterOptions());
  RecRequest request;
  request.user = 1;
  request.top_n = 5;
  ASSERT_TRUE(client.Observe(Play(1, 10, 1'000)).ok());
  ASSERT_TRUE(client.RecommendDetailed(request).ok());
  auto scrape = client.Stats();
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  EXPECT_NE(scrape->find("cluster_shards 2"), std::string::npos);
  EXPECT_NE(scrape->find("cluster_shards_healthy 2"), std::string::npos);
  EXPECT_NE(scrape->find("cluster_shard_up{shard=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(scrape->find("shard 0 @"), std::string::npos);
  EXPECT_NE(scrape->find("shard 1 @"), std::string::npos);
  // Summed request counter from the per-shard scrapes.
  EXPECT_NE(scrape->find("net_server_requests_total"), std::string::npos);
}

// The satellite chaos scenario: a 2-shard in-process cluster, one shard
// killed and restarted mid-traffic. Bounded error rate, DEGRADED
// responses during the outage, zero errors after recovery.
TEST(ClusterChaosTest, ShardKillAndRestartMidTraffic) {
  Cluster cluster;
  TempDir checkpoints;
  MetricsRegistry metrics;

  std::atomic<bool> stop{false};
  std::atomic<int> phase{0};  // 0 steady, 1 outage, 2 recovered.
  std::atomic<std::int64_t> ok[3] = {};
  std::atomic<std::int64_t> errors[3] = {};
  std::atomic<std::int64_t> degraded[3] = {};

  std::thread loadgen([&] {
    ClusterClient client(cluster.RouterOptions(&metrics));
    RecRequest request;
    request.top_n = 5;
    Timestamp t = 1'000'000;
    int seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int p = phase.load(std::memory_order_relaxed);
      const UserId user = 1 + seq % 16;
      if (seq % 4 == 3) {
        const Status status = client.Observe(Play(user, 10 + seq % 3,
                                                  t += 1'000));
        (status.ok() ? ok : errors)[p].fetch_add(1,
                                                 std::memory_order_relaxed);
      } else {
        request.user = user;
        request.now = t;
        auto reply = client.RecommendDetailed(request);
        if (reply.ok()) {
          ok[p].fetch_add(1, std::memory_order_relaxed);
          if (reply->degraded()) {
            degraded[p].fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          errors[p].fetch_add(1, std::memory_order_relaxed);
        }
      }
      ++seq;
    }
  });
  // A fatal assert below returns from the test body early; this guard
  // keeps the loadgen from outliving it (std::thread dtor terminates).
  struct StopAndJoin {
    std::atomic<bool>& stop;
    std::thread& thread;
    ~StopAndJoin() {
      stop.store(true);
      if (thread.joinable()) thread.join();
    }
  } joiner{stop, loadgen};

  // Steady window.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Snapshot the victim's slice, then kill it mid-traffic.
  const ShardId victim = 1;
  ASSERT_TRUE(
      cluster.shards[victim].service->Checkpoint(checkpoints.path).ok());
  phase.store(1);
  cluster.shards[victim].Kill();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // Restart from the checkpoint (shard handoff) and wait until the
  // loadgen's router sees it healthy again before opening the clean
  // window (its breaker cooldown is 100ms).
  cluster.shards[victim].Restart(checkpoints.path);
  ClusterClient probe(cluster.RouterOptions());
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (!probe.ShardHealthy(victim) && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(probe.ShardHealthy(victim)) << "victim never recovered";
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  phase.store(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  loadgen.join();

  // Steady window: traffic flowed, nothing degraded.
  EXPECT_GT(ok[0].load(), 0);
  EXPECT_EQ(errors[0].load(), 0);

  // Outage window: traffic kept flowing (failover), the victim's share
  // was answered DEGRADED, and the error rate stayed bounded — the
  // other shard was up the whole time, so nothing should have errored.
  EXPECT_GT(ok[1].load(), 0);
  EXPECT_GT(degraded[1].load(), 0)
      << "outage traffic must carry DEGRADED failover answers";
  const double outage_total =
      static_cast<double>(ok[1].load() + errors[1].load());
  EXPECT_LE(errors[1].load(), outage_total * 0.05)
      << "outage error rate not bounded";

  // Post-recovery window: whole cluster, zero errors.
  EXPECT_GT(ok[2].load(), 0);
  EXPECT_EQ(errors[2].load(), 0) << "errors after recovery";

  // The restarted shard serves its restored slice: a victim-owned user
  // trained before the kill gets a non-degraded answer.
  ClusterClient client(cluster.RouterOptions());
  RecRequest request;
  request.user = cluster.UserOwnedBy(victim);
  request.top_n = 5;
  request.now = 2'000'000;
  auto reply = client.RecommendDetailed(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->degraded());
}

// --- Partitioned ingest ----------------------------------------------------

TEST(ShardActionSourceTest, ShardsPartitionTheFeedExactlyOnce) {
  const int kShards = 4;
  std::vector<UserAction> feed;
  for (UserId user = 1; user <= 200; ++user) {
    feed.push_back(Play(user, 10 + user % 7, 1'000 * user));
  }

  // Each shard replays its own copy of the feed (the documented
  // contract) and keeps its slice.
  const HashRing ring(kShards);
  std::multiset<UserId> emitted;
  std::size_t total_skipped = 0;
  for (ShardId shard = 0; shard < kShards; ++shard) {
    ShardActionSource source(std::make_shared<VectorActionSource>(feed),
                             ring, shard);
    while (auto action = source.Next()) {
      EXPECT_EQ(*ring.OwnerOfUser(action->user), shard)
          << "shard emitted an action it does not own";
      emitted.insert(action->user);
    }
    total_skipped += source.skipped();
  }

  // The union across shards is the full feed, each action exactly once.
  std::multiset<UserId> expected;
  for (const UserAction& action : feed) expected.insert(action.user);
  EXPECT_EQ(emitted, expected);
  // Everything not emitted by a shard was skipped by it: N shards each
  // replay the feed and drop the (N-1)/N they do not own.
  EXPECT_EQ(total_skipped, feed.size() * (kShards - 1));
}

}  // namespace
}  // namespace rtrec
