// Tests for the lock-free ingest primitives in src/concurrent/: the
// SPSC and MPSC rings, the blocking RingQueue wrapper the stream engine
// uses as its task queue, CPU affinity pinning, and latency sampling.
// The stress tests do exact accounting (every pushed value popped
// exactly once, per-producer FIFO preserved) and run under the same
// ASan/TSan matrix as the rest of the suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "concurrent/cpu_bind.h"
#include "concurrent/latency_stats.h"
#include "concurrent/mpsc_ring.h"
#include "concurrent/ring_queue.h"
#include "concurrent/spsc_ring.h"

#if defined(__linux__)
#include <sched.h>
#endif

namespace rtrec::concurrent {
namespace {

// --- SPSC ring -------------------------------------------------------------

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRingTest, FifoOrderAndEmptyFullEdges) {
  SpscRing<int> ring(4);
  int v = 0;
  EXPECT_FALSE(ring.TryPop(v));  // Empty.
  for (int i = 0; i < 4; ++i) {
    int item = i;
    EXPECT_TRUE(ring.TryPush(item));
  }
  int overflow = 99;
  EXPECT_FALSE(ring.TryPush(overflow));  // Full.
  EXPECT_EQ(overflow, 99);               // Untouched on failure.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(v));
}

TEST(SpscRingTest, WrapAroundManyTimes) {
  SpscRing<std::int64_t> ring(4);
  std::int64_t next = 0;
  // 10k items through a 4-slot ring: the indices wrap the mask ~2500
  // times and the values must still come out in order.
  for (std::int64_t i = 0; i < 10000; ++i) {
    std::int64_t item = i;
    ASSERT_TRUE(ring.TryPush(item));
    if (i % 3 == 2) {  // Drain in bursts of 3 to exercise partial fill.
      for (int k = 0; k < 3; ++k) {
        std::int64_t out = -1;
        ASSERT_TRUE(ring.TryPop(out));
        EXPECT_EQ(out, next++);
      }
    }
  }
  std::int64_t out = -1;
  while (ring.TryPop(out)) EXPECT_EQ(out, next++);
  EXPECT_EQ(next, 10000);
}

TEST(SpscRingTest, PopBatchTakesFifoPrefixWithSingleIndexUpdate) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 6; ++i) {
    int item = i;
    ASSERT_TRUE(ring.TryPush(item));
  }
  std::vector<int> out;
  EXPECT_EQ(ring.TryPopBatch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ring.SizeApprox(), 2u);
  EXPECT_EQ(ring.TryPopBatch(out, 100), 2u);  // Capped by availability.
  EXPECT_EQ(out.size(), 6u);
  EXPECT_EQ(out.back(), 5);
  EXPECT_EQ(ring.TryPopBatch(out, 4), 0u);  // Empty.
}

TEST(SpscRingTest, ThreadPairStressExactAccounting) {
  constexpr std::int64_t kItems = 200000;
  SpscRing<std::int64_t> ring(64);
  std::thread producer([&] {
    for (std::int64_t i = 0; i < kItems;) {
      std::int64_t item = i;
      if (ring.TryPush(item)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::int64_t expected = 0;
  std::vector<std::int64_t> batch;
  while (expected < kItems) {
    batch.clear();
    if (ring.TryPopBatch(batch, 32) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::int64_t v : batch) {
      ASSERT_EQ(v, expected);  // Strict FIFO, nothing lost or duplicated.
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(ring.SizeApprox(), 0u);
}

// --- MPSC ring -------------------------------------------------------------

TEST(MpscRingTest, FifoOrderAndFullEdge) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    int item = i;
    EXPECT_TRUE(ring.TryPush(item));
  }
  int overflow = 99;
  EXPECT_FALSE(ring.TryPush(overflow));
  int v = -1;
  ASSERT_TRUE(ring.TryPop(v));
  EXPECT_EQ(v, 0);
  // The freed slot is immediately reusable (wrap-around recycling).
  int item = 100;
  EXPECT_TRUE(ring.TryPush(item));
  std::vector<int> rest;
  EXPECT_EQ(ring.TryPopBatch(rest, 10), 4u);
  EXPECT_EQ(rest, (std::vector<int>{1, 2, 3, 100}));
}

TEST(MpscRingTest, MultiProducerExactAccountingAndPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr std::int64_t kPerProducer = 50000;
  MpscRing<std::int64_t> ring(128);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::int64_t i = 0; i < kPerProducer;) {
        // Encode (producer, sequence) so the consumer can verify both
        // exact delivery and per-producer ordering.
        std::int64_t item = p * kPerProducer + i;
        if (ring.TryPush(item)) {
          ++i;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<std::int64_t> next_seq(kProducers, 0);
  std::int64_t received = 0;
  std::vector<std::int64_t> batch;
  while (received < kProducers * kPerProducer) {
    batch.clear();
    if (ring.TryPopBatch(batch, 64) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::int64_t v : batch) {
      const int p = static_cast<int>(v / kPerProducer);
      const std::int64_t seq = v % kPerProducer;
      ASSERT_EQ(seq, next_seq[p]);  // FIFO within each producer.
      ++next_seq[p];
      ++received;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ring.SizeApprox(), 0u);
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kPerProducer);
}

// --- RingQueue (blocking wrapper) ------------------------------------------

TEST(RingQueueTest, PushPopAndDrainAfterClose) {
  RingQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));  // Closed: push refused.
  auto a = queue.Pop();          // But buffered items still drain.
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 1);
  auto b = queue.Pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 2);
  EXPECT_FALSE(queue.Pop().has_value());  // Drained and closed.
}

TEST(RingQueueTest, BlockingPushBackpressureReleasedByConsumer) {
  RingQueue<int>::Options options;
  options.capacity = 2;
  options.single_producer = true;
  RingQueue<int> queue(options);
  ASSERT_TRUE(queue.Push(0));
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // Blocks until the consumer pops.
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());  // Still blocked on the full ring.
  EXPECT_EQ(*queue.Pop(), 0);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(*queue.Pop(), 1);
  EXPECT_EQ(*queue.Pop(), 2);
}

TEST(RingQueueTest, CloseWakesBlockedConsumerAndProducer) {
  RingQueue<int> full(2);
  ASSERT_TRUE(full.Push(1));
  ASSERT_TRUE(full.Push(2));
  std::thread producer([&] { EXPECT_FALSE(full.Push(3)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  full.Close();
  producer.join();

  RingQueue<int> empty(2);
  std::thread blocked_consumer(
      [&] { EXPECT_FALSE(empty.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  empty.Close();
  blocked_consumer.join();
}

TEST(RingQueueTest, PopBatchDrainsUpToLimitInOrder) {
  RingQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue.Push(i));
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  out.clear();
  EXPECT_EQ(queue.PopBatch(out, 100), 6u);
  EXPECT_EQ(out.front(), 4);
  EXPECT_EQ(out.back(), 9);
}

TEST(RingQueueTest, StatsCountersPopulate) {
  MetricsRegistry metrics;
  RingQueue<int>::Options options;
  options.capacity = 2;
  options.stats.push_retries = metrics.GetCounter("q.push_retries");
  options.stats.batch_drains = metrics.GetCounter("q.batch_drains");
  options.stats.parked_wakeups = metrics.GetCounter("q.parked_wakeups");
  RingQueue<int> queue(options);

  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  std::thread producer([&] { EXPECT_TRUE(queue.Push(3)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::vector<int> out;
  while (out.size() < 3) queue.PopBatch(out, 8);
  producer.join();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_GE(metrics.GetCounter("q.push_retries")->value(), 1);
  EXPECT_GE(metrics.GetCounter("q.batch_drains")->value(), 1);
  // parked_wakeups only fires if the consumer actually parked — can be
  // zero on a fast machine, so just assert it is non-negative.
  EXPECT_GE(metrics.GetCounter("q.parked_wakeups")->value(), 0);
}

// Multi-producer soak through the blocking wrapper: exercises the
// park/wake handshake from both sides under contention. TSan builds run
// this too (tests share the sanitizer CI matrix), which is the
// data-race check for the Dekker-pattern parking protocol.
TEST(RingQueueTest, MpscSoakExactAccounting) {
  constexpr int kProducers = 3;
  constexpr std::int64_t kPerProducer = 20000;
  RingQueue<std::int64_t>::Options options;
  options.capacity = 64;  // Small: forces backpressure parking.
  RingQueue<std::int64_t> queue(options);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::int64_t> next_seq(kProducers, 0);
  std::int64_t received = 0;
  std::vector<std::int64_t> batch;
  while (received < kProducers * kPerProducer) {
    batch.clear();
    const std::size_t n = queue.PopBatch(batch, 32);
    ASSERT_GT(n, 0u);  // Queue is never closed, so PopBatch must block.
    for (std::int64_t v : batch) {
      const int p = static_cast<int>(v / kPerProducer);
      ASSERT_EQ(v % kPerProducer, next_seq[p]);
      ++next_seq[p];
      ++received;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(queue.SizeApprox(), 0u);
}

// --- CpuBind ---------------------------------------------------------------

TEST(CpuBindTest, NumCpusAndAllowedCpusAgree) {
  EXPECT_GE(CpuBind::NumCpus(), 1);
  const std::vector<int> cpus = CpuBind::AllowedCpus();
  EXPECT_EQ(static_cast<int>(cpus.size()), CpuBind::NumCpus());
  EXPECT_TRUE(std::is_sorted(cpus.begin(), cpus.end()));
}

#if defined(__linux__)
TEST(CpuBindTest, PinCurrentThreadRestrictsAffinity) {
  const std::vector<int> cpus = CpuBind::AllowedCpus();
  ASSERT_FALSE(cpus.empty());
  // Pin from a scratch thread so the test runner's own affinity is
  // untouched.
  std::thread worker([&] {
    const int target = cpus.back();
    ASSERT_TRUE(CpuBind::PinCurrentThread(target).ok());
    cpu_set_t set;
    CPU_ZERO(&set);
    ASSERT_EQ(sched_getaffinity(0, sizeof(set), &set), 0);
    EXPECT_EQ(CPU_COUNT(&set), 1);
    EXPECT_TRUE(CPU_ISSET(target, &set));
    EXPECT_EQ(CpuBind::CurrentCpu(), target);
  });
  worker.join();
}

TEST(CpuBindTest, PinToDisallowedCpuFails) {
  std::thread worker([] {
    EXPECT_FALSE(CpuBind::PinCurrentThread(-1).ok());
    EXPECT_FALSE(CpuBind::PinCurrentThread(1 << 20).ok());
  });
  worker.join();
}
#endif  // __linux__

TEST(CpuBindPlanTest, RoundRobinOverAllowedCpus) {
  CpuBindPlan plan(/*enabled=*/true);
  const std::size_t n = plan.num_cpus();
  if (n == 0) {
    EXPECT_EQ(plan.NextCpu(), -1);
    return;
  }
  const std::vector<int> cpus = CpuBind::AllowedCpus();
  for (std::size_t round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(plan.NextCpu(), cpus[i]);
    }
  }
}

TEST(CpuBindPlanTest, DisabledPlanHandsOutMinusOne) {
  CpuBindPlan plan(/*enabled=*/false);
  EXPECT_EQ(plan.num_cpus(), 0u);
  EXPECT_EQ(plan.NextCpu(), -1);
  EXPECT_EQ(plan.NextCpu(), -1);
}

// --- LatencyStats ----------------------------------------------------------

TEST(LatencyStatsTest, TicksExactlyOneInN) {
  LatencyStats stats(nullptr, 8);
  int fires = 0;
  for (int i = 0; i < 80; ++i) {
    if (stats.Tick()) ++fires;
  }
  EXPECT_EQ(fires, 10);
}

TEST(LatencyStatsTest, RecordFeedsHistogramAndZeroNClampsToOne) {
  MetricsRegistry metrics;
  Histogram* hist = metrics.GetHistogram("wait_us");
  LatencyStats stats(hist, 0);  // 0 clamps to sample-every-1.
  EXPECT_EQ(stats.sample_every_n(), 1u);
  EXPECT_TRUE(stats.Tick());
  EXPECT_TRUE(stats.Tick());
  stats.Record(100);
  stats.Record(200);
  EXPECT_EQ(hist->count(), 2u);
  // Default-constructed sampler has no histogram; Record is a no-op.
  LatencyStats detached;
  detached.Record(5);
}

}  // namespace
}  // namespace rtrec::concurrent
