#include "data/dataset.h"

#include <gtest/gtest.h>

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;
  a.time = t;
  return a;
}

UserAction Impress(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kImpress;
  a.time = t;
  return a;
}

TEST(DatasetTest, SortsOnConstruction) {
  Dataset data({Play(1, 1, 300), Play(1, 2, 100), Play(1, 3, 200)});
  ASSERT_EQ(data.size(), 3u);
  EXPECT_EQ(data.actions()[0].time, 100);
  EXPECT_EQ(data.actions()[2].time, 300);
}

TEST(DatasetTest, SplitAtTimePartitionsChronologically) {
  Dataset data({Play(1, 1, 100), Play(1, 2, 200), Play(1, 3, 300)});
  const auto [train, test] = data.SplitAtTime(250);
  EXPECT_EQ(train.size(), 2u);
  EXPECT_EQ(test.size(), 1u);
  EXPECT_EQ(test.actions()[0].video, 3u);
}

TEST(DatasetTest, FilterMinActivityDropsLightUsers) {
  std::vector<UserAction> actions;
  // User 1: 5 engaged actions; user 2: 1.
  for (int i = 0; i < 5; ++i) {
    actions.push_back(Play(1, static_cast<VideoId>(i % 2 + 1), i * 100));
  }
  actions.push_back(Play(2, 1, 1000));
  Dataset data(std::move(actions));
  const Dataset filtered = data.FilterMinActivity(3, 1);
  for (const UserAction& a : filtered.actions()) {
    EXPECT_EQ(a.user, 1u);
  }
  EXPECT_EQ(filtered.size(), 5u);
}

TEST(DatasetTest, FilterMinActivityDropsColdVideos) {
  std::vector<UserAction> actions;
  for (UserId u = 1; u <= 4; ++u) {
    actions.push_back(Play(u, 1, u * 100));        // Video 1: 4 actions.
    actions.push_back(Play(u, 100 + u, u * 200));  // Unique cold videos.
  }
  Dataset data(std::move(actions));
  const Dataset filtered = data.FilterMinActivity(1, 3);
  for (const UserAction& a : filtered.actions()) {
    EXPECT_EQ(a.video, 1u);
  }
}

TEST(DatasetTest, FixpointCleaningCollapsesCascades) {
  // u1, u2 watch {A, B}; u3 watches {B, C}. Floors: user >= 2, video >= 2.
  // The single pass (users first, then videos) keeps all users, then
  // drops video C (1 action) — leaving u3 with one surviving action,
  // *below* the user floor, but the pass is over. The fixpoint's next
  // round evicts u3; {u1, u2} x {A, B} remains stable.
  std::vector<UserAction> actions = {
      Play(1, 100, 10), Play(1, 200, 20), Play(2, 100, 30),
      Play(2, 200, 40), Play(3, 200, 50), Play(3, 300, 60)};
  Dataset data(std::move(actions));
  const Dataset one_pass = data.FilterMinActivity(2, 2);
  EXPECT_EQ(one_pass.size(), 5u);  // u3's video-200 action survives.
  const Dataset fixpoint = data.FilterMinActivityFixpoint(2, 2);
  EXPECT_EQ(fixpoint.size(), 4u);  // u3 fully evicted.
  for (const UserAction& a : fixpoint.actions()) {
    EXPECT_NE(a.user, 3u);
  }
}

TEST(DatasetTest, FixpointEqualsOnePassWhenAlreadyStable) {
  std::vector<UserAction> actions;
  for (UserId u = 1; u <= 3; ++u) {
    for (VideoId v = 1; v <= 3; ++v) {
      actions.push_back(Play(u, v, static_cast<Timestamp>(u * 10 + v)));
    }
  }
  Dataset data(std::move(actions));
  EXPECT_EQ(data.FilterMinActivityFixpoint(2, 2).size(),
            data.FilterMinActivity(2, 2).size());
}

TEST(DatasetTest, ImpressionsDoNotCountAsActivity) {
  std::vector<UserAction> actions;
  for (int i = 0; i < 10; ++i) {
    actions.push_back(Impress(1, 1, i * 10));
  }
  actions.push_back(Play(2, 2, 1000));
  Dataset data(std::move(actions));
  const Dataset filtered = data.FilterMinActivity(2, 1);
  // User 1 has 0 engaged actions: everything of theirs is dropped; user 2
  // has only 1: dropped too.
  EXPECT_TRUE(filtered.empty());
}

TEST(DatasetTest, StatsCountEngagedOnly) {
  Dataset data({Play(1, 1, 100), Play(1, 2, 200), Play(2, 1, 300),
                Impress(3, 3, 400)});
  const DatasetStats stats = data.Stats(FeedbackConfig{});
  EXPECT_EQ(stats.num_users, 2u);
  EXPECT_EQ(stats.num_videos, 2u);
  EXPECT_EQ(stats.num_actions, 3u);
  // Sparsity: 3 / (2 * 2) = 75%.
  EXPECT_NEAR(stats.sparsity_percent, 75.0, 1e-9);
}

TEST(DatasetTest, EmptyStatsAreZero) {
  const DatasetStats stats = Dataset{}.Stats(FeedbackConfig{});
  EXPECT_EQ(stats.num_users, 0u);
  EXPECT_DOUBLE_EQ(stats.sparsity_percent, 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(DatasetTest, FilterUsersKeepsOnlyListed) {
  Dataset data({Play(1, 1, 100), Play(2, 1, 200), Play(3, 1, 300)});
  const Dataset filtered = data.FilterUsers({1, 3});
  EXPECT_EQ(filtered.size(), 2u);
  for (const UserAction& a : filtered.actions()) {
    EXPECT_NE(a.user, 2u);
  }
}

TEST(DatasetTest, FilterGroupUsesGrouper) {
  DemographicGrouper grouper;
  UserProfile profile;
  profile.registered = true;
  profile.gender = Gender::kMale;
  profile.age = AgeBucket::k18To24;
  grouper.RegisterProfile(1, profile);
  const GroupId group = DemographicGrouper::GroupFor(profile);

  Dataset data({Play(1, 1, 100), Play(2, 1, 200)});
  const Dataset in_group = data.FilterGroup(grouper, group);
  EXPECT_EQ(in_group.size(), 1u);
  EXPECT_EQ(in_group.actions()[0].user, 1u);
  const Dataset global = data.FilterGroup(grouper, kGlobalGroup);
  EXPECT_EQ(global.size(), 1u);
  EXPECT_EQ(global.actions()[0].user, 2u);
}

TEST(DatasetTest, FilterEngagedDropsImpressions) {
  Dataset data({Play(1, 1, 100), Impress(1, 2, 200)});
  EXPECT_EQ(data.FilterEngaged(FeedbackConfig{}).size(), 1u);
}

TEST(DatasetTest, UsersAndVideosSets) {
  Dataset data({Play(1, 10, 100), Play(2, 10, 200), Impress(3, 30, 300)});
  EXPECT_EQ(data.Users().size(), 2u);
  EXPECT_EQ(data.Videos().size(), 1u);
  EXPECT_TRUE(data.Users().contains(1));
  EXPECT_FALSE(data.Users().contains(3));  // Impress only.
}

}  // namespace
}  // namespace rtrec
