#include "demographic/demographic_filter.h"

#include <gtest/gtest.h>

#include <memory>

namespace rtrec {
namespace {

/// A scripted primary recommender for merge-behaviour tests.
class FakePrimary : public Recommender {
 public:
  explicit FakePrimary(std::vector<ScoredVideo> results)
      : results_(std::move(results)) {}

  StatusOr<std::vector<ScoredVideo>> Recommend(const RecRequest&) override {
    return results_;
  }
  void Observe(const UserAction& action) override {
    observed_.push_back(action);
  }
  std::string name() const override { return "fake"; }

  std::vector<UserAction> observed_;

 private:
  std::vector<ScoredVideo> results_;
};

std::vector<ScoredVideo> Videos(std::initializer_list<VideoId> ids) {
  std::vector<ScoredVideo> out;
  double score = 100.0;
  for (VideoId id : ids) out.push_back(ScoredVideo{id, score--});
  return out;
}

TEST(DemographicFilterMergeTest, BlendReservesHotSlots) {
  const auto merged = DemographicFilter::Merge(
      Videos({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}), Videos({101, 102, 103}), 10,
      0.2);
  ASSERT_EQ(merged.size(), 10u);
  // 8 primary + 2 hot.
  EXPECT_EQ(merged[7].video, 8u);
  EXPECT_EQ(merged[8].video, 101u);
  EXPECT_EQ(merged[9].video, 102u);
}

TEST(DemographicFilterMergeTest, DedupesAcrossSources) {
  const auto merged = DemographicFilter::Merge(
      Videos({1, 2, 3, 4}), Videos({2, 5}), 5, 0.4);
  std::set<VideoId> seen;
  for (const auto& v : merged) {
    EXPECT_TRUE(seen.insert(v.video).second) << "duplicate " << v.video;
  }
}

TEST(DemographicFilterMergeTest, ShortHotListFilledFromPrimary) {
  const auto merged = DemographicFilter::Merge(
      Videos({1, 2, 3, 4, 5, 6}), Videos({}), 5, 0.4);
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[4].video, 5u);  // Primary overflow fills hot slots.
}

TEST(DemographicFilterMergeTest, FullBlendIsAllHot) {
  const auto merged = DemographicFilter::Merge(
      Videos({1, 2}), Videos({10, 11, 12}), 3, 1.0);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].video, 10u);
}

TEST(DemographicFilterMergeTest, EmptyBothIsEmpty) {
  EXPECT_TRUE(DemographicFilter::Merge({}, {}, 5, 0.5).empty());
}

class DemographicFilterTest : public ::testing::Test {
 protected:
  DemographicFilterTest() {
    HotVideoTracker::Options tracker_options;
    tracker_options.top_k = 20;
    tracker_options.half_life_millis = 1.0 * kMillisPerDay;
    tracker_ = std::make_unique<HotVideoTracker>(tracker_options);
    grouper_ = std::make_unique<DemographicGrouper>();
    UserProfile profile;
    profile.registered = true;
    profile.gender = Gender::kMale;
    profile.age = AgeBucket::k18To24;
    grouper_->RegisterProfile(1, profile);
    group_ = DemographicGrouper::GroupFor(profile);
  }

  DemographicFilter MakeFilter(Recommender* primary,
                               DemographicFilter::Options options = {}) {
    return DemographicFilter(primary, tracker_.get(), grouper_.get(),
                             options);
  }

  std::unique_ptr<HotVideoTracker> tracker_;
  std::unique_ptr<DemographicGrouper> grouper_;
  GroupId group_ = 0;
};

TEST_F(DemographicFilterTest, ColdUserFallsBackToGroupHot) {
  FakePrimary primary({});  // MF produced nothing.
  tracker_->Record(group_, 55, 5.0, 0);
  tracker_->Record(group_, 56, 3.0, 0);
  DemographicFilter filter = MakeFilter(&primary);
  RecRequest request;
  request.user = 1;
  request.now = 0;
  auto recs = filter.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 2u);
  EXPECT_EQ((*recs)[0].video, 55u);
}

TEST_F(DemographicFilterTest, UnregisteredColdUserGetsGlobalHot) {
  FakePrimary primary({});
  tracker_->Record(kGlobalGroup, 77, 4.0, 0);
  DemographicFilter filter = MakeFilter(&primary);
  RecRequest request;
  request.user = 999;  // No profile -> global group.
  request.now = 0;
  auto recs = filter.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 1u);
  EXPECT_EQ((*recs)[0].video, 77u);
}

TEST_F(DemographicFilterTest, EmptyGroupFallsBackToGlobalHot) {
  FakePrimary primary({});
  tracker_->Record(kGlobalGroup, 88, 4.0, 0);  // Group has no traffic.
  DemographicFilter filter = MakeFilter(&primary);
  RecRequest request;
  request.user = 1;  // Registered, but group list empty.
  request.now = 0;
  auto recs = filter.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 1u);
  EXPECT_EQ((*recs)[0].video, 88u);
}

TEST_F(DemographicFilterTest, WarmUserKeepsPrimaryOrderWithHotTail) {
  FakePrimary primary(Videos({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  tracker_->Record(group_, 55, 5.0, 0);
  DemographicFilter::Options options;
  options.blend_ratio = 0.2;
  options.top_n = 10;
  DemographicFilter filter = MakeFilter(&primary, options);
  RecRequest request;
  request.user = 1;
  request.now = 0;
  auto recs = filter.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 10u);
  EXPECT_EQ((*recs)[0].video, 1u);
  EXPECT_EQ((*recs)[8].video, 55u);  // Hot video injected.
}

TEST_F(DemographicFilterTest, ObserveFeedsPrimaryAndTrackers) {
  FakePrimary primary({});
  DemographicFilter filter = MakeFilter(&primary);
  UserAction action;
  action.user = 1;
  action.video = 10;
  action.type = ActionType::kPlay;
  action.time = 0;
  filter.Observe(action);
  EXPECT_EQ(primary.observed_.size(), 1u);
  EXPECT_FALSE(tracker_->Hottest(group_, 10, 0).empty());
  EXPECT_FALSE(tracker_->Hottest(kGlobalGroup, 10, 0).empty());
}

TEST_F(DemographicFilterTest, ImpressionsDoNotHeatVideos) {
  FakePrimary primary({});
  DemographicFilter filter = MakeFilter(&primary);
  UserAction action;
  action.user = 1;
  action.video = 10;
  action.type = ActionType::kImpress;
  action.time = 0;
  filter.Observe(action);
  EXPECT_TRUE(tracker_->Hottest(kGlobalGroup, 10, 0).empty());
  // Primary still sees it (it does its own filtering).
  EXPECT_EQ(primary.observed_.size(), 1u);
}

}  // namespace
}  // namespace rtrec
