#include "demographic/demographic_topology.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/recommender.h"
#include "demographic/group_checkpoint.h"
#include "stream/topology.h"

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;
  a.time = t;
  return a;
}

class DemographicTopologyTest : public ::testing::Test {
 protected:
  DemographicTopologyTest() {
    // Users 1-5: male 18-24 (group A); 11-15: female 35-49 (group B);
    // user 100 unregistered (global).
    UserProfile male;
    male.registered = true;
    male.gender = Gender::kMale;
    male.age = AgeBucket::k18To24;
    for (UserId u = 1; u <= 5; ++u) grouper_.RegisterProfile(u, male);
    group_a_ = DemographicGrouper::GroupFor(male);

    UserProfile female;
    female.registered = true;
    female.gender = Gender::kFemale;
    female.age = AgeBucket::k35To49;
    for (UserId u = 11; u <= 15; ++u) grouper_.RegisterProfile(u, female);
    group_b_ = DemographicGrouper::GroupFor(female);

    GroupStoreRegistry::Options options;
    options.num_factors = 8;
    registry_ = std::make_unique<GroupStoreRegistry>(options);
  }

  DemographicPipelineDeps Deps() {
    DemographicPipelineDeps deps;
    deps.stores = registry_.get();
    deps.grouper = &grouper_;
    deps.type_resolver = [](VideoId) -> VideoType { return 0; };
    deps.model_config.num_factors = 8;
    return deps;
  }

  void RunPipeline(std::vector<UserAction> actions,
                   PipelineParallelism parallelism = {}) {
    auto source =
        std::make_shared<VectorActionSource>(std::move(actions));
    auto spec = BuildDemographicTopology(source, Deps(), parallelism);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    auto topo = stream::Topology::Create(std::move(spec).value());
    ASSERT_TRUE(topo.ok()) << topo.status().ToString();
    ASSERT_TRUE((*topo)->Start().ok());
    ASSERT_TRUE((*topo)->Join().ok());
  }

  DemographicGrouper grouper_;
  std::unique_ptr<GroupStoreRegistry> registry_;
  GroupId group_a_ = 0;
  GroupId group_b_ = 0;
};

TEST(GroupStoreRegistryTest, LazyCreationAndStableIdentity) {
  GroupStoreRegistry registry;
  EXPECT_EQ(registry.Find(3), nullptr);
  GroupStores& stores = registry.GetOrCreate(3);
  EXPECT_EQ(&registry.GetOrCreate(3), &stores);
  EXPECT_EQ(registry.Find(3), &stores);
  EXPECT_EQ(registry.ActiveGroups().size(), 1u);
  ASSERT_NE(stores.factors, nullptr);
  ASSERT_NE(stores.history, nullptr);
  ASSERT_NE(stores.sim_table, nullptr);
}

TEST(GroupStoreRegistryTest, GroupsGetIndependentInitStreams) {
  GroupStoreRegistry registry;
  FactorEntry a = registry.GetOrCreate(1).factors->GetOrInitVideo(42);
  FactorEntry b = registry.GetOrCreate(2).factors->GetOrInitVideo(42);
  EXPECT_NE(a.vec, b.vec);  // Independent per-group models.
}

TEST_F(DemographicTopologyTest, ValidatesDeps) {
  auto source = std::make_shared<VectorActionSource>(
      std::vector<UserAction>{});
  DemographicPipelineDeps bad = Deps();
  bad.grouper = nullptr;
  EXPECT_FALSE(BuildDemographicTopology(source, bad).ok());

  DemographicPipelineDeps mismatched = Deps();
  mismatched.model_config.num_factors = 16;  // Registry is f = 8.
  EXPECT_FALSE(BuildDemographicTopology(source, mismatched).ok());
}

TEST_F(DemographicTopologyTest, ActionsPartitionByGroup) {
  std::vector<UserAction> actions;
  for (int round = 0; round < 20; ++round) {
    for (UserId u = 1; u <= 5; ++u) {
      actions.push_back(Play(u, 10, round * 1000 + u));
    }
    for (UserId u = 11; u <= 15; ++u) {
      actions.push_back(Play(u, 20, round * 1000 + u));
    }
    actions.push_back(Play(100, 30, round * 1000 + 100));
  }
  RunPipeline(std::move(actions));

  GroupStores* a = registry_->Find(group_a_);
  GroupStores* b = registry_->Find(group_b_);
  GroupStores* global = registry_->Find(kGlobalGroup);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(global, nullptr);

  // Group A saw only video 10, group B only 20, global only 30.
  EXPECT_TRUE(a->factors->GetVideo(10).ok());
  EXPECT_TRUE(a->factors->GetVideo(20).status().IsNotFound());
  EXPECT_TRUE(b->factors->GetVideo(20).ok());
  EXPECT_TRUE(b->factors->GetVideo(10).status().IsNotFound());
  EXPECT_TRUE(global->factors->GetVideo(30).ok());
  EXPECT_EQ(a->factors->NumUsers(), 5u);
  EXPECT_EQ(b->factors->NumUsers(), 5u);
  EXPECT_EQ(global->factors->NumUsers(), 1u);
}

TEST_F(DemographicTopologyTest, SimilarityTablesStayWithinGroups) {
  std::vector<UserAction> actions;
  for (int round = 0; round < 25; ++round) {
    for (UserId u = 1; u <= 5; ++u) {  // Group A co-watches 10 and 11.
      actions.push_back(Play(u, 10, round * 1000 + u * 10));
      actions.push_back(Play(u, 11, round * 1000 + u * 10 + 5));
    }
    for (UserId u = 11; u <= 15; ++u) {  // Group B co-watches 20 and 21.
      actions.push_back(Play(u, 20, round * 1000 + u * 10));
      actions.push_back(Play(u, 21, round * 1000 + u * 10 + 5));
    }
  }
  const Timestamp now = 26000;
  RunPipeline(std::move(actions));

  GroupStores* a = registry_->Find(group_a_);
  GroupStores* b = registry_->Find(group_b_);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GT(a->sim_table->GetDecayedSimilarity(10, 11, now), 0.0);
  EXPECT_DOUBLE_EQ(a->sim_table->GetDecayedSimilarity(20, 21, now), 0.0);
  EXPECT_GT(b->sim_table->GetDecayedSimilarity(20, 21, now), 0.0);
  EXPECT_DOUBLE_EQ(b->sim_table->GetDecayedSimilarity(10, 11, now), 0.0);
}

TEST_F(DemographicTopologyTest, ParallelismPreservesPerGroupCounts) {
  std::vector<UserAction> actions;
  for (int round = 0; round < 30; ++round) {
    for (UserId u = 1; u <= 5; ++u) {
      actions.push_back(
          Play(u, static_cast<VideoId>(u % 3 + 1), round * 1000 + u));
    }
    for (UserId u = 11; u <= 15; ++u) {
      actions.push_back(
          Play(u, static_cast<VideoId>(u % 3 + 10), round * 1000 + u));
    }
  }
  const std::size_t total = actions.size();
  PipelineParallelism wide;
  wide.spout = 2;
  wide.compute_mf = 4;
  wide.mf_storage = 4;
  wide.user_history = 3;
  wide.get_item_pairs = 3;
  wide.item_pair_sim = 3;
  wide.result_storage = 3;
  RunPipeline(std::move(actions), wide);

  GroupStores* a = registry_->Find(group_a_);
  GroupStores* b = registry_->Find(group_b_);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Every action trained its group's model exactly once.
  EXPECT_EQ(a->factors->RatingCount() + b->factors->RatingCount(), total);
  EXPECT_EQ(a->factors->RatingCount(), total / 2);
}

TEST_F(DemographicTopologyTest, GroupServerServesFromGroupStores) {
  std::vector<UserAction> actions;
  for (int round = 0; round < 25; ++round) {
    for (UserId u = 1; u <= 5; ++u) {
      actions.push_back(Play(u, 10, round * 1000 + u * 10));
      actions.push_back(Play(u, 11, round * 1000 + u * 10 + 5));
    }
  }
  RunPipeline(std::move(actions));

  GroupStores* a = registry_->Find(group_a_);
  ASSERT_NE(a, nullptr);
  MfModelConfig model_config;
  model_config.num_factors = 8;
  GroupServer server(a, model_config);
  RecRequest request;
  request.user = 3;
  request.seed_videos = {10};
  request.now = 26000;
  auto recs = server.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].video, 11u);
}

TEST_F(DemographicTopologyTest, GroupCheckpointRoundTrip) {
  std::vector<UserAction> actions;
  for (int round = 0; round < 15; ++round) {
    for (UserId u = 1; u <= 5; ++u) {
      actions.push_back(Play(u, 10, round * 1000 + u * 10));
      actions.push_back(Play(u, 11, round * 1000 + u * 10 + 5));
    }
    actions.push_back(Play(11, 20, round * 1000 + 500));
    actions.push_back(Play(100, 30, round * 1000 + 600));  // Global.
  }
  RunPipeline(std::move(actions));

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("rtrec_group_ckpt_" + std::to_string(::getpid())))
          .string();
  ASSERT_TRUE(SaveGroupCheckpoint(dir, *registry_).ok());

  GroupStoreRegistry::Options options;
  options.num_factors = 8;
  GroupStoreRegistry restored(options);
  ASSERT_TRUE(LoadGroupCheckpoint(dir, restored).ok());

  // All three groups (A, B, global) came back with their state.
  EXPECT_EQ(restored.ActiveGroups().size(),
            registry_->ActiveGroups().size());
  const GroupStores* a = restored.Find(group_a_);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->factors->NumUsers(), 5u);
  EXPECT_GT(a->sim_table->GetDecayedSimilarity(10, 11, 16000), 0.0);
  const GroupStores* global = restored.Find(kGlobalGroup);
  ASSERT_NE(global, nullptr);
  EXPECT_TRUE(global->factors->GetVideo(30).ok());

  // Serving from the restored registry matches the original.
  MfModelConfig model_config;
  model_config.num_factors = 8;
  GroupServer original(registry_->Find(group_a_), model_config);
  GroupServer revived(restored.Find(group_a_), model_config);
  RecRequest request;
  request.user = 2;
  request.seed_videos = {10};
  request.now = 16000;
  auto before = original.Recommend(request);
  auto after = revived.Recommend(request);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);

  std::filesystem::remove_all(dir);
}

TEST_F(DemographicTopologyTest, LoadGroupCheckpointMissingDirIsNotFound) {
  GroupStoreRegistry::Options options;
  options.num_factors = 8;
  GroupStoreRegistry registry(options);
  EXPECT_TRUE(
      LoadGroupCheckpoint("/nonexistent/ckpts", registry).IsNotFound());
}

TEST_F(DemographicTopologyTest, ServingFromGroupStores) {
  std::vector<UserAction> actions;
  for (int round = 0; round < 25; ++round) {
    for (UserId u = 1; u <= 5; ++u) {
      actions.push_back(Play(u, 10, round * 1000 + u * 10));
      actions.push_back(Play(u, 11, round * 1000 + u * 10 + 5));
    }
  }
  RunPipeline(std::move(actions));

  GroupStores* a = registry_->Find(group_a_);
  ASSERT_NE(a, nullptr);
  MfModelConfig model_config;
  model_config.num_factors = 8;
  OnlineMf model(a->factors.get(), model_config);
  MfRecommender recommender(&model, a->history.get(), a->sim_table.get(),
                            nullptr, RecommendConfig{});
  RecRequest request;
  request.user = 2;  // Group A member.
  request.seed_videos = {10};
  request.now = 26000;
  auto recs = recommender.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].video, 11u);
}

}  // namespace
}  // namespace rtrec
