#include "demographic/demographic_trainer.h"

#include <gtest/gtest.h>

#include <memory>

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;
  a.time = t;
  return a;
}

class DemographicTrainerTest : public ::testing::Test {
 protected:
  DemographicTrainerTest() {
    grouper_ = std::make_unique<DemographicGrouper>();
    // Users 1-5: male 18-24; users 11-15: female 35-49; user 100
    // unregistered.
    UserProfile male;
    male.registered = true;
    male.gender = Gender::kMale;
    male.age = AgeBucket::k18To24;
    for (UserId u = 1; u <= 5; ++u) grouper_->RegisterProfile(u, male);
    male_group_ = DemographicGrouper::GroupFor(male);

    UserProfile female;
    female.registered = true;
    female.gender = Gender::kFemale;
    female.age = AgeBucket::k35To49;
    for (UserId u = 11; u <= 15; ++u) grouper_->RegisterProfile(u, female);
    female_group_ = DemographicGrouper::GroupFor(female);

    DemographicTrainer::Options options;
    options.engine.model.num_factors = 8;
    trainer_ = std::make_unique<DemographicTrainer>(
        grouper_.get(), [](VideoId) -> VideoType { return 0; }, options);
  }

  std::unique_ptr<DemographicGrouper> grouper_;
  std::unique_ptr<DemographicTrainer> trainer_;
  GroupId male_group_ = 0;
  GroupId female_group_ = 0;
};

TEST_F(DemographicTrainerTest, EnginesCreatedLazilyPerGroup) {
  EXPECT_TRUE(trainer_->ActiveGroups().empty());
  trainer_->Observe(Play(1, 10, 100));
  EXPECT_EQ(trainer_->ActiveGroups().size(), 1u);
  EXPECT_NE(trainer_->GetEngine(male_group_), nullptr);
  EXPECT_EQ(trainer_->GetEngine(female_group_), nullptr);
}

TEST_F(DemographicTrainerTest, ActionsRoutedToOwnGroupOnly) {
  trainer_->Observe(Play(1, 10, 100));   // Male group.
  trainer_->Observe(Play(11, 20, 100));  // Female group.
  RecEngine* male = trainer_->GetEngine(male_group_);
  RecEngine* female = trainer_->GetEngine(female_group_);
  ASSERT_NE(male, nullptr);
  ASSERT_NE(female, nullptr);
  EXPECT_EQ(male->factors().NumVideos(), 1u);
  EXPECT_TRUE(male->factors().GetVideo(20).status().IsNotFound());
  EXPECT_TRUE(female->factors().GetVideo(10).status().IsNotFound());
}

TEST_F(DemographicTrainerTest, GlobalEngineSeesEverything) {
  trainer_->Observe(Play(1, 10, 100));
  trainer_->Observe(Play(11, 20, 100));
  trainer_->Observe(Play(100, 30, 100));  // Unregistered.
  RecEngine* global = trainer_->GetEngine(kGlobalGroup);
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global->factors().NumVideos(), 3u);
}

TEST_F(DemographicTrainerTest, UnregisteredUsersOnlyTrainGlobal) {
  trainer_->Observe(Play(100, 30, 100));
  EXPECT_TRUE(trainer_->ActiveGroups().empty());
  EXPECT_EQ(trainer_->GetEngine(kGlobalGroup)->factors().NumUsers(), 1u);
}

TEST_F(DemographicTrainerTest, RecommendServesFromGroupEngine) {
  Timestamp t = 0;
  for (int round = 0; round < 30; ++round) {
    for (UserId u = 1; u <= 5; ++u) {
      trainer_->Observe(Play(u, 10, t += 100));
      trainer_->Observe(Play(u, 11, t += 100));
    }
  }
  RecRequest request;
  request.user = 1;
  request.seed_videos = {10};
  request.now = t;
  auto recs = trainer_->Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].video, 11u);
}

TEST_F(DemographicTrainerTest, UnregisteredUserServedByGlobal) {
  Timestamp t = 0;
  for (int round = 0; round < 30; ++round) {
    trainer_->Observe(Play(100, 30, t += 100));
    trainer_->Observe(Play(100, 31, t += 100));
    trainer_->Observe(Play(101, 30, t += 100));
    trainer_->Observe(Play(101, 31, t += 100));
  }
  RecRequest request;
  request.user = 102;  // Unregistered, unknown — via global engine.
  request.seed_videos = {30};
  request.now = t;
  auto recs = trainer_->Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].video, 31u);
}

TEST_F(DemographicTrainerTest, FallsBackToGlobalWhenGroupEmptyHanded) {
  // User 2's group engine exists but has never seen video 30; the global
  // engine (trained on the unregistered traffic) can still serve.
  Timestamp t = 0;
  trainer_->Observe(Play(1, 99, t += 100));  // Creates male group engine.
  for (int round = 0; round < 30; ++round) {
    trainer_->Observe(Play(100, 30, t += 100));
    trainer_->Observe(Play(100, 31, t += 100));
  }
  RecRequest request;
  request.user = 2;  // Male group.
  request.seed_videos = {30};
  request.now = t;
  auto recs = trainer_->Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
}

TEST_F(DemographicTrainerTest, TrainGlobalOffSkipsGlobalEngine) {
  DemographicTrainer::Options options;
  options.engine.model.num_factors = 8;
  options.train_global = false;
  DemographicTrainer trainer(grouper_.get(),
                             [](VideoId) -> VideoType { return 0; },
                             options);
  trainer.Observe(Play(1, 10, 100));
  EXPECT_EQ(trainer.GetEngine(kGlobalGroup), nullptr);
  // Unregistered request with no group engine: empty but OK.
  RecRequest request;
  request.user = 100;
  request.now = 200;
  auto recs = trainer.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());
}

}  // namespace
}  // namespace rtrec
