#include "core/engine.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;
  a.time = t;
  return a;
}

RecEngine::Options SmallOptions() {
  RecEngine::Options options;
  options.model.num_factors = 8;
  return options;
}

VideoTypeResolver OneType() {
  return [](VideoId) -> VideoType { return 0; };
}

TEST(RecEngineTest, ObserveUpdatesAllStores) {
  RecEngine engine(OneType(), SmallOptions());
  engine.Observe(Play(1, 10, 100));
  engine.Observe(Play(1, 11, 200));
  EXPECT_EQ(engine.factors().NumUsers(), 1u);
  EXPECT_EQ(engine.factors().NumVideos(), 2u);
  EXPECT_EQ(engine.history().Get(1).size(), 2u);
  EXPECT_GT(engine.sim_table().GetDecayedSimilarity(10, 11, 200), 0.0);
}

TEST(RecEngineTest, ImpressionsLeaveNoTrace) {
  RecEngine engine(OneType(), SmallOptions());
  UserAction a;
  a.user = 1;
  a.video = 10;
  a.type = ActionType::kImpress;
  a.time = 100;
  engine.Observe(a);
  EXPECT_EQ(engine.factors().NumUsers(), 0u);
  EXPECT_TRUE(engine.history().Get(1).empty());
}

TEST(RecEngineTest, NameIsRmf) {
  RecEngine engine(OneType(), SmallOptions());
  EXPECT_EQ(engine.name(), "rMF");
}

TEST(RecEngineTest, UpdateVisibleToNextRequestImmediately) {
  // The core real-time property: an action at time t influences a request
  // at time t+1 with no retraining step in between.
  RecEngine engine(OneType(), SmallOptions());
  for (UserId u = 1; u <= 6; ++u) {
    engine.Observe(Play(u, 100, 1000));
    engine.Observe(Play(u, 101, 2000));
  }
  RecRequest request;
  request.user = 50;
  request.seed_videos = {100};
  request.now = 2000;
  auto recs = engine.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].video, 101u);
}

TEST(RecEngineTest, ConcurrentObserveAndRecommendIsSafe) {
  RecEngine engine(OneType(), SmallOptions());
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  // Writers.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&engine, t] {
      for (int i = 0; i < 2000; ++i) {
        engine.Observe(Play(static_cast<UserId>(t * 100 + i % 50),
                            static_cast<VideoId>(i % 40 + 1), i));
      }
    });
  }
  // Readers.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&engine, &stop] {
      RecRequest request;
      request.seed_videos = {1};
      while (!stop.load()) {
        request.user = 1;
        request.now = 100000;
        auto recs = engine.Recommend(request);
        ASSERT_TRUE(recs.ok());
      }
    });
  }
  for (int t = 0; t < 3; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true);
  threads[3].join();
  threads[4].join();
  EXPECT_GT(engine.factors().NumVideos(), 0u);
}

TEST(RecEngineTest, AccessorsExposeSharedState) {
  RecEngine engine(OneType(), SmallOptions());
  engine.Observe(Play(1, 10, 100));
  // Mutating through an accessor is visible through another.
  EXPECT_EQ(&engine.model().store(), &engine.factors());
  EXPECT_EQ(engine.options().model.num_factors, 8);
}

}  // namespace
}  // namespace rtrec
