#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rtrec {
namespace {

TEST(PercentileRankTest, EndpointsAndSingleton) {
  EXPECT_DOUBLE_EQ(PercentileRank(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(PercentileRank(9, 10), 1.0);
  EXPECT_DOUBLE_EQ(PercentileRank(0, 1), 0.0);
  EXPECT_NEAR(PercentileRank(5, 11), 0.5, 1e-12);
}

TEST(RecallAtNTest, PerfectHitInTop1) {
  std::vector<UserEvalData> users = {{1, {10, 11, 12}, {10}}};
  EXPECT_DOUBLE_EQ(RecallAtN(users, 1), 1.0);
}

TEST(RecallAtNTest, Eq13DividesByN) {
  // One liked video, found within top-5: recall@5 = 1/5 per Eq. 13.
  std::vector<UserEvalData> users = {{1, {1, 2, 3, 4, 10}, {10}}};
  EXPECT_DOUBLE_EQ(RecallAtN(users, 5), 0.2);
  // Two liked, both in top-5: 2/5.
  users = {{1, {1, 10, 3, 11, 5}, {10, 11}}};
  EXPECT_DOUBLE_EQ(RecallAtN(users, 5), 0.4);
}

TEST(RecallAtNTest, MissesScoreZero) {
  std::vector<UserEvalData> users = {{1, {1, 2, 3}, {99}}};
  EXPECT_DOUBLE_EQ(RecallAtN(users, 3), 0.0);
}

TEST(RecallAtNTest, CutoffExcludesDeepHits) {
  std::vector<UserEvalData> users = {{1, {1, 2, 3, 10}, {10}}};
  EXPECT_DOUBLE_EQ(RecallAtN(users, 3), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtN(users, 4), 0.25);
}

TEST(RecallAtNTest, AveragesOverUsersWithLikes) {
  std::vector<UserEvalData> users = {
      {1, {10}, {10}},  // Hit: 1/1.
      {2, {20}, {99}},  // Miss: 0.
      {3, {}, {}},      // No likes: excluded from U_test.
  };
  EXPECT_DOUBLE_EQ(RecallAtN(users, 1), 0.5);
}

TEST(RecallAtNTest, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(RecallAtN({}, 5), 0.0);
  std::vector<UserEvalData> users = {{1, {}, {}}};
  EXPECT_DOUBLE_EQ(RecallAtN(users, 5), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtN({{1, {1}, {1}}}, 0), 0.0);
}

TEST(RecallCurveTest, MatchesPointwiseRecall) {
  std::vector<UserEvalData> users = {{1, {1, 10, 3}, {10}}};
  const auto curve = RecallCurve(users, 3);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0], RecallAtN(users, 1));
  EXPECT_DOUBLE_EQ(curve[1], RecallAtN(users, 2));
  EXPECT_DOUBLE_EQ(curve[2], RecallAtN(users, 3));
}

TEST(HitRateAtNTest, NormalizesByAchievable) {
  // One liked video found in top-5: conventional recall = 1/1, not 1/5.
  std::vector<UserEvalData> users = {{1, {1, 2, 3, 4, 10}, {10}}};
  EXPECT_DOUBLE_EQ(HitRateAtN(users, 5), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtN(users, 5), 0.2);  // Eq. 13 divides by N.
}

TEST(HitRateAtNTest, ManyLikesCappedByN) {
  // 4 liked, top-2 contains 2 of them: 2 / min(4, 2) = 1.0.
  std::vector<UserEvalData> users = {{1, {10, 11}, {10, 11, 12, 13}}};
  EXPECT_DOUBLE_EQ(HitRateAtN(users, 2), 1.0);
  // At N=4, 2 / min(4,4) = 0.5.
  EXPECT_DOUBLE_EQ(HitRateAtN(users, 4), 0.5);
}

TEST(HitRateAtNTest, EmptyInputsZero) {
  EXPECT_DOUBLE_EQ(HitRateAtN({}, 5), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtN({{1, {1}, {1}}}, 0), 0.0);
}

TEST(NdcgAtNTest, PerfectRankingIsOne) {
  std::vector<UserEvalData> users = {{1, {10, 11, 12}, {10, 11, 12}}};
  EXPECT_NEAR(NdcgAtN(users, 3), 1.0, 1e-12);
}

TEST(NdcgAtNTest, PositionDiscountPenalizesLateHits) {
  // Single liked video at position 0 vs position 2 of the rec list.
  std::vector<UserEvalData> early = {{1, {10, 1, 2}, {10}}};
  std::vector<UserEvalData> late = {{1, {1, 2, 10}, {10}}};
  EXPECT_NEAR(NdcgAtN(early, 3), 1.0, 1e-12);
  EXPECT_NEAR(NdcgAtN(late, 3), 1.0 / std::log2(4.0), 1e-12);
  EXPECT_GT(NdcgAtN(early, 3), NdcgAtN(late, 3));
}

TEST(NdcgAtNTest, MissesScoreZero) {
  std::vector<UserEvalData> users = {{1, {1, 2, 3}, {99}}};
  EXPECT_DOUBLE_EQ(NdcgAtN(users, 3), 0.0);
}

TEST(NdcgAtNTest, AveragesOverUsersWithLikes) {
  std::vector<UserEvalData> users = {
      {1, {10}, {10}},  // nDCG 1.
      {2, {1}, {99}},   // nDCG 0.
      {3, {}, {}},      // Excluded.
  };
  EXPECT_DOUBLE_EQ(NdcgAtN(users, 1), 0.5);
}

TEST(AverageRankTest, TopRecommendationMatchingTopInterest) {
  // Video 10 is top of both lists: rank^t = 0, weight 1 - 0 = 1 -> 0.
  std::vector<UserEvalData> users = {{1, {10, 11, 12}, {10, 13, 14}}};
  EXPECT_DOUBLE_EQ(AverageRank(users), 0.0);
}

TEST(AverageRankTest, BottomInterestMatchingTopRecommendation) {
  // Video 14 is last in the liked list (rank^t = 1) and first in recs
  // (weight 1): rank = 1. Bad model.
  std::vector<UserEvalData> users = {{1, {14, 1, 2}, {10, 13, 14}}};
  EXPECT_DOUBLE_EQ(AverageRank(users), 1.0);
}

TEST(AverageRankTest, NonRecommendedVideosHaveNoWeight) {
  // Only video 10 is both liked and recommended; 99 is liked but absent
  // (weight 0) — the metric is decided by 10 alone.
  std::vector<UserEvalData> users = {{1, {10}, {10, 99}}};
  EXPECT_DOUBLE_EQ(AverageRank(users), 0.0);
}

TEST(AverageRankTest, NoOverlapIsNeutral) {
  std::vector<UserEvalData> users = {{1, {1, 2}, {98, 99}}};
  EXPECT_DOUBLE_EQ(AverageRank(users), 0.5);
  EXPECT_DOUBLE_EQ(AverageRank({}), 0.5);
}

TEST(AverageRankTest, WeightsByRecommendationPosition) {
  // Two liked videos: 10 at rec position 0 (weight 1, rank^t 0) and 11 at
  // rec position 2 of 3 (weight 1-1=0... position 2 -> rank_ui=1, weight
  // 0). So only 10 counts.
  std::vector<UserEvalData> users = {{1, {10, 5, 11}, {10, 11}}};
  EXPECT_DOUBLE_EQ(AverageRank(users), 0.0);

  // Flip: liked order {11, 10}: 10 has rank^t = 1 now.
  users = {{1, {10, 5, 11}, {11, 10}}};
  EXPECT_DOUBLE_EQ(AverageRank(users), 1.0);
}

TEST(AverageRankTest, BetterModelScoresLower) {
  // Model A ranks the liked list's top first; model B inverts it.
  std::vector<UserEvalData> good = {{1, {10, 11, 12}, {10, 11, 12}}};
  std::vector<UserEvalData> bad = {{1, {12, 11, 10}, {10, 11, 12}}};
  EXPECT_LT(AverageRank(good), AverageRank(bad));
}

}  // namespace
}  // namespace rtrec
