#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "eval/experiment_runner.h"

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;
  a.time = t;
  return a;
}

/// A recommender whose RetrainBatch calls are observable.
class BatchProbe : public Recommender {
 public:
  StatusOr<std::vector<ScoredVideo>> Recommend(const RecRequest&) override {
    return std::vector<ScoredVideo>{};
  }
  void Observe(const UserAction&) override { ++observed; }
  void RetrainBatch(Timestamp) override { ++retrains; }
  std::string name() const override { return "probe"; }

  int observed = 0;
  int retrains = 0;
};

TEST(OfflineEvaluatorTest, TrainStreamsAndRetrainsDaily) {
  BatchProbe probe;
  std::vector<UserAction> actions;
  // Three days of data.
  for (int day = 0; day < 3; ++day) {
    for (int i = 0; i < 10; ++i) {
      actions.push_back(
          Play(1, 1, day * kMillisPerDay + i * 1000));
    }
  }
  OfflineEvaluator evaluator;
  evaluator.Train(probe, Dataset(std::move(actions)));
  EXPECT_EQ(probe.observed, 30);
  EXPECT_EQ(probe.retrains, 3);  // One per day boundary + final.
}

TEST(OfflineEvaluatorTest, RetrainDailyCanBeDisabled) {
  BatchProbe probe;
  OfflineEvaluator::Options options;
  options.retrain_daily = false;
  OfflineEvaluator evaluator(options);
  evaluator.Train(probe,
                  Dataset({Play(1, 1, 0), Play(1, 1, 2 * kMillisPerDay)}));
  EXPECT_EQ(probe.retrains, 0);
}

TEST(OfflineEvaluatorTest, CollectBuildsOrderedLikedLists) {
  BatchProbe probe;
  std::vector<UserAction> test;
  // User 1: video 10 fully watched (weight 2.5), video 11 watched at 60%
  // (weight ~2.3): liked order should be {10, 11}.
  test.push_back(Play(1, 10, 100));
  UserAction partial = Play(1, 11, 200);
  partial.view_fraction = 0.6;
  test.push_back(partial);
  OfflineEvaluator evaluator;
  const auto data = evaluator.CollectEvalData(probe, Dataset(test));
  ASSERT_EQ(data.size(), 1u);
  ASSERT_EQ(data[0].liked.size(), 2u);
  EXPECT_EQ(data[0].liked[0], 10u);
  EXPECT_EQ(data[0].liked[1], 11u);
}

TEST(OfflineEvaluatorTest, LikeThresholdFiltersWeakActions) {
  BatchProbe probe;
  OfflineEvaluator::Options options;
  options.like_threshold = 2.4;  // Only near-full watches count.
  OfflineEvaluator evaluator(options);
  std::vector<UserAction> test;
  test.push_back(Play(1, 10, 100));  // weight 2.5 -> liked.
  UserAction partial = Play(1, 11, 200);
  partial.view_fraction = 0.2;       // weight ~1.8 -> not liked.
  test.push_back(partial);
  const auto data = evaluator.CollectEvalData(probe, Dataset(test));
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0].liked.size(), 1u);
}

TEST(OfflineEvaluatorTest, EndToEndOnTinyWorld) {
  const SyntheticWorld world(SmallWorldConfig(31));
  const Dataset all(world.GenerateDays(0, 3));
  const auto [train, test] = all.SplitAtTime(2 * kMillisPerDay);
  ASSERT_FALSE(train.empty());
  ASSERT_FALSE(test.empty());

  RecEngine engine(world.TypeResolver(),
                   DefaultEngineOptions(UpdatePolicy::kCombine));
  OfflineEvaluator evaluator;
  const OfflineResult result = evaluator.Evaluate(engine, train, test);
  EXPECT_EQ(result.model_name, "rMF");
  EXPECT_GT(result.users_evaluated, 10u);
  ASSERT_EQ(result.recall_at.size(), 10u);
  // recall@N grows with N (weakly) under Eq. 13 only when hits
  // accumulate faster than 1/N; assert the basic sanity bounds instead.
  for (double r : result.recall_at) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  EXPECT_GE(result.avg_rank, 0.0);
  EXPECT_LE(result.avg_rank, 1.0);
  // The trained model should beat a no-op model on recall@10.
  BatchProbe empty_model;
  const OfflineResult empty_result =
      OfflineEvaluator().Evaluate(empty_model, train, test);
  EXPECT_GT(result.recall(10), empty_result.recall(10));
}

TEST(OfflineResultTest, RecallAccessorBounds) {
  OfflineResult result;
  result.recall_at = {0.1, 0.2};
  EXPECT_DOUBLE_EQ(result.recall(1), 0.1);
  EXPECT_DOUBLE_EQ(result.recall(2), 0.2);
  EXPECT_DOUBLE_EQ(result.recall(3), 0.0);
  EXPECT_DOUBLE_EQ(result.recall(0), 0.0);
}

TEST(ExperimentRunnerTest, LargestGroupsOrderedBySize) {
  DemographicGrouper grouper;
  UserProfile a;
  a.registered = true;
  a.gender = Gender::kMale;
  a.age = AgeBucket::k18To24;
  UserProfile b = a;
  b.gender = Gender::kFemale;
  grouper.RegisterProfile(1, a);
  grouper.RegisterProfile(2, a);
  grouper.RegisterProfile(3, b);

  std::vector<UserAction> actions;
  for (int i = 0; i < 5; ++i) actions.push_back(Play(1, 1, i));
  for (int i = 0; i < 5; ++i) actions.push_back(Play(2, 1, i));
  for (int i = 0; i < 3; ++i) actions.push_back(Play(3, 1, i));
  actions.push_back(Play(99, 1, 0));  // Unregistered: ignored.

  const auto groups = LargestGroups(Dataset(std::move(actions)), grouper, 5,
                                    FeedbackConfig{});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], DemographicGrouper::GroupFor(a));
  EXPECT_EQ(groups[1], DemographicGrouper::GroupFor(b));
}

TEST(ExperimentRunnerTest, TablePrinterAlignsColumns) {
  TablePrinter table({"model", "recall"});
  table.AddRow({"rMF", Cell(0.1234)});
  table.AddRow({"Hot", Cell(0.05, 2)});
  std::ostringstream out;
  table.Print(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("model"), std::string::npos);
  EXPECT_NE(rendered.find("0.1234"), std::string::npos);
  EXPECT_NE(rendered.find("0.05"), std::string::npos);
  // Header separator exists.
  EXPECT_NE(rendered.find("|--"), std::string::npos);
}

}  // namespace
}  // namespace rtrec
