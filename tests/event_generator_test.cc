#include "data/event_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <tuple>
#include <vector>

namespace rtrec {
namespace {

WorldConfig TinyWorld() {
  WorldConfig config;
  config.seed = 21;
  config.catalog.num_videos = 100;
  config.catalog.num_types = 5;
  config.catalog.num_genres = 4;
  config.population.num_users = 100;
  config.population.mean_activity = 2.0;
  return config;
}

TEST(SyntheticWorldTest, DeterministicDayGeneration) {
  const SyntheticWorld world(TinyWorld());
  const auto day_a = world.GenerateDay(0);
  const auto day_b = world.GenerateDay(0);
  ASSERT_EQ(day_a.size(), day_b.size());
  for (std::size_t i = 0; i < day_a.size(); ++i) {
    EXPECT_EQ(day_a[i], day_b[i]);
  }
}

TEST(SyntheticWorldTest, DifferentDaysDiffer) {
  const SyntheticWorld world(TinyWorld());
  const auto day0 = world.GenerateDay(0);
  const auto day1 = world.GenerateDay(1);
  ASSERT_FALSE(day0.empty());
  ASSERT_FALSE(day1.empty());
  EXPECT_NE(day0.size(), day1.size());  // Extremely unlikely to match.
}

TEST(SyntheticWorldTest, ActionsAreTimeOrderedAndInDay) {
  const SyntheticWorld world(TinyWorld());
  const auto day2 = world.GenerateDay(2);
  ASSERT_FALSE(day2.empty());
  Timestamp prev = 0;
  for (const UserAction& a : day2) {
    EXPECT_GE(a.time, prev);
    prev = a.time;
    EXPECT_GE(a.time, 2 * kMillisPerDay);
    // Sessions truncate at midnight; impressions overshoot by at most
    // one browse step, engaged actions by at most one watch duration.
    if (a.type == ActionType::kImpress) {
      EXPECT_LT(a.time, 3 * kMillisPerDay + 2 * kMillisPerMinute);
    } else {
      EXPECT_LT(a.time, 3 * kMillisPerDay + 2 * kMillisPerHour);
    }
  }
}

TEST(SyntheticWorldTest, IdsAreWithinWorldBounds) {
  const SyntheticWorld world(TinyWorld());
  for (const UserAction& a : world.GenerateDay(0)) {
    EXPECT_GE(a.user, 1u);
    EXPECT_LE(a.user, 100u);
    EXPECT_GE(a.video, 1u);
    EXPECT_LE(a.video, 100u);
  }
}

TEST(SyntheticWorldTest, FunnelShape) {
  // Impress >= Click >= PlayTime; every click has a play.
  const SyntheticWorld world(TinyWorld());
  std::map<ActionType, std::size_t> counts;
  for (const UserAction& a : world.GenerateDays(0, 3)) ++counts[a.type];
  EXPECT_GT(counts[ActionType::kImpress], counts[ActionType::kClick]);
  EXPECT_EQ(counts[ActionType::kClick], counts[ActionType::kPlay]);
  EXPECT_EQ(counts[ActionType::kPlay], counts[ActionType::kPlayTime]);
  EXPECT_GT(counts[ActionType::kClick], 0u);
  EXPECT_GE(counts[ActionType::kClick], counts[ActionType::kComment]);
}

TEST(SyntheticWorldTest, AffinityInUnitInterval) {
  const SyntheticWorld world(TinyWorld());
  for (UserId u = 1; u <= 20; ++u) {
    for (VideoId v = 1; v <= 20; ++v) {
      const double a = world.TrueAffinity(u, v);
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(world.TrueAffinity(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(world.TrueAffinity(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(world.TrueAffinity(1, 99999), 0.0);
}

TEST(SyntheticWorldTest, EngagementTracksAffinity) {
  // Property: videos a user engages with should have higher true affinity
  // on average than videos merely impressed — the generator is taste-
  // driven, which is what lets the models learn.
  const SyntheticWorld world(TinyWorld());
  double engaged_sum = 0, impressed_sum = 0;
  int engaged_n = 0, impressed_n = 0;
  for (const UserAction& a : world.GenerateDays(0, 3)) {
    if (a.type == ActionType::kPlayTime) {
      engaged_sum += world.TrueAffinity(a.user, a.video);
      ++engaged_n;
    } else if (a.type == ActionType::kImpress) {
      impressed_sum += world.TrueAffinity(a.user, a.video);
      ++impressed_n;
    }
  }
  ASSERT_GT(engaged_n, 50);
  ASSERT_GT(impressed_n, 50);
  EXPECT_GT(engaged_sum / engaged_n, impressed_sum / impressed_n + 0.02);
}

TEST(SyntheticWorldTest, ViewFractionsTrackAffinity) {
  const SyntheticWorld world(TinyWorld());
  double high_sum = 0, low_sum = 0;
  int high_n = 0, low_n = 0;
  for (const UserAction& a : world.GenerateDays(0, 3)) {
    if (a.type != ActionType::kPlayTime) continue;
    EXPECT_GT(a.view_fraction, 0.0);
    EXPECT_LE(a.view_fraction, 1.0);
    if (world.TrueAffinity(a.user, a.video) > 0.6) {
      high_sum += a.view_fraction;
      ++high_n;
    } else if (world.TrueAffinity(a.user, a.video) < 0.4) {
      low_sum += a.view_fraction;
      ++low_n;
    }
  }
  if (high_n > 20 && low_n > 20) {
    EXPECT_GT(high_sum / high_n, low_sum / low_n);
  }
}

TEST(SyntheticWorldTest, UnreleasedVideosNeverAppearInTraffic) {
  WorldConfig config = TinyWorld();
  config.catalog.staggered_release_fraction = 0.5;
  config.catalog.release_window_days = 4;
  const SyntheticWorld world(config);
  for (int day = 0; day <= 4; ++day) {
    for (const UserAction& a : world.GenerateDay(day)) {
      EXPECT_LE(world.catalog().Get(a.video).release_day, day)
          << "day " << day << " traffic touched an unreleased video";
    }
  }
}

TEST(SyntheticWorldTest, PromotionGivesReleasesSameDayTraffic) {
  WorldConfig config = TinyWorld();
  config.catalog.staggered_release_fraction = 0.4;
  config.catalog.release_window_days = 3;
  config.behavior.new_release_browse_rate = 0.2;
  const SyntheticWorld world(config);
  for (int day = 1; day <= 3; ++day) {
    const auto& releases = world.catalog().ReleasedOn(day);
    if (releases.empty()) continue;
    std::set<VideoId> released(releases.begin(), releases.end());
    std::size_t impressions_on_fresh = 0;
    for (const UserAction& a : world.GenerateDay(day)) {
      if (a.type == ActionType::kImpress && released.contains(a.video)) {
        ++impressions_on_fresh;
      }
    }
    EXPECT_GT(impressions_on_fresh, 0u) << "day " << day;
  }
}

TEST(SyntheticWorldTest, GenerateDaysConcatenatesInOrder) {
  const SyntheticWorld world(TinyWorld());
  const auto days = world.GenerateDays(0, 2);
  const auto day0 = world.GenerateDay(0);
  const auto day1 = world.GenerateDay(1);
  EXPECT_EQ(days.size(), day0.size() + day1.size());
  EXPECT_EQ(days.front(), day0.front());
  EXPECT_EQ(days.back(), day1.back());
}

TEST(SyntheticWorldTest, ChunkedGenerationMatchesMonolithic) {
  // Per-(user, day) RNG streams make chunking a pure partition: the
  // chunked actions, re-sorted globally, must equal GenerateDay exactly.
  const SyntheticWorld world(TinyWorld());
  const auto whole = world.GenerateDay(1);
  for (std::size_t chunk_users : {1u, 7u, 100u, 0u /* default */}) {
    std::vector<UserAction> streamed;
    std::size_t chunks = 0;
    world.GenerateDayChunked(1, chunk_users,
                             [&](std::vector<UserAction>&& chunk) {
                               ++chunks;
                               // Each chunk arrives time-sorted.
                               EXPECT_TRUE(std::is_sorted(
                                   chunk.begin(), chunk.end(),
                                   [](const UserAction& a,
                                      const UserAction& b) {
                                     return a.time < b.time;
                                   }));
                               streamed.insert(streamed.end(), chunk.begin(),
                                               chunk.end());
                             });
    const std::size_t effective = chunk_users == 0 ? 4096 : chunk_users;
    EXPECT_EQ(chunks, (100 + effective - 1) / effective);
    std::stable_sort(streamed.begin(), streamed.end(),
                     [](const UserAction& a, const UserAction& b) {
                       return a.time < b.time;
                     });
    ASSERT_EQ(streamed.size(), whole.size()) << "chunk " << chunk_users;
    // stable_sort of a per-user partition can permute equal timestamps
    // differently from the monolithic sort, so compare as multisets of
    // (time, user, video, type).
    auto key = [](const UserAction& a) {
      return std::tuple(a.time, a.user, a.video, static_cast<int>(a.type),
                        a.view_fraction);
    };
    std::vector<std::tuple<Timestamp, UserId, VideoId, int, double>> ka, kb;
    for (const auto& a : whole) ka.push_back(key(a));
    for (const auto& a : streamed) kb.push_back(key(a));
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
    EXPECT_EQ(ka, kb) << "chunk " << chunk_users;
  }
}

TEST(SyntheticWorldTest, ScenarioDefaultsKeepLegacyStream) {
  // A default-constructed ScenarioConfig must be bit-identical to the
  // pre-scenario generator — enabling nothing consumes no extra RNG.
  WorldConfig with = TinyWorld();
  with.scenario = ScenarioConfig{};
  const auto base = SyntheticWorld(TinyWorld()).GenerateDay(0);
  const auto scen = SyntheticWorld(with).GenerateDay(0);
  ASSERT_EQ(base.size(), scen.size());
  for (std::size_t i = 0; i < base.size(); ++i) EXPECT_EQ(base[i], scen[i]);
}

TEST(SyntheticWorldTest, DiurnalLoadPeaksAtConfiguredHour) {
  WorldConfig config = TinyWorld();
  config.population.num_users = 400;
  config.scenario.diurnal_amplitude = 0.8;
  config.scenario.diurnal_peak_hour = 21.0;
  const SyntheticWorld world(config);
  // Bucket impressions (one per browse slot ≈ session intensity) into
  // peak-centred vs trough-centred half-days.
  std::size_t near_peak = 0, near_trough = 0;
  for (const UserAction& a : world.GenerateDay(0)) {
    if (a.type != ActionType::kImpress) continue;
    const double hour =
        static_cast<double>(a.time % kMillisPerDay) / (3600.0 * 1000.0);
    // Circular distance from the peak.
    const double d = std::min(std::fabs(hour - 21.0),
                              24.0 - std::fabs(hour - 21.0));
    if (d <= 6.0) {
      ++near_peak;
    } else {
      ++near_trough;
    }
  }
  ASSERT_GT(near_peak + near_trough, 100u);
  // With A=0.8 the peak half-day carries ~2.4x the trough half-day; even
  // with browse-pacing smear a 1.5x margin is comfortable.
  EXPECT_GT(static_cast<double>(near_peak),
            1.5 * static_cast<double>(near_trough));
}

TEST(SyntheticWorldTest, FlashCrowdDominatesItsDayOnly) {
  WorldConfig config = TinyWorld();
  config.scenario.flash_crowds.push_back(
      FlashCrowdEvent{/*day=*/1, /*video=*/5, /*browse_share=*/0.5});
  const SyntheticWorld world(config);
  auto impress_share = [&world](int day, VideoId video) {
    std::size_t on_video = 0, total = 0;
    for (const UserAction& a : world.GenerateDay(day)) {
      if (a.type != ActionType::kImpress) continue;
      ++total;
      if (a.video == video) ++on_video;
    }
    return static_cast<double>(on_video) / static_cast<double>(total);
  };
  EXPECT_GT(impress_share(1, 5), 0.35);  // ~0.5 expected.
  EXPECT_LT(impress_share(0, 5), 0.15);  // Organic popularity only.
  EXPECT_LT(impress_share(2, 5), 0.15);  // Over the next day.
}

TEST(SyntheticWorldTest, DriftShiftsAffinityFromStartDay) {
  WorldConfig config = TinyWorld();
  config.scenario.drift_start_day = 3;
  config.scenario.drift_strength = 0.7;
  const SyntheticWorld world(config);
  // Pre-drift days match the 2-arg (pre-drift) affinity; from the drift
  // day the day-aware affinity moves for at least some pairs.
  std::size_t moved = 0, checked = 0;
  for (UserId u = 1; u <= 30; ++u) {
    for (VideoId v = 1; v <= 10; ++v) {
      EXPECT_DOUBLE_EQ(world.TrueAffinity(u, v, 2), world.TrueAffinity(u, v));
      ++checked;
      if (std::fabs(world.TrueAffinity(u, v, 3) - world.TrueAffinity(u, v)) >
          0.02) {
        ++moved;
      }
      // The drift is a stable regime, not a ramp.
      EXPECT_DOUBLE_EQ(world.TrueAffinity(u, v, 3),
                       world.TrueAffinity(u, v, 5));
    }
  }
  EXPECT_GT(moved, checked / 4);
}

TEST(SyntheticWorldTest, DriftChangesGeneratedEngagement) {
  // The drifted taste must actually reshape traffic: per-video engaged
  // plays before vs after the drift day correlate imperfectly.
  WorldConfig config = TinyWorld();
  config.population.num_users = 300;
  config.scenario.drift_start_day = 1;
  config.scenario.drift_strength = 0.8;
  const SyntheticWorld world(config);
  std::map<VideoId, double> before, after;
  for (const UserAction& a : world.GenerateDay(0)) {
    if (a.type == ActionType::kClick) before[a.video] += 1.0;
  }
  for (const UserAction& a : world.GenerateDay(1)) {
    if (a.type == ActionType::kClick) after[a.video] += 1.0;
  }
  // Some videos must change rank materially: count videos whose share
  // doubles or halves.
  double total_before = 0, total_after = 0;
  for (const auto& [v, c] : before) total_before += c;
  for (const auto& [v, c] : after) total_after += c;
  ASSERT_GT(total_before, 0.0);
  ASSERT_GT(total_after, 0.0);
  std::size_t reshaped = 0;
  for (const auto& [v, c] : before) {
    const double share_before = c / total_before;
    const double share_after =
        (after.count(v) ? after.at(v) : 0.0) / total_after;
    if (share_after > 2.0 * share_before ||
        share_after < 0.5 * share_before) {
      ++reshaped;
    }
  }
  EXPECT_GT(reshaped, before.size() / 10);
}

}  // namespace
}  // namespace rtrec
