#include "data/event_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace rtrec {
namespace {

WorldConfig TinyWorld() {
  WorldConfig config;
  config.seed = 21;
  config.catalog.num_videos = 100;
  config.catalog.num_types = 5;
  config.catalog.num_genres = 4;
  config.population.num_users = 100;
  config.population.mean_activity = 2.0;
  return config;
}

TEST(SyntheticWorldTest, DeterministicDayGeneration) {
  const SyntheticWorld world(TinyWorld());
  const auto day_a = world.GenerateDay(0);
  const auto day_b = world.GenerateDay(0);
  ASSERT_EQ(day_a.size(), day_b.size());
  for (std::size_t i = 0; i < day_a.size(); ++i) {
    EXPECT_EQ(day_a[i], day_b[i]);
  }
}

TEST(SyntheticWorldTest, DifferentDaysDiffer) {
  const SyntheticWorld world(TinyWorld());
  const auto day0 = world.GenerateDay(0);
  const auto day1 = world.GenerateDay(1);
  ASSERT_FALSE(day0.empty());
  ASSERT_FALSE(day1.empty());
  EXPECT_NE(day0.size(), day1.size());  // Extremely unlikely to match.
}

TEST(SyntheticWorldTest, ActionsAreTimeOrderedAndInDay) {
  const SyntheticWorld world(TinyWorld());
  const auto day2 = world.GenerateDay(2);
  ASSERT_FALSE(day2.empty());
  Timestamp prev = 0;
  for (const UserAction& a : day2) {
    EXPECT_GE(a.time, prev);
    prev = a.time;
    EXPECT_GE(a.time, 2 * kMillisPerDay);
    // Sessions truncate at midnight; impressions overshoot by at most
    // one browse step, engaged actions by at most one watch duration.
    if (a.type == ActionType::kImpress) {
      EXPECT_LT(a.time, 3 * kMillisPerDay + 2 * kMillisPerMinute);
    } else {
      EXPECT_LT(a.time, 3 * kMillisPerDay + 2 * kMillisPerHour);
    }
  }
}

TEST(SyntheticWorldTest, IdsAreWithinWorldBounds) {
  const SyntheticWorld world(TinyWorld());
  for (const UserAction& a : world.GenerateDay(0)) {
    EXPECT_GE(a.user, 1u);
    EXPECT_LE(a.user, 100u);
    EXPECT_GE(a.video, 1u);
    EXPECT_LE(a.video, 100u);
  }
}

TEST(SyntheticWorldTest, FunnelShape) {
  // Impress >= Click >= PlayTime; every click has a play.
  const SyntheticWorld world(TinyWorld());
  std::map<ActionType, std::size_t> counts;
  for (const UserAction& a : world.GenerateDays(0, 3)) ++counts[a.type];
  EXPECT_GT(counts[ActionType::kImpress], counts[ActionType::kClick]);
  EXPECT_EQ(counts[ActionType::kClick], counts[ActionType::kPlay]);
  EXPECT_EQ(counts[ActionType::kPlay], counts[ActionType::kPlayTime]);
  EXPECT_GT(counts[ActionType::kClick], 0u);
  EXPECT_GE(counts[ActionType::kClick], counts[ActionType::kComment]);
}

TEST(SyntheticWorldTest, AffinityInUnitInterval) {
  const SyntheticWorld world(TinyWorld());
  for (UserId u = 1; u <= 20; ++u) {
    for (VideoId v = 1; v <= 20; ++v) {
      const double a = world.TrueAffinity(u, v);
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(world.TrueAffinity(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(world.TrueAffinity(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(world.TrueAffinity(1, 99999), 0.0);
}

TEST(SyntheticWorldTest, EngagementTracksAffinity) {
  // Property: videos a user engages with should have higher true affinity
  // on average than videos merely impressed — the generator is taste-
  // driven, which is what lets the models learn.
  const SyntheticWorld world(TinyWorld());
  double engaged_sum = 0, impressed_sum = 0;
  int engaged_n = 0, impressed_n = 0;
  for (const UserAction& a : world.GenerateDays(0, 3)) {
    if (a.type == ActionType::kPlayTime) {
      engaged_sum += world.TrueAffinity(a.user, a.video);
      ++engaged_n;
    } else if (a.type == ActionType::kImpress) {
      impressed_sum += world.TrueAffinity(a.user, a.video);
      ++impressed_n;
    }
  }
  ASSERT_GT(engaged_n, 50);
  ASSERT_GT(impressed_n, 50);
  EXPECT_GT(engaged_sum / engaged_n, impressed_sum / impressed_n + 0.02);
}

TEST(SyntheticWorldTest, ViewFractionsTrackAffinity) {
  const SyntheticWorld world(TinyWorld());
  double high_sum = 0, low_sum = 0;
  int high_n = 0, low_n = 0;
  for (const UserAction& a : world.GenerateDays(0, 3)) {
    if (a.type != ActionType::kPlayTime) continue;
    EXPECT_GT(a.view_fraction, 0.0);
    EXPECT_LE(a.view_fraction, 1.0);
    if (world.TrueAffinity(a.user, a.video) > 0.6) {
      high_sum += a.view_fraction;
      ++high_n;
    } else if (world.TrueAffinity(a.user, a.video) < 0.4) {
      low_sum += a.view_fraction;
      ++low_n;
    }
  }
  if (high_n > 20 && low_n > 20) {
    EXPECT_GT(high_sum / high_n, low_sum / low_n);
  }
}

TEST(SyntheticWorldTest, UnreleasedVideosNeverAppearInTraffic) {
  WorldConfig config = TinyWorld();
  config.catalog.staggered_release_fraction = 0.5;
  config.catalog.release_window_days = 4;
  const SyntheticWorld world(config);
  for (int day = 0; day <= 4; ++day) {
    for (const UserAction& a : world.GenerateDay(day)) {
      EXPECT_LE(world.catalog().Get(a.video).release_day, day)
          << "day " << day << " traffic touched an unreleased video";
    }
  }
}

TEST(SyntheticWorldTest, PromotionGivesReleasesSameDayTraffic) {
  WorldConfig config = TinyWorld();
  config.catalog.staggered_release_fraction = 0.4;
  config.catalog.release_window_days = 3;
  config.behavior.new_release_browse_rate = 0.2;
  const SyntheticWorld world(config);
  for (int day = 1; day <= 3; ++day) {
    const auto& releases = world.catalog().ReleasedOn(day);
    if (releases.empty()) continue;
    std::set<VideoId> released(releases.begin(), releases.end());
    std::size_t impressions_on_fresh = 0;
    for (const UserAction& a : world.GenerateDay(day)) {
      if (a.type == ActionType::kImpress && released.contains(a.video)) {
        ++impressions_on_fresh;
      }
    }
    EXPECT_GT(impressions_on_fresh, 0u) << "day " << day;
  }
}

TEST(SyntheticWorldTest, GenerateDaysConcatenatesInOrder) {
  const SyntheticWorld world(TinyWorld());
  const auto days = world.GenerateDays(0, 2);
  const auto day0 = world.GenerateDay(0);
  const auto day1 = world.GenerateDay(1);
  EXPECT_EQ(days.size(), day0.size() + day1.size());
  EXPECT_EQ(days.front(), day0.front());
  EXPECT_EQ(days.back(), day1.back());
}

}  // namespace
}  // namespace rtrec
