#include "kvstore/factor_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "kvstore/factor_cache.h"

namespace rtrec {
namespace {

FactorStore::Options SmallOptions() {
  FactorStore::Options o;
  o.num_factors = 8;
  o.init_scale = 0.1;
  o.seed = 5;
  return o;
}

TEST(FactorStoreTest, GetOrInitCreatesDeterministicEntry) {
  FactorStore store(SmallOptions());
  FactorEntry a = store.GetOrInitUser(42);
  EXPECT_EQ(a.vec.size(), 8u);
  EXPECT_EQ(a.bias, 0.0f);
  // Re-fetch returns identical values.
  FactorEntry b = store.GetOrInitUser(42);
  EXPECT_EQ(a.vec, b.vec);
}

TEST(FactorStoreTest, InitializationIsSeedAndIdDependent) {
  FactorStore store(SmallOptions());
  EXPECT_NE(store.GetOrInitUser(1).vec, store.GetOrInitUser(2).vec);
  // User and video streams decorrelated for the same id.
  EXPECT_NE(store.GetOrInitUser(7).vec, store.GetOrInitVideo(7).vec);

  FactorStore::Options other = SmallOptions();
  other.seed = 6;
  FactorStore store2(other);
  EXPECT_NE(store.GetOrInitUser(1).vec, store2.GetOrInitUser(1).vec);
}

TEST(FactorStoreTest, InitializationOrderIndependent) {
  FactorStore a(SmallOptions());
  FactorStore b(SmallOptions());
  a.GetOrInitUser(1);
  a.GetOrInitUser(2);
  b.GetOrInitUser(2);
  b.GetOrInitUser(1);
  EXPECT_EQ(a.GetOrInitUser(1).vec, b.GetOrInitUser(1).vec);
  EXPECT_EQ(a.GetOrInitUser(2).vec, b.GetOrInitUser(2).vec);
}

TEST(FactorStoreTest, InitValuesWithinScale) {
  FactorStore store(SmallOptions());
  for (UserId u = 1; u <= 50; ++u) {
    for (float v : store.GetOrInitUser(u).vec) {
      EXPECT_LE(std::abs(v), 0.1f);
    }
  }
}

TEST(FactorStoreTest, GetWithoutInitIsNotFound) {
  FactorStore store(SmallOptions());
  EXPECT_TRUE(store.GetUser(1).status().IsNotFound());
  EXPECT_TRUE(store.GetVideo(1).status().IsNotFound());
  store.GetOrInitUser(1);
  EXPECT_TRUE(store.GetUser(1).ok());
  EXPECT_TRUE(store.GetVideo(1).status().IsNotFound());
}

TEST(FactorStoreTest, PutOverwritesEntry) {
  FactorStore store(SmallOptions());
  FactorEntry entry;
  entry.vec.assign(8, 1.5f);
  entry.bias = 2.0f;
  store.PutUser(9, entry);
  auto got = store.GetUser(9);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->vec, entry.vec);
  EXPECT_EQ(got->bias, 2.0f);
}

TEST(FactorStoreTest, UpdateAppliesInPlace) {
  FactorStore store(SmallOptions());
  store.UpdateVideo(3, [](FactorEntry& e) { e.bias = 7.0f; });
  EXPECT_EQ(store.GetVideo(3)->bias, 7.0f);
  // Update initializes when absent: the vector exists.
  EXPECT_EQ(store.GetVideo(3)->vec.size(), 8u);
}

TEST(FactorStoreTest, CountsUsersAndVideos) {
  FactorStore store(SmallOptions());
  EXPECT_EQ(store.NumUsers(), 0u);
  for (UserId u = 1; u <= 10; ++u) store.GetOrInitUser(u);
  for (VideoId v = 1; v <= 5; ++v) store.GetOrInitVideo(v);
  EXPECT_EQ(store.NumUsers(), 10u);
  EXPECT_EQ(store.NumVideos(), 5u);
}

TEST(FactorStoreTest, GlobalMeanTracksObservations) {
  FactorStore store(SmallOptions());
  EXPECT_DOUBLE_EQ(store.GlobalMean(), 0.0);
  store.ObserveRating(1.0);
  store.ObserveRating(0.0);
  EXPECT_DOUBLE_EQ(store.GlobalMean(), 0.5);
  EXPECT_EQ(store.RatingCount(), 2u);
}

TEST(FactorStoreTest, ConcurrentObserveRatingLosesNothing) {
  FactorStore store(SmallOptions());
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < 5000; ++i) store.ObserveRating(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.RatingCount(), 40000u);
  EXPECT_DOUBLE_EQ(store.GlobalMean(), 1.0);
}

TEST(FactorStoreTest, ConcurrentUpdatesOnDistinctKeys) {
  FactorStore store(SmallOptions());
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 1000; ++i) {
        store.UpdateUser(static_cast<UserId>(t * 10000 + i),
                         [](FactorEntry& e) { e.bias += 1.0f; });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.NumUsers(), 8000u);
}

TEST(FactorStoreTest, ConcurrentUpdatesOnSameKeyAreSerialized) {
  FactorStore store(SmallOptions());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < 2500; ++i) {
        store.UpdateUser(1, [](FactorEntry& e) { e.bias += 1.0f; });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FLOAT_EQ(store.GetUser(1)->bias, 10000.0f);
}

TEST(FactorStoreTest, GetVideosBatchMatchesSingleGets) {
  FactorStore store(SmallOptions());
  for (VideoId v = 1; v <= 30; v += 2) store.GetOrInitVideo(v);
  std::vector<VideoId> ids;
  for (VideoId v = 1; v <= 40; ++v) ids.push_back(v);  // Hits and misses.
  std::vector<FactorStore::VideoBatchEntry> batch = store.GetVideos(ids);
  ASSERT_EQ(batch.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    StatusOr<FactorEntry> single = store.GetVideo(ids[i]);
    ASSERT_EQ(batch[i].found, single.ok()) << "video " << ids[i];
    if (single.ok()) {
      EXPECT_EQ(batch[i].entry.vec, single->vec);
      EXPECT_EQ(batch[i].version, store.VideoVersion(ids[i]));
    }
  }
  EXPECT_TRUE(store.GetVideos({}).empty());
}

TEST(FactorStoreTest, VideoVersionBumpsOnEveryWrite) {
  FactorStore store(SmallOptions());
  const VideoId v = 17;
  const std::uint64_t v0 = store.VideoVersion(v);
  store.GetOrInitVideo(v);  // First materialization bumps.
  const std::uint64_t v1 = store.VideoVersion(v);
  EXPECT_GT(v1, v0);
  store.GetOrInitVideo(v);  // Re-read does not.
  EXPECT_EQ(store.VideoVersion(v), v1);
  store.UpdateVideo(v, [](FactorEntry& e) { e.bias += 1.0f; });
  const std::uint64_t v2 = store.VideoVersion(v);
  EXPECT_GT(v2, v1);
  store.PutVideo(v, store.MakeInitialEntry(v, /*is_user=*/false));
  EXPECT_GT(store.VideoVersion(v), v2);
}

TEST(FactorCacheTest, HitsOnlyAtCurrentVersion) {
  FactorStore store(SmallOptions());
  FactorCache cache(&store, 64, nullptr);
  const VideoId v = 5;
  store.GetOrInitVideo(v);
  std::vector<VideoId> ids = {v};
  std::vector<FactorStore::VideoBatchEntry> batch = store.GetVideos(ids);
  ASSERT_TRUE(batch[0].found);

  FactorEntry out;
  EXPECT_FALSE(cache.Lookup(v, &out));  // Cold.
  cache.Insert(v, batch[0].entry, batch[0].version);
  ASSERT_TRUE(cache.Lookup(v, &out));
  EXPECT_EQ(out.vec, batch[0].entry.vec);

  // A write invalidates the cached copy without touching the cache.
  store.UpdateVideo(v, [](FactorEntry& e) { e.bias = 9.0f; });
  EXPECT_FALSE(cache.Lookup(v, &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);

  // Re-fill at the new version serves the new entry.
  batch = store.GetVideos(ids);
  cache.Insert(v, batch[0].entry, batch[0].version);
  ASSERT_TRUE(cache.Lookup(v, &out));
  EXPECT_FLOAT_EQ(out.bias, 9.0f);
}

TEST(FactorStoreTest, MultiGetMetricsRegistered) {
  MetricsRegistry registry;
  FactorStore::Options options = SmallOptions();
  options.metrics = &registry;
  FactorStore store(options);
  for (VideoId v = 1; v <= 10; ++v) store.GetOrInitVideo(v);
  std::vector<VideoId> ids = {1, 2, 3, 99};
  (void)store.GetVideos(ids);
  EXPECT_EQ(registry.GetCounter("kvstore.multiget.calls")->value(), 1);
  EXPECT_EQ(registry.GetCounter("kvstore.multiget.keys")->value(), 4);
  EXPECT_EQ(registry.GetCounter("kvstore.multiget.hits")->value(), 3);
  EXPECT_GT(registry.GetCounter("kvstore.multiget.shard_batches")->value(),
            0);
}

TEST(FactorStoreTest, GlobalMeanNeverTearsUnderConcurrentWrites) {
  // Regression for the torn sum/count pair: the old implementation read
  // the rating sum and count as two independent relaxed loads, so a
  // reader racing a writer could pair a new sum with an old count. With
  // every observed rating equal to 5.0 the true mean is always exactly
  // 5.0; under the seqlock any other value is a torn read. Run under
  // TSan (build-tsan) to also catch the ordering bugs.
  FactorStore store(SmallOptions());
  store.ObserveRating(5.0);  // Readers never see the empty store.
  std::atomic<bool> stop{false};
  std::thread writer([&store, &stop] {
    while (!stop.load(std::memory_order_relaxed)) store.ObserveRating(5.0);
  });
  std::thread writer2([&store, &stop] {
    while (!stop.load(std::memory_order_relaxed)) store.ObserveRating(5.0);
  });
  for (int i = 0; i < 20000; ++i) {
    ASSERT_DOUBLE_EQ(store.GlobalMean(), 5.0) << "torn read at i=" << i;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  writer2.join();
  EXPECT_GE(store.RatingCount(), 1u);
}

TEST(FactorStoreTest, ForEachVideoVisitsAll) {
  FactorStore store(SmallOptions());
  for (VideoId v = 1; v <= 20; ++v) store.GetOrInitVideo(v);
  std::size_t visited = 0;
  store.ForEachVideo([&visited](VideoId, const FactorEntry& e) {
    EXPECT_EQ(e.vec.size(), 8u);
    ++visited;
  });
  EXPECT_EQ(visited, 20u);
}

}  // namespace
}  // namespace rtrec
