#include "kvstore/factor_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace rtrec {
namespace {

FactorStore::Options SmallOptions() {
  FactorStore::Options o;
  o.num_factors = 8;
  o.init_scale = 0.1;
  o.seed = 5;
  return o;
}

TEST(FactorStoreTest, GetOrInitCreatesDeterministicEntry) {
  FactorStore store(SmallOptions());
  FactorEntry a = store.GetOrInitUser(42);
  EXPECT_EQ(a.vec.size(), 8u);
  EXPECT_EQ(a.bias, 0.0f);
  // Re-fetch returns identical values.
  FactorEntry b = store.GetOrInitUser(42);
  EXPECT_EQ(a.vec, b.vec);
}

TEST(FactorStoreTest, InitializationIsSeedAndIdDependent) {
  FactorStore store(SmallOptions());
  EXPECT_NE(store.GetOrInitUser(1).vec, store.GetOrInitUser(2).vec);
  // User and video streams decorrelated for the same id.
  EXPECT_NE(store.GetOrInitUser(7).vec, store.GetOrInitVideo(7).vec);

  FactorStore::Options other = SmallOptions();
  other.seed = 6;
  FactorStore store2(other);
  EXPECT_NE(store.GetOrInitUser(1).vec, store2.GetOrInitUser(1).vec);
}

TEST(FactorStoreTest, InitializationOrderIndependent) {
  FactorStore a(SmallOptions());
  FactorStore b(SmallOptions());
  a.GetOrInitUser(1);
  a.GetOrInitUser(2);
  b.GetOrInitUser(2);
  b.GetOrInitUser(1);
  EXPECT_EQ(a.GetOrInitUser(1).vec, b.GetOrInitUser(1).vec);
  EXPECT_EQ(a.GetOrInitUser(2).vec, b.GetOrInitUser(2).vec);
}

TEST(FactorStoreTest, InitValuesWithinScale) {
  FactorStore store(SmallOptions());
  for (UserId u = 1; u <= 50; ++u) {
    for (float v : store.GetOrInitUser(u).vec) {
      EXPECT_LE(std::abs(v), 0.1f);
    }
  }
}

TEST(FactorStoreTest, GetWithoutInitIsNotFound) {
  FactorStore store(SmallOptions());
  EXPECT_TRUE(store.GetUser(1).status().IsNotFound());
  EXPECT_TRUE(store.GetVideo(1).status().IsNotFound());
  store.GetOrInitUser(1);
  EXPECT_TRUE(store.GetUser(1).ok());
  EXPECT_TRUE(store.GetVideo(1).status().IsNotFound());
}

TEST(FactorStoreTest, PutOverwritesEntry) {
  FactorStore store(SmallOptions());
  FactorEntry entry;
  entry.vec.assign(8, 1.5f);
  entry.bias = 2.0f;
  store.PutUser(9, entry);
  auto got = store.GetUser(9);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->vec, entry.vec);
  EXPECT_EQ(got->bias, 2.0f);
}

TEST(FactorStoreTest, UpdateAppliesInPlace) {
  FactorStore store(SmallOptions());
  store.UpdateVideo(3, [](FactorEntry& e) { e.bias = 7.0f; });
  EXPECT_EQ(store.GetVideo(3)->bias, 7.0f);
  // Update initializes when absent: the vector exists.
  EXPECT_EQ(store.GetVideo(3)->vec.size(), 8u);
}

TEST(FactorStoreTest, CountsUsersAndVideos) {
  FactorStore store(SmallOptions());
  EXPECT_EQ(store.NumUsers(), 0u);
  for (UserId u = 1; u <= 10; ++u) store.GetOrInitUser(u);
  for (VideoId v = 1; v <= 5; ++v) store.GetOrInitVideo(v);
  EXPECT_EQ(store.NumUsers(), 10u);
  EXPECT_EQ(store.NumVideos(), 5u);
}

TEST(FactorStoreTest, GlobalMeanTracksObservations) {
  FactorStore store(SmallOptions());
  EXPECT_DOUBLE_EQ(store.GlobalMean(), 0.0);
  store.ObserveRating(1.0);
  store.ObserveRating(0.0);
  EXPECT_DOUBLE_EQ(store.GlobalMean(), 0.5);
  EXPECT_EQ(store.RatingCount(), 2u);
}

TEST(FactorStoreTest, ConcurrentObserveRatingLosesNothing) {
  FactorStore store(SmallOptions());
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < 5000; ++i) store.ObserveRating(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.RatingCount(), 40000u);
  EXPECT_DOUBLE_EQ(store.GlobalMean(), 1.0);
}

TEST(FactorStoreTest, ConcurrentUpdatesOnDistinctKeys) {
  FactorStore store(SmallOptions());
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 1000; ++i) {
        store.UpdateUser(static_cast<UserId>(t * 10000 + i),
                         [](FactorEntry& e) { e.bias += 1.0f; });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.NumUsers(), 8000u);
}

TEST(FactorStoreTest, ConcurrentUpdatesOnSameKeyAreSerialized) {
  FactorStore store(SmallOptions());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < 2500; ++i) {
        store.UpdateUser(1, [](FactorEntry& e) { e.bias += 1.0f; });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FLOAT_EQ(store.GetUser(1)->bias, 10000.0f);
}

TEST(FactorStoreTest, ForEachVideoVisitsAll) {
  FactorStore store(SmallOptions());
  for (VideoId v = 1; v <= 20; ++v) store.GetOrInitVideo(v);
  std::size_t visited = 0;
  store.ForEachVideo([&visited](VideoId, const FactorEntry& e) {
    EXPECT_EQ(e.vec.size(), 8u);
    ++visited;
  });
  EXPECT_EQ(visited, 20u);
}

}  // namespace
}  // namespace rtrec
