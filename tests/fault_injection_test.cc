#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "kvstore/kv_store.h"

namespace rtrec {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    FaultInjector::Instance().SetMetrics(nullptr);
  }
};

TEST_F(FaultInjectionTest, DisarmedPointIsOkAndUnarmed) {
  EXPECT_FALSE(FaultInjector::AnyArmed());
  EXPECT_TRUE(RTREC_FAULT_POINT("test.never_armed").ok());
}

TEST_F(FaultInjectionTest, ArmedErrorFiresWithCodeAndPointName) {
  FaultInjector::Instance().Arm(
      "test.error", FaultSpec::Error(StatusCode::kCorruption)
                        .WithMessage("disk went away"));
  EXPECT_TRUE(FaultInjector::AnyArmed());
  Status status = RTREC_FAULT_POINT("test.error");
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("disk went away"), std::string::npos);
  EXPECT_NE(status.message().find("test.error"), std::string::npos);
  // Other points stay clean.
  EXPECT_TRUE(RTREC_FAULT_POINT("test.other").ok());
}

TEST_F(FaultInjectionTest, DisarmRestoresOk) {
  FaultInjector::Instance().Arm("test.error", FaultSpec::Error());
  ASSERT_FALSE(RTREC_FAULT_POINT("test.error").ok());
  FaultInjector::Instance().Disarm("test.error");
  EXPECT_TRUE(RTREC_FAULT_POINT("test.error").ok());
  EXPECT_FALSE(FaultInjector::AnyArmed());
}

TEST_F(FaultInjectionTest, EveryNthFiresOnExactMultiples) {
  FaultInjector::Instance().Arm("test.nth",
                                FaultSpec::Error().WithEveryNth(3));
  int failures = 0;
  for (int i = 1; i <= 12; ++i) {
    if (!RTREC_FAULT_POINT("test.nth").ok()) ++failures;
  }
  EXPECT_EQ(failures, 4);  // Hits 3, 6, 9, 12.
  EXPECT_EQ(FaultInjector::Instance().InjectedCount("test.nth"), 4u);
}

TEST_F(FaultInjectionTest, OneShotFiresExactlyOnce) {
  FaultInjector::Instance().Arm("test.once",
                                FaultSpec::Error().WithOneShot());
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    if (!RTREC_FAULT_POINT("test.once").ok()) ++failures;
  }
  EXPECT_EQ(failures, 1);
  // Re-arming resets the shot.
  FaultInjector::Instance().Arm("test.once",
                                FaultSpec::Error().WithOneShot());
  EXPECT_FALSE(RTREC_FAULT_POINT("test.once").ok());
}

TEST_F(FaultInjectionTest, ProbabilityRoughlyHonored) {
  FaultInjector::Instance().Arm("test.prob",
                                FaultSpec::Error().WithProbability(0.2));
  int failures = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (!RTREC_FAULT_POINT("test.prob").ok()) ++failures;
  }
  // 20% +- generous slack; the Rng is deterministic per thread so this
  // does not flake.
  EXPECT_GT(failures, kTrials / 10);
  EXPECT_LT(failures, kTrials / 2);
}

TEST_F(FaultInjectionTest, LatencyActionSleepsAndReturnsOk) {
  FaultInjector::Instance().Arm("test.slow", FaultSpec::Latency(30));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(RTREC_FAULT_POINT("test.slow").ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 25);
}

TEST_F(FaultInjectionTest, MetricsCountInjections) {
  MetricsRegistry metrics;
  FaultInjector::Instance().SetMetrics(&metrics);
  FaultInjector::Instance().Arm("test.counted", FaultSpec::Error());
  for (int i = 0; i < 3; ++i) (void)RTREC_FAULT_POINT("test.counted");
  EXPECT_EQ(metrics.GetCounter("fault.injected")->value(), 3u);
  EXPECT_EQ(metrics.GetCounter("fault.injected.test.counted")->value(), 3u);
}

TEST_F(FaultInjectionTest, KvStoreOperationsCarryFaultPoints) {
  // The wired-in points actually gate store operations.
  ShardedKvStore store;
  FaultInjector::Instance().Arm("kvstore.put", FaultSpec::Error());
  EXPECT_FALSE(store.Put("k", "v").ok());
  EXPECT_FALSE(store.Contains("k"));
  FaultInjector::Instance().Disarm("kvstore.put");
  ASSERT_TRUE(store.Put("k", "v").ok());

  FaultInjector::Instance().Arm("kvstore.get", FaultSpec::Error());
  EXPECT_FALSE(store.Get("k").ok());
  FaultInjector::Instance().Disarm("kvstore.get");
  ASSERT_TRUE(store.Get("k").ok());

  FaultInjector::Instance().Arm("kvstore.update", FaultSpec::Error());
  EXPECT_FALSE(
      store.Update("k", [](std::string& v) { v = "x"; }, true).ok());
  FaultInjector::Instance().Disarm("kvstore.update");
  EXPECT_EQ(*store.Get("k"), "v");  // Update fault left the value alone.

  FaultInjector::Instance().Arm("kvstore.delete", FaultSpec::Error());
  EXPECT_FALSE(store.Delete("k").ok());
  EXPECT_TRUE(store.Contains("k"));
}

TEST_F(FaultInjectionTest, ConcurrentHitsAreSafe) {
  FaultInjector::Instance().Arm("test.race",
                                FaultSpec::Error().WithProbability(0.5));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&failures] {
      for (int i = 0; i < 2000; ++i) {
        if (!RTREC_FAULT_POINT("test.race").ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(failures.load(), 0);
  EXPECT_EQ(FaultInjector::Instance().InjectedCount("test.race"),
            static_cast<std::uint64_t>(failures.load()));
}

}  // namespace
}  // namespace rtrec
