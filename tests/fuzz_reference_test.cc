/// Randomized differential tests: each concurrent/optimized store is
/// driven with a random operation stream and checked against a trivially
/// correct reference model.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/top_k.h"
#include "kvstore/kv_store.h"
#include "kvstore/sim_table_store.h"

namespace rtrec {
namespace {

TEST(KvStoreFuzzTest, MatchesMapReference) {
  ShardedKvStore store;
  std::map<std::string, std::string> reference;
  Rng rng(1234);

  for (int op = 0; op < 20000; ++op) {
    const std::string key = "k" + std::to_string(rng.NextUint64(200));
    switch (rng.NextUint64(4)) {
      case 0: {  // Put
        const std::string value = std::to_string(rng.NextUint64());
        ASSERT_TRUE(store.Put(key, value).ok());
        reference[key] = value;
        break;
      }
      case 1: {  // Get
        auto got = store.Get(key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_TRUE(got.status().IsNotFound()) << key;
        } else {
          ASSERT_TRUE(got.ok()) << key;
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
      case 2: {  // Delete
        const Status s = store.Delete(key);
        EXPECT_EQ(s.ok(), reference.erase(key) > 0) << key;
        break;
      }
      case 3: {  // Update (append)
        const bool existed = reference.contains(key);
        const Status s = store.Update(
            key, [](std::string& v) { v += "x"; }, /*create=*/op % 2 == 0);
        if (op % 2 == 0) {
          ASSERT_TRUE(s.ok());
          reference[key] += "x";
        } else {
          EXPECT_EQ(s.ok(), existed);
          if (existed) reference[key] += "x";
        }
        break;
      }
    }
  }
  EXPECT_EQ(store.Size(), reference.size());
  for (const auto& [key, value] : reference) {
    auto got = store.Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
}

/// Brute-force reference for the similar-video table: remembers every
/// directed pair's latest (sim, time) with unbounded capacity; query
/// sorts by decayed similarity. TopK eviction makes the real store lossy,
/// so the check is one-sided: every entry the store returns must match
/// the reference value, and the store's ranking must be sorted.
TEST(SimTableFuzzTest, EntriesMatchReferenceAndStayRanked) {
  SimTableStore::Options options;
  options.top_k = 8;
  options.xi_millis = 10000.0;
  SimTableStore table(options);

  std::map<std::pair<VideoId, VideoId>, std::pair<double, Timestamp>>
      reference;
  Rng rng(99);
  Timestamp now = 0;

  for (int op = 0; op < 5000; ++op) {
    now += static_cast<Timestamp>(rng.NextUint64(200));
    const VideoId a = 1 + rng.NextUint64(30);
    const VideoId b = 1 + rng.NextUint64(30);
    const double sim = rng.NextDouble(0.05, 1.0);
    table.Update(a, b, sim, now);
    if (a != b) {
      reference[{a, b}] = {sim, now};
      reference[{b, a}] = {sim, now};
    }
  }

  for (VideoId v = 1; v <= 30; ++v) {
    const auto results = table.Query(v, now, 100);
    EXPECT_LE(results.size(), 8u);
    double prev = 1e18;
    for (const SimilarVideo& r : results) {
      EXPECT_LE(r.similarity, prev);  // Ranked descending.
      prev = r.similarity;
      auto it = reference.find({v, r.video});
      ASSERT_NE(it, reference.end())
          << v << "->" << r.video << " not in reference";
      const double expected =
          it->second.first *
          std::exp2(-static_cast<double>(now - it->second.second) / 10000.0);
      EXPECT_NEAR(r.similarity, expected, 1e-9);
    }
  }
}

/// TopK against a full reference map (final scores), exploiting that our
/// workload only *raises* scores so no lossy-eviction ambiguity exists:
/// the retained set must be exactly the reference's K best.
TEST(TopKFuzzTest, MonotoneScoresMatchReferenceExactly) {
  TopK<int> top(12);
  std::map<int, double> reference;
  Rng rng(2024);
  for (int op = 0; op < 5000; ++op) {
    const int key = static_cast<int>(rng.NextUint64(100));
    double& ref_score = reference[key];
    ref_score += rng.NextDouble(0.0, 1.0);  // Monotone non-decreasing.
    top.Upsert(key, ref_score);
  }
  std::vector<std::pair<double, int>> best;
  for (const auto& [key, score] : reference) best.push_back({score, key});
  std::sort(best.rbegin(), best.rend());
  best.resize(12);

  ASSERT_EQ(top.size(), 12u);
  for (const auto& [score, key] : best) {
    const double* found = top.Find(key);
    ASSERT_NE(found, nullptr) << "missing key " << key;
    EXPECT_DOUBLE_EQ(*found, score);
  }
}

}  // namespace
}  // namespace rtrec
