#include "stream/grouping.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rtrec::stream {
namespace {

std::shared_ptr<const Schema> KeySchema() {
  return std::make_shared<const Schema>(Schema{{"key", "other"}});
}

Tuple KeyTuple(std::int64_t key, std::int64_t other = 0) {
  return Tuple(KeySchema(), {key, other});
}

TEST(GroupingRouterTest, ShuffleRoundRobins) {
  GroupingRouter router(Grouping::Shuffle(), 3);
  std::vector<std::size_t> out;
  std::vector<std::size_t> seen;
  for (int i = 0; i < 6; ++i) {
    router.Route(KeyTuple(i), out);
    ASSERT_EQ(out.size(), 1u);
    seen.push_back(out[0]);
  }
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(GroupingRouterTest, FieldsGroupingIsDeterministicPerKey) {
  GroupingRouter router(Grouping::Fields({"key"}), 4);
  std::vector<std::size_t> out1, out2;
  for (std::int64_t key = 0; key < 50; ++key) {
    router.Route(KeyTuple(key, 1), out1);
    router.Route(KeyTuple(key, 2), out2);  // Other fields irrelevant.
    EXPECT_EQ(out1, out2) << "key " << key;
  }
}

TEST(GroupingRouterTest, FieldsGroupingIsStableAcrossRouters) {
  GroupingRouter a(Grouping::Fields({"key"}), 4);
  GroupingRouter b(Grouping::Fields({"key"}), 4);
  std::vector<std::size_t> out_a, out_b;
  for (std::int64_t key = 0; key < 50; ++key) {
    a.Route(KeyTuple(key), out_a);
    b.Route(KeyTuple(key), out_b);
    EXPECT_EQ(out_a, out_b);
  }
}

TEST(GroupingRouterTest, FieldsGroupingSpreadsKeys) {
  GroupingRouter router(Grouping::Fields({"key"}), 4);
  std::set<std::size_t> used;
  std::vector<std::size_t> out;
  for (std::int64_t key = 0; key < 200; ++key) {
    router.Route(KeyTuple(key), out);
    used.insert(out[0]);
  }
  EXPECT_EQ(used.size(), 4u);  // All tasks receive traffic.
}

TEST(GroupingRouterTest, MultiFieldKeysCombine) {
  GroupingRouter router(Grouping::Fields({"key", "other"}), 8);
  std::vector<std::size_t> out1, out2;
  router.Route(KeyTuple(1, 2), out1);
  router.Route(KeyTuple(1, 2), out2);
  EXPECT_EQ(out1, out2);
  // At least one differing pair lands elsewhere over many keys.
  bool any_differs = false;
  for (std::int64_t other = 0; other < 32 && !any_differs; ++other) {
    router.Route(KeyTuple(1, other), out2);
    if (out2 != out1) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(GroupingRouterTest, MissingKeyFieldRoutesStably) {
  // Tuple lacking the grouping field must not crash and must route
  // consistently.
  GroupingRouter router(Grouping::Fields({"absent"}), 4);
  std::vector<std::size_t> out1, out2;
  router.Route(KeyTuple(1), out1);
  router.Route(KeyTuple(2), out2);
  ASSERT_EQ(out1.size(), 1u);
  EXPECT_EQ(out1, out2);
}

TEST(GroupingRouterTest, GlobalAlwaysTaskZero) {
  GroupingRouter router(Grouping::Global(), 5);
  std::vector<std::size_t> out;
  for (int i = 0; i < 10; ++i) {
    router.Route(KeyTuple(i), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0u);
  }
}

TEST(GroupingRouterTest, AllBroadcastsToEveryTask) {
  GroupingRouter router(Grouping::All(), 3);
  std::vector<std::size_t> out;
  router.Route(KeyTuple(1), out);
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(GroupingRouterTest, SingleTaskAlwaysZero) {
  for (const Grouping& g :
       {Grouping::Shuffle(), Grouping::Fields({"key"}), Grouping::Global()}) {
    GroupingRouter router(g, 1);
    std::vector<std::size_t> out;
    router.Route(KeyTuple(123), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0u);
  }
}

}  // namespace
}  // namespace rtrec::stream
