#include "cluster/hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cluster/manifest.h"

namespace rtrec {
namespace {

/// Owner of every key in [0, n) (as user ids, the routing shape).
std::map<UserId, ShardId> OwnershipMap(const HashRing& ring, UserId n) {
  std::map<UserId, ShardId> owners;
  for (UserId user = 0; user < n; ++user) {
    auto owner = ring.OwnerOfUser(user);
    EXPECT_TRUE(owner.ok()) << owner.status().ToString();
    owners[user] = *owner;
  }
  return owners;
}

TEST(HashRingTest, EmptyRingRefusesToRoute) {
  HashRing ring;
  EXPECT_EQ(ring.num_shards(), 0u);
  auto owner = ring.Owner(42);
  EXPECT_FALSE(owner.ok());
  EXPECT_TRUE(owner.status().IsInvalidArgument());
  EXPECT_TRUE(ring.PreferenceOrder(42).empty());
}

TEST(HashRingTest, RoutingIsDeterministic) {
  // Same membership, different construction paths and insertion orders:
  // every router and every server must derive the identical mapping.
  HashRing convenience(4);
  HashRing forward;
  for (ShardId shard = 0; shard < 4; ++shard) forward.AddShard(shard);
  HashRing backward;
  for (int shard = 3; shard >= 0; --shard) {
    backward.AddShard(static_cast<ShardId>(shard));
  }
  for (UserId user = 0; user < 5'000; ++user) {
    const ShardId owner = *convenience.OwnerOfUser(user);
    EXPECT_EQ(owner, *forward.OwnerOfUser(user));
    EXPECT_EQ(owner, *backward.OwnerOfUser(user));
  }
}

TEST(HashRingTest, BalancesKeysAcrossFourShards) {
  HashRing ring(4);
  std::map<ShardId, int> counts;
  const int kKeys = 40'000;
  for (UserId user = 0; user < kKeys; ++user) {
    ++counts[*ring.OwnerOfUser(user)];
  }
  ASSERT_EQ(counts.size(), 4u) << "some shard owns no keys";
  // Perfect balance is 25% each; with 64 vnodes/shard the spread stays
  // well inside [15%, 35%].
  for (const auto& [shard, count] : counts) {
    const double fraction = static_cast<double>(count) / kKeys;
    EXPECT_GT(fraction, 0.15) << "shard " << shard << " underloaded";
    EXPECT_LT(fraction, 0.35) << "shard " << shard << " overloaded";
  }
}

TEST(HashRingTest, RemovalMovesOnlyTheDeadShardsKeys) {
  HashRing ring(4);
  const auto before = OwnershipMap(ring, 10'000);
  ring.RemoveShard(2);
  const auto during = OwnershipMap(ring, 10'000);
  std::size_t moved = 0;
  for (const auto& [user, owner] : before) {
    if (owner == 2) {
      EXPECT_NE(during.at(user), 2u);
      ++moved;
    } else {
      // Minimal movement: a key not owned by the dead shard stays put.
      EXPECT_EQ(during.at(user), owner) << "user " << user;
    }
  }
  EXPECT_GT(moved, 0u);
}

TEST(HashRingTest, ReAddRestoresTheExactPriorMapping) {
  HashRing ring(4);
  const auto before = OwnershipMap(ring, 10'000);
  ring.RemoveShard(2);
  ring.AddShard(2);
  EXPECT_EQ(OwnershipMap(ring, 10'000), before);
}

TEST(HashRingTest, AddAndRemoveAreIdempotent) {
  HashRing ring(3);
  const auto before = OwnershipMap(ring, 1'000);
  ring.AddShard(1);  // Already present.
  EXPECT_EQ(ring.num_shards(), 3u);
  EXPECT_EQ(OwnershipMap(ring, 1'000), before);
  ring.RemoveShard(7);  // Never present.
  EXPECT_EQ(ring.num_shards(), 3u);
  EXPECT_EQ(OwnershipMap(ring, 1'000), before);
}

TEST(HashRingTest, PreferenceOrderStartsAtOwnerAndCoversAllShards) {
  HashRing ring(4);
  for (UserId user = 0; user < 500; ++user) {
    const std::uint64_t key = HashRing::KeyForUser(user);
    const std::vector<ShardId> order = ring.PreferenceOrder(key);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], *ring.Owner(key));
    std::vector<ShardId> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<ShardId>{0, 1, 2, 3}))
        << "preference order must be a permutation of the membership";
  }
}

TEST(HashRingTest, PreferenceOrderHonorsCount) {
  HashRing ring(4);
  const std::uint64_t key = HashRing::KeyForUser(9);
  EXPECT_EQ(ring.PreferenceOrder(key, 2).size(), 2u);
  EXPECT_EQ(ring.PreferenceOrder(key, 99).size(), 4u);
  EXPECT_EQ(ring.PreferenceOrder(key, 2)[0], *ring.Owner(key));
}

TEST(HashRingTest, FailoverTargetAgreesAcrossRouters) {
  // Two independently built rings must agree on who inherits a dead
  // shard's keys — that is what makes failover coherent cluster-wide.
  HashRing a(4);
  HashRing b(4);
  b.RemoveShard(1);
  for (UserId user = 0; user < 2'000; ++user) {
    const std::uint64_t key = HashRing::KeyForUser(user);
    if (*a.Owner(key) != 1) continue;
    const std::vector<ShardId> order = a.PreferenceOrder(key);
    // The next preference on the full ring is the owner on the ring
    // without the dead shard.
    EXPECT_EQ(order[1], *b.Owner(key));
  }
}

TEST(HashRingTest, MembershipIsSortedAndQueryable) {
  HashRing ring;
  ring.AddShard(5);
  ring.AddShard(1);
  ring.AddShard(3);
  EXPECT_EQ(ring.shards(), (std::vector<ShardId>{1, 3, 5}));
  EXPECT_TRUE(ring.HasShard(3));
  EXPECT_FALSE(ring.HasShard(2));
}

// --- Manifest --------------------------------------------------------------

TEST(ClusterManifestTest, ParsesWellFormedText) {
  auto manifest = ClusterManifest::Parse(
      "# comment\n"
      "\n"
      "shard 1 127.0.0.1 7472\n"
      "shard 0 10.0.0.5 7471\n");
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->num_shards(), 2u);
  // Sorted by shard id regardless of line order.
  EXPECT_EQ(manifest->shards[0].shard, 0u);
  EXPECT_EQ(manifest->shards[0].host, "10.0.0.5");
  EXPECT_EQ(manifest->shards[0].port, 7471);
  EXPECT_EQ(manifest->shards[1].shard, 1u);
  const ShardAddress* found = manifest->Find(1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->port, 7472);
  EXPECT_EQ(manifest->Find(2), nullptr);
}

TEST(ClusterManifestTest, ToTextRoundTrips) {
  auto manifest = ClusterManifest::Parse(
      "shard 0 127.0.0.1 7471\nshard 1 127.0.0.1 7472\n");
  ASSERT_TRUE(manifest.ok());
  auto reparsed = ClusterManifest::Parse(manifest->ToText());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->num_shards(), 2u);
  EXPECT_EQ(reparsed->shards[1].port, 7472);
}

TEST(ClusterManifestTest, RejectsMalformedInput) {
  // Empty / no shard lines.
  EXPECT_FALSE(ClusterManifest::Parse("").ok());
  EXPECT_FALSE(ClusterManifest::Parse("# only a comment\n").ok());
  // Duplicate id.
  EXPECT_FALSE(ClusterManifest::Parse(
                   "shard 0 127.0.0.1 7471\nshard 0 127.0.0.1 7472\n")
                   .ok());
  // Non-dense ids (0..N-1 required).
  EXPECT_FALSE(ClusterManifest::Parse(
                   "shard 0 127.0.0.1 7471\nshard 2 127.0.0.1 7473\n")
                   .ok());
  // Structural junk.
  EXPECT_FALSE(ClusterManifest::Parse("shard zero 127.0.0.1 7471\n").ok());
  EXPECT_FALSE(ClusterManifest::Parse("shard 0 127.0.0.1\n").ok());
  EXPECT_FALSE(ClusterManifest::Parse("shard 0 127.0.0.1 notaport\n").ok());
  EXPECT_FALSE(
      ClusterManifest::Parse("shard 0 127.0.0.1 7471 extra\n").ok());
  EXPECT_FALSE(ClusterManifest::Parse("shard 0 127.0.0.1 99999\n").ok());
}

TEST(ClusterManifestTest, LoadReportsMissingFileAsNotFound) {
  auto manifest = ClusterManifest::Load("/nonexistent/rtrec-manifest.txt");
  EXPECT_FALSE(manifest.ok());
  EXPECT_TRUE(manifest.status().IsNotFound());
}

TEST(ClusterManifestTest, RingMatchesMembership) {
  auto manifest = ClusterManifest::Parse(
      "shard 0 127.0.0.1 7471\n"
      "shard 1 127.0.0.1 7472\n"
      "shard 2 127.0.0.1 7473\n");
  ASSERT_TRUE(manifest.ok());
  const HashRing ring = manifest->Ring();
  EXPECT_EQ(ring.shards(), (std::vector<ShardId>{0, 1, 2}));
  // And it routes identically to a hand-built ring over the same ids —
  // the server-side and router-side rings are interchangeable.
  const HashRing reference(3);
  for (UserId user = 0; user < 1'000; ++user) {
    EXPECT_EQ(*ring.OwnerOfUser(user), *reference.OwnerOfUser(user));
  }
}

}  // namespace
}  // namespace rtrec
