#include "common/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rtrec {
namespace {

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleValueStats) {
  Histogram h;
  h.Add(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 100.0);
  EXPECT_NEAR(h.Percentile(50), 100.0, 1.0);
}

TEST(HistogramTest, MeanOfKnownValues) {
  Histogram h;
  for (int v : {10, 20, 30, 40}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 25.0);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 40);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Add(-50);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, PercentilesAreMonotonicAndBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i);
  double prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double value = h.Percentile(p);
    EXPECT_GE(value, prev);
    EXPECT_GE(value, 1.0);
    EXPECT_LE(value, 1000.0);
    prev = value;
  }
  // Median of 1..1000 should be near 500 within bucket resolution.
  EXPECT_NEAR(h.Percentile(50), 500.0, 200.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Add(5);
  h.Add(10);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Add(1);
  a.Add(2);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_EQ(a.min(), 1);
  EXPECT_EQ(b.count(), 1u);  // Source untouched.
}

TEST(HistogramTest, MergeWithSelfIsNoOp) {
  Histogram a;
  a.Add(7);
  a.Merge(a);
  EXPECT_EQ(a.count(), 1u);
}

TEST(HistogramTest, ConcurrentAddsAreAllCounted) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Add(i % 100);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(42);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
}

// Property sweep: for any scale of samples, percentiles stay within
// [min, max], are monotone in p, and the mean lies between them.
class HistogramScaleTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(HistogramScaleTest, PercentileInvariantsHold) {
  const std::int64_t scale = GetParam();
  Histogram h;
  for (int i = 1; i <= 500; ++i) {
    h.Add(static_cast<std::int64_t>(i) * scale);
  }
  const double min_v = static_cast<double>(h.min());
  const double max_v = static_cast<double>(h.max());
  double prev = min_v;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double value = h.Percentile(p);
    EXPECT_GE(value, min_v);
    EXPECT_LE(value, max_v);
    EXPECT_GE(value + 1e-9, prev) << "non-monotone at p=" << p;
    prev = value;
  }
  EXPECT_GE(h.Mean(), min_v);
  EXPECT_LE(h.Mean(), max_v);
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramScaleTest,
                         ::testing::Values<std::int64_t>(1, 10, 1000,
                                                         1000000,
                                                         1000000000));

TEST(HistogramExemplarTest, RemembersTraceIdsOfLargestObservations) {
  Histogram h;
  h.AddWithExemplar(10, 0xaaa);
  h.AddWithExemplar(500, 0xbbb);
  h.AddWithExemplar(20, 0xccc);
  const auto exemplars = h.Exemplars();
  ASSERT_EQ(exemplars.size(), 3u);
  // Highest value first.
  EXPECT_EQ(exemplars[0].value, 500);
  EXPECT_EQ(exemplars[0].trace_id, 0xbbbu);
}

TEST(HistogramExemplarTest, KeepsTheLargestWhenSlotsOverflow) {
  Histogram h;
  for (std::int64_t v = 1; v <= 100; ++v) {
    h.AddWithExemplar(v, static_cast<std::uint64_t>(v));
  }
  const auto exemplars = h.Exemplars();
  ASSERT_EQ(exemplars.size(),
            static_cast<std::size_t>(Histogram::kMaxExemplars));
  // The surviving slots are the largest observations.
  EXPECT_EQ(exemplars[0].value, 100);
  for (const auto& e : exemplars) {
    EXPECT_GT(e.value, 100 - Histogram::kMaxExemplars);
    EXPECT_EQ(e.trace_id, static_cast<std::uint64_t>(e.value));
  }
}

TEST(HistogramExemplarTest, ZeroTraceIdRecordsValueWithoutExemplar) {
  Histogram h;
  h.AddWithExemplar(42, 0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_TRUE(h.Exemplars().empty());
}

TEST(HistogramExemplarTest, ResetClearsExemplars) {
  Histogram h;
  h.AddWithExemplar(42, 0x1);
  h.Reset();
  EXPECT_TRUE(h.Exemplars().empty());
}

TEST(HistogramTest, CumulativeBucketsAreMonotoneAndComplete) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i);
  const Histogram::CumulativeCut cut = h.CumulativeBuckets();
  EXPECT_EQ(cut.count, 1000u);
  EXPECT_DOUBLE_EQ(cut.sum, 1000.0 * 1001.0 / 2.0);
  ASSERT_FALSE(cut.buckets.empty());
  std::uint64_t prev = 0;
  std::int64_t prev_le = -1;
  for (const auto& [le, cumulative] : cut.buckets) {
    EXPECT_GT(le, prev_le);
    EXPECT_GE(cumulative, prev);
    prev = cumulative;
    prev_le = le;
  }
  // The last emitted bucket covers every observation.
  EXPECT_EQ(cut.buckets.back().second, 1000u);
}

TEST(ScopedLatencyTimerTest, RecordsOneSample) {
  Histogram h;
  { ScopedLatencyTimer timer(&h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedLatencyTimerTest, NullHistogramIsSafe) {
  { ScopedLatencyTimer timer(nullptr); }  // Must not crash.
}

}  // namespace
}  // namespace rtrec
