#include "kvstore/history_store.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rtrec {
namespace {

HistoryStore::Options SmallOptions(std::size_t cap = 4) {
  HistoryStore::Options o;
  o.max_entries_per_user = cap;
  return o;
}

TEST(HistoryStoreTest, AppendAndGetNewestFirst) {
  HistoryStore store(SmallOptions());
  store.Append(1, {10, 1.0, 100});
  store.Append(1, {20, 2.0, 200});
  const auto history = store.Get(1);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].video, 20u);  // Newest first.
  EXPECT_EQ(history[1].video, 10u);
}

TEST(HistoryStoreTest, UnknownUserHasEmptyHistory) {
  HistoryStore store(SmallOptions());
  EXPECT_TRUE(store.Get(99).empty());
}

TEST(HistoryStoreTest, EvictsOldestBeyondCapacity) {
  HistoryStore store(SmallOptions(3));
  for (VideoId v = 1; v <= 5; ++v) {
    store.Append(1, {v, 1.0, static_cast<Timestamp>(v)});
  }
  const auto history = store.Get(1);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].video, 5u);
  EXPECT_EQ(history[2].video, 3u);  // 1 and 2 evicted.
}

TEST(HistoryStoreTest, DuplicateVideoRefreshesInPlace) {
  HistoryStore store(SmallOptions());
  store.Append(1, {10, 1.0, 100});
  store.Append(1, {20, 1.0, 200});
  store.Append(1, {10, 3.0, 300});  // Re-watch.
  const auto history = store.Get(1);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].video, 10u);  // Moved to most recent.
  EXPECT_DOUBLE_EQ(history[0].weight, 3.0);
  EXPECT_EQ(history[0].time, 300);
}

TEST(HistoryStoreTest, GetRecentLimitsResults) {
  HistoryStore store(SmallOptions(10));
  for (VideoId v = 1; v <= 8; ++v) {
    store.Append(1, {v, 1.0, static_cast<Timestamp>(v)});
  }
  const auto recent = store.GetRecent(1, 3);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].video, 8u);
  EXPECT_EQ(recent[2].video, 6u);
}

TEST(HistoryStoreTest, UsersAreIndependent) {
  HistoryStore store(SmallOptions());
  store.Append(1, {10, 1.0, 100});
  store.Append(2, {20, 1.0, 100});
  EXPECT_EQ(store.Get(1).size(), 1u);
  EXPECT_EQ(store.Get(2).size(), 1u);
  EXPECT_EQ(store.Get(1)[0].video, 10u);
  EXPECT_EQ(store.NumUsers(), 2u);
}

TEST(HistoryStoreTest, EraseDropsUser) {
  HistoryStore store(SmallOptions());
  store.Append(1, {10, 1.0, 100});
  store.Erase(1);
  EXPECT_TRUE(store.Get(1).empty());
  EXPECT_EQ(store.NumUsers(), 0u);
}

TEST(HistoryStoreTest, ConcurrentAppendsRespectBound) {
  HistoryStore store(SmallOptions(16));
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 1000; ++i) {
        store.Append(static_cast<UserId>(t % 4),
                     {static_cast<VideoId>(t * 10000 + i), 1.0, i});
      }
    });
  }
  for (auto& th : threads) th.join();
  for (UserId u = 0; u < 4; ++u) {
    EXPECT_LE(store.Get(u).size(), 16u);
  }
}

}  // namespace
}  // namespace rtrec
