#include <gtest/gtest.h>

#include "baselines/hot_recommender.h"
#include "baselines/item_cf.h"

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;
  a.time = t;
  return a;
}

UserAction Click(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kClick;
  a.time = t;
  return a;
}

TEST(HotRecommenderTest, RanksByRecentEngagement) {
  HotRecommender hot;
  for (int i = 0; i < 5; ++i) hot.Observe(Click(1, 10, 0));
  for (int i = 0; i < 3; ++i) hot.Observe(Click(2, 20, 0));
  RecRequest request;
  request.user = 99;
  request.now = 0;
  auto recs = hot.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_GE(recs->size(), 2u);
  EXPECT_EQ((*recs)[0].video, 10u);
  EXPECT_EQ((*recs)[1].video, 20u);
}

TEST(HotRecommenderTest, ImpressionsIgnored) {
  HotRecommender hot;
  UserAction impress;
  impress.user = 1;
  impress.video = 10;
  impress.type = ActionType::kImpress;
  hot.Observe(impress);
  RecRequest request;
  request.now = 0;
  auto recs = hot.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());
}

TEST(HotRecommenderTest, TrendsShiftOverTime) {
  HotRecommender::Options options;
  options.half_life_millis = 1000.0;
  HotRecommender hot(options);
  for (int i = 0; i < 10; ++i) hot.Observe(Click(1, 10, 0));
  for (int i = 0; i < 3; ++i) hot.Observe(Click(2, 20, 5000));
  RecRequest request;
  request.user = 9;
  request.now = 5000;
  auto recs = hot.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ((*recs)[0].video, 20u);  // Fresh beats stale.
}

TEST(HotRecommenderTest, SameListForAllUsers) {
  HotRecommender hot;
  hot.Observe(Click(1, 10, 0));
  RecRequest a;
  a.user = 1;
  a.now = 0;
  RecRequest b;
  b.user = 2;
  b.now = 0;
  EXPECT_EQ(*hot.Recommend(a), *hot.Recommend(b));
  EXPECT_EQ(hot.name(), "Hot");
}

TEST(ItemCfTest, CoWatchedVideosBecomeSimilar) {
  ItemCfRecommender cf;
  Timestamp t = 0;
  for (UserId u = 1; u <= 5; ++u) {
    cf.Observe(Play(u, 10, t += 100));
    cf.Observe(Play(u, 11, t += 100));
  }
  EXPECT_GT(cf.Similarity(10, 11), 0.0);
  EXPECT_DOUBLE_EQ(cf.Similarity(10, 99), 0.0);
}

TEST(ItemCfTest, CosineNormalizationPenalizesBlockbusters) {
  ItemCfRecommender cf;
  Timestamp t = 0;
  // Pair (1,2): 3 co-watchers, each video watched 3 times.
  for (UserId u = 1; u <= 3; ++u) {
    cf.Observe(Play(u, 1, t += 100));
    cf.Observe(Play(u, 2, t += 100));
  }
  // Pair (3,4): 3 co-watches, but video 4 is watched by 20 more users.
  for (UserId u = 1; u <= 3; ++u) {
    cf.Observe(Play(u, 3, t += 100));
    cf.Observe(Play(u, 4, t += 100));
  }
  for (UserId u = 50; u <= 70; ++u) {
    cf.Observe(Play(u, 4, t += 100));
  }
  EXPECT_GT(cf.Similarity(1, 2), cf.Similarity(3, 4));
}

TEST(ItemCfTest, RecommendsNeighborsOfSeed) {
  ItemCfRecommender cf;
  Timestamp t = 0;
  for (UserId u = 1; u <= 6; ++u) {
    cf.Observe(Play(u, 10, t += 100));
    cf.Observe(Play(u, 11, t += 100));
    cf.Observe(Play(u, 12, t += 100));
  }
  RecRequest request;
  request.user = 99;
  request.seed_videos = {10};
  request.now = t;
  auto recs = cf.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 2u);
  EXPECT_TRUE((*recs)[0].video == 11 || (*recs)[0].video == 12);
}

TEST(ItemCfTest, ExcludesOwnHistory) {
  ItemCfRecommender cf;
  Timestamp t = 0;
  for (UserId u = 1; u <= 6; ++u) {
    cf.Observe(Play(u, 10, t += 100));
    cf.Observe(Play(u, 11, t += 100));
  }
  RecRequest request;
  request.user = 1;  // Watched both.
  request.now = t;
  auto recs = cf.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());
}

TEST(ItemCfTest, ColdUserEmpty) {
  ItemCfRecommender cf;
  RecRequest request;
  request.user = 1;
  request.now = 0;
  auto recs = cf.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());
  EXPECT_EQ(cf.name(), "ItemCF");
}

TEST(ItemCfTest, WeakActionsIgnored) {
  ItemCfRecommender cf;
  UserAction impress;
  impress.user = 1;
  impress.video = 10;
  impress.type = ActionType::kImpress;
  cf.Observe(impress);
  cf.Observe(Play(1, 11, 100));
  EXPECT_DOUBLE_EQ(cf.Similarity(10, 11), 0.0);
}

}  // namespace
}  // namespace rtrec
