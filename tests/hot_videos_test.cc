#include "demographic/hot_videos.h"

#include <gtest/gtest.h>

namespace rtrec {
namespace {

HotVideoTracker::Options SmallOptions(double half_life = 1000.0) {
  HotVideoTracker::Options o;
  o.top_k = 5;
  o.half_life_millis = half_life;
  return o;
}

TEST(HotVideoTrackerTest, RanksByAccumulatedWeight) {
  HotVideoTracker tracker(SmallOptions());
  tracker.Record(0, 1, 1.0, 0);
  tracker.Record(0, 2, 1.0, 0);
  tracker.Record(0, 2, 1.0, 0);
  tracker.Record(0, 3, 1.0, 0);
  tracker.Record(0, 2, 1.0, 0);
  const auto hot = tracker.Hottest(0, 10, 0);
  ASSERT_GE(hot.size(), 3u);
  EXPECT_EQ(hot[0].video, 2u);
  EXPECT_NEAR(hot[0].score, 3.0, 1e-9);
}

TEST(HotVideoTrackerTest, GroupsAreIsolated) {
  HotVideoTracker tracker(SmallOptions());
  tracker.Record(0, 1, 5.0, 0);
  tracker.Record(1, 2, 1.0, 0);
  const auto group0 = tracker.Hottest(0, 10, 0);
  const auto group1 = tracker.Hottest(1, 10, 0);
  ASSERT_EQ(group0.size(), 1u);
  ASSERT_EQ(group1.size(), 1u);
  EXPECT_EQ(group0[0].video, 1u);
  EXPECT_EQ(group1[0].video, 2u);
}

TEST(HotVideoTrackerTest, UnknownGroupIsEmpty) {
  HotVideoTracker tracker(SmallOptions());
  EXPECT_TRUE(tracker.Hottest(9, 10, 0).empty());
}

TEST(HotVideoTrackerTest, RecentHitsOutweighOldOnes) {
  HotVideoTracker tracker(SmallOptions(1000.0));
  // Video 1: three hits at t=0. Video 2: two hits at t=3000 (3 half-
  // lives later): decayed weight of video 1 = 3/8 < 2.
  tracker.Record(0, 1, 1.0, 0);
  tracker.Record(0, 1, 1.0, 0);
  tracker.Record(0, 1, 1.0, 0);
  tracker.Record(0, 2, 1.0, 3000);
  tracker.Record(0, 2, 1.0, 3000);
  const auto hot = tracker.Hottest(0, 10, 3000);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].video, 2u);
  EXPECT_NEAR(hot[0].score, 2.0, 1e-6);
  EXPECT_NEAR(hot[1].score, 3.0 / 8.0, 1e-6);
}

TEST(HotVideoTrackerTest, TopKBoundsListLength) {
  HotVideoTracker tracker(SmallOptions());
  for (VideoId v = 1; v <= 20; ++v) {
    tracker.Record(0, v, static_cast<double>(v), 0);
  }
  const auto hot = tracker.Hottest(0, 100, 0);
  EXPECT_EQ(hot.size(), 5u);  // top_k = 5.
  EXPECT_EQ(hot[0].video, 20u);
}

TEST(HotVideoTrackerTest, ZeroWeightIgnored) {
  HotVideoTracker tracker(SmallOptions());
  tracker.Record(0, 1, 0.0, 0);
  EXPECT_TRUE(tracker.Hottest(0, 10, 0).empty());
}

TEST(HotVideoTrackerTest, NRequestTruncates) {
  HotVideoTracker tracker(SmallOptions());
  for (VideoId v = 1; v <= 5; ++v) tracker.Record(0, v, 1.0, 0);
  EXPECT_EQ(tracker.Hottest(0, 2, 0).size(), 2u);
}

TEST(HotRecommenderViewTest, ServesTrackerContent) {
  HotVideoTracker tracker(SmallOptions());
  tracker.Record(kGlobalGroup, 7, 3.0, 0);
  tracker.Record(kGlobalGroup, 8, 1.0, 0);
  HotRecommenderView view(&tracker, kGlobalGroup, 10);
  RecRequest request;
  request.user = 1;
  request.now = 0;
  auto recs = view.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 2u);
  EXPECT_EQ((*recs)[0].video, 7u);
  EXPECT_EQ(view.name(), "Hot");
}

}  // namespace
}  // namespace rtrec
