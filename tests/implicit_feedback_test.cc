#include "core/implicit_feedback.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rtrec {
namespace {

UserAction Action(ActionType type, double fraction = 0.0) {
  UserAction a;
  a.user = 1;
  a.video = 2;
  a.type = type;
  a.view_fraction = fraction;
  a.time = 1000;
  return a;
}

TEST(FeedbackConfigTest, DefaultsValidate) {
  EXPECT_TRUE(FeedbackConfig{}.Validate().ok());
}

TEST(FeedbackConfigTest, RejectsBadRanges) {
  FeedbackConfig c;
  c.playtime_a = 0.5;
  c.playtime_b = 1.0;  // a < b violates Eq. 6's constraint.
  EXPECT_FALSE(c.Validate().ok());

  FeedbackConfig d;
  d.min_view_rate = 0.0;
  EXPECT_FALSE(d.Validate().ok());
  d.min_view_rate = 1.0;
  EXPECT_FALSE(d.Validate().ok());

  FeedbackConfig e;
  e.click_weight = -1.0;
  EXPECT_FALSE(e.Validate().ok());
}

TEST(ActionConfidenceTest, Table1Ordering) {
  // Impress < Click < Play < full PlayTime <= Comment: engagement level
  // orders confidence (Table 1's premise).
  const FeedbackConfig config;
  const double impress = ActionConfidence(Action(ActionType::kImpress), config);
  const double click = ActionConfidence(Action(ActionType::kClick), config);
  const double play = ActionConfidence(Action(ActionType::kPlay), config);
  const double watch_full =
      ActionConfidence(Action(ActionType::kPlayTime, 1.0), config);
  const double comment =
      ActionConfidence(Action(ActionType::kComment), config);
  EXPECT_EQ(impress, 0.0);
  EXPECT_LT(impress, click);
  EXPECT_LT(click, play);
  EXPECT_LT(play, watch_full);
  EXPECT_LE(watch_full, comment);
}

TEST(ActionConfidenceTest, PlayTimeFollowsEq6) {
  const FeedbackConfig config;  // a=2.5, b=1.0, log10.
  EXPECT_NEAR(ActionConfidence(Action(ActionType::kPlayTime, 1.0), config),
              2.5, 1e-9);
  EXPECT_NEAR(ActionConfidence(Action(ActionType::kPlayTime, 0.1), config),
              1.5, 1e-9);
  EXPECT_NEAR(ActionConfidence(Action(ActionType::kPlayTime, 0.5), config),
              2.5 + std::log10(0.5), 1e-9);
}

TEST(ActionConfidenceTest, PlayTimeWeightsSpanAMinusBToA) {
  // Eq. 6's range: w in [a-b, a] for vrate in [0.1, 1] with log10.
  const FeedbackConfig config;
  for (double vrate = 0.1; vrate <= 1.0; vrate += 0.05) {
    const double w =
        ActionConfidence(Action(ActionType::kPlayTime, vrate), config);
    EXPECT_GE(w, config.playtime_a - config.playtime_b - 1e-9);
    EXPECT_LE(w, config.playtime_a + 1e-9);
  }
}

TEST(ActionConfidenceTest, PlayTimeIsMonotoneInViewRate) {
  const FeedbackConfig config;
  double prev = 0.0;
  for (double vrate = 0.1; vrate <= 1.0; vrate += 0.01) {
    const double w =
        ActionConfidence(Action(ActionType::kPlayTime, vrate), config);
    EXPECT_GE(w, prev);
    prev = w;
  }
}

TEST(ActionConfidenceTest, InefficientPlayTimeFallsBackToPlayWeight) {
  // vrate < 0.1 is treated as an inefficient play, not a negative signal
  // (Section 3.2).
  const FeedbackConfig config;
  EXPECT_DOUBLE_EQ(
      ActionConfidence(Action(ActionType::kPlayTime, 0.05), config),
      config.play_weight);
  EXPECT_DOUBLE_EQ(
      ActionConfidence(Action(ActionType::kPlayTime, 0.0), config),
      config.play_weight);
}

TEST(ActionConfidenceTest, ViewFractionIsClamped) {
  const FeedbackConfig config;
  // Over-unity fractions (clock skew, replays) clamp to 1.
  EXPECT_DOUBLE_EQ(
      ActionConfidence(Action(ActionType::kPlayTime, 1.7), config),
      config.playtime_a);
  // Negative fractions clamp to 0 -> inefficient play.
  EXPECT_DOUBLE_EQ(
      ActionConfidence(Action(ActionType::kPlayTime, -0.3), config),
      config.play_weight);
}

TEST(ActionConfidenceTest, AllTypesReturnConfiguredWeights) {
  FeedbackConfig config;
  config.like_weight = 2.2;
  config.share_weight = 3.3;
  EXPECT_DOUBLE_EQ(ActionConfidence(Action(ActionType::kLike), config), 2.2);
  EXPECT_DOUBLE_EQ(ActionConfidence(Action(ActionType::kShare), config), 3.3);
}

TEST(ActionConfidenceTest, NonFiniteViewFractionsFallBackToPlayWeight) {
  const FeedbackConfig config;
  const double bad_values[] = {std::nan(""), INFINITY, -INFINITY};
  for (double bad : bad_values) {
    const double w =
        ActionConfidence(Action(ActionType::kPlayTime, bad), config);
    EXPECT_DOUBLE_EQ(w, config.play_weight);
    EXPECT_TRUE(std::isfinite(w));
  }
}

TEST(ActionConfidenceTest, LinearLawSharesEndpointsWithLogLaw) {
  FeedbackConfig log_config;
  FeedbackConfig linear_config;
  linear_config.playtime_law = PlayTimeLaw::kLinear;
  // w(1) = a for both laws.
  EXPECT_DOUBLE_EQ(
      ActionConfidence(Action(ActionType::kPlayTime, 1.0), linear_config),
      ActionConfidence(Action(ActionType::kPlayTime, 1.0), log_config));
  // Linear at vrate -> 0 tends to a - b; log at vrate = 0.1 equals a - b.
  EXPECT_NEAR(
      ActionConfidence(Action(ActionType::kPlayTime, 0.1), linear_config),
      linear_config.playtime_a - linear_config.playtime_b +
          linear_config.playtime_b * 0.1,
      1e-9);
}

TEST(ActionConfidenceTest, LogLawIsConcaveAboveLinearLaw) {
  // Eq. 6 rewards early watching more than the linear alternative: for
  // every interior vrate the log weight exceeds the linear weight.
  FeedbackConfig log_config;
  FeedbackConfig linear_config;
  linear_config.playtime_law = PlayTimeLaw::kLinear;
  for (double vrate = 0.15; vrate < 1.0; vrate += 0.1) {
    const double w_log =
        ActionConfidence(Action(ActionType::kPlayTime, vrate), log_config);
    const double w_linear = ActionConfidence(
        Action(ActionType::kPlayTime, vrate), linear_config);
    EXPECT_GT(w_log, w_linear) << "vrate " << vrate;
  }
}

TEST(ActionConfidenceTest, LinearLawIsMonotone) {
  FeedbackConfig config;
  config.playtime_law = PlayTimeLaw::kLinear;
  double prev = 0.0;
  for (double vrate = 0.1; vrate <= 1.0; vrate += 0.05) {
    const double w =
        ActionConfidence(Action(ActionType::kPlayTime, vrate), config);
    EXPECT_GE(w, prev);
    prev = w;
  }
}

TEST(BinaryRatingTest, Eq7Binarization) {
  EXPECT_EQ(BinaryRating(0.0), 0);
  EXPECT_EQ(BinaryRating(-1.0), 0);
  EXPECT_EQ(BinaryRating(0.001), 1);
  EXPECT_EQ(BinaryRating(3.0), 1);
}

TEST(ActionTypeStringsTest, RoundTrip) {
  for (int i = 0; i < kNumActionTypes; ++i) {
    const ActionType type = static_cast<ActionType>(i);
    auto parsed = ActionTypeFromString(ActionTypeToString(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(ActionTypeFromString("bogus").ok());
}

TEST(ActionToStringTest, ContainsFields) {
  const std::string s = ActionToString(Action(ActionType::kPlayTime, 0.82));
  EXPECT_NE(s.find("u=1"), std::string::npos);
  EXPECT_NE(s.find("v=2"), std::string::npos);
  EXPECT_NE(s.find("play_time"), std::string::npos);
}

}  // namespace
}  // namespace rtrec
