/// End-to-end quality tests: the experiment *shapes* the paper reports
/// must hold on the synthetic world (absolute values are workload-
/// dependent; orderings are the reproduction target — see DESIGN.md).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "demographic/demographic_trainer.h"
#include "eval/evaluator.h"
#include "eval/experiment_runner.h"

namespace rtrec {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new SyntheticWorld(SmallWorldConfig(2016));
    grouper_ = new DemographicGrouper();
    world_->RegisterProfiles(*grouper_);
    // 4 train days + 1 test day (scaled-down Section 6.1 protocol).
    Dataset all(world_->GenerateDays(0, 5));
    all_data_ = new Dataset(all.FilterMinActivity(8, 4));
    auto [train, test] = all_data_->SplitAtTime(4 * kMillisPerDay);
    train_ = new Dataset(std::move(train));
    test_ = new Dataset(std::move(test));
  }

  static void TearDownTestSuite() {
    delete test_;
    delete train_;
    delete all_data_;
    delete grouper_;
    delete world_;
    world_ = nullptr;
  }

  static SyntheticWorld* world_;
  static DemographicGrouper* grouper_;
  static Dataset* all_data_;
  static Dataset* train_;
  static Dataset* test_;
};

SyntheticWorld* IntegrationTest::world_ = nullptr;
DemographicGrouper* IntegrationTest::grouper_ = nullptr;
Dataset* IntegrationTest::all_data_ = nullptr;
Dataset* IntegrationTest::train_ = nullptr;
Dataset* IntegrationTest::test_ = nullptr;

TEST_F(IntegrationTest, DataCleaningLeavesUsableCorpus) {
  ASSERT_FALSE(train_->empty());
  ASSERT_FALSE(test_->empty());
  const DatasetStats stats = all_data_->Stats(FeedbackConfig{});
  EXPECT_GT(stats.num_users, 50u);
  EXPECT_GT(stats.num_videos, 30u);
  EXPECT_GT(stats.sparsity_percent, 0.0);
}

TEST_F(IntegrationTest, TrainedModelBeatsUntrainedOnRecall) {
  RecEngine trained(world_->TypeResolver(),
                    DefaultEngineOptions(UpdatePolicy::kCombine));
  RecEngine untrained(world_->TypeResolver(),
                      DefaultEngineOptions(UpdatePolicy::kCombine));
  OfflineEvaluator evaluator;
  const OfflineResult trained_result =
      evaluator.Evaluate(trained, *train_, *test_);
  // Untrained: evaluate without training (empty train set).
  const OfflineResult untrained_result =
      evaluator.Evaluate(untrained, Dataset{}, *test_);
  EXPECT_GT(trained_result.recall(10), untrained_result.recall(10));
  EXPECT_GT(trained_result.recall(10), 0.0);
}

TEST_F(IntegrationTest, CombineBeatsBinaryOnRecall) {
  // The Figure 4 headline we reproduce robustly: at matched mean step
  // size, the adjustable CombineModel beats the fixed-rate BinaryModel
  // (see EXPERIMENTS.md for the ConfModel divergence discussion).
  const auto results = ComparePolicies(world_->TypeResolver(), *train_,
                                       *test_, OfflineEvaluator::Options{});
  ASSERT_EQ(results.size(), 3u);
  const OfflineResult& binary = results[0];
  const OfflineResult& combine = results[2];
  EXPECT_GT(combine.recall(10), binary.recall(10));
}

TEST_F(IntegrationTest, AllPoliciesProduceUsefulModels) {
  const auto results = ComparePolicies(world_->TypeResolver(), *train_,
                                       *test_, OfflineEvaluator::Options{});
  for (const OfflineResult& r : results) {
    EXPECT_GT(r.recall(10), 0.0) << r.model_name;
    EXPECT_GE(r.avg_rank, 0.0) << r.model_name;
    EXPECT_LE(r.avg_rank, 1.0) << r.model_name;
    EXPECT_GT(r.users_evaluated, 10u) << r.model_name;
  }
}

TEST_F(IntegrationTest, GroupModelBeatsGlobalOnItsGroup) {
  // The Figure 3 headline: per-group training beats the global model on
  // group traffic. Evaluate on the largest demographic group.
  const auto groups =
      LargestGroups(*train_, *grouper_, 1, FeedbackConfig{});
  ASSERT_FALSE(groups.empty());
  const GroupId group = groups[0];
  const Dataset group_train = train_->FilterGroup(*grouper_, group);
  const Dataset group_test = test_->FilterGroup(*grouper_, group);
  ASSERT_FALSE(group_train.empty());
  ASSERT_FALSE(group_test.empty());

  OfflineEvaluator evaluator;
  RecEngine group_model(world_->TypeResolver(),
                        DefaultEngineOptions(UpdatePolicy::kCombine));
  const OfflineResult group_result =
      evaluator.Evaluate(group_model, group_train, group_test);

  RecEngine global_model(world_->TypeResolver(),
                         DefaultEngineOptions(UpdatePolicy::kCombine));
  const OfflineResult global_result =
      evaluator.Evaluate(global_model, *train_, group_test);

  // Group sparsity is lower (denser matrix) — the paper's Table 4 effect.
  const double group_sparsity =
      group_train.Stats(FeedbackConfig{}).sparsity_percent;
  const double global_sparsity =
      train_->Stats(FeedbackConfig{}).sparsity_percent;
  EXPECT_GT(group_sparsity, global_sparsity);

  // And the group model at least matches the global model on its slice.
  EXPECT_GE(group_result.recall(10) * 1.25, global_result.recall(10));
}

TEST_F(IntegrationTest, RecommendationsReflectTrueAffinity) {
  // Recommended videos should have above-average true affinity for the
  // requesting user — the model recovered real signal, not noise.
  RecEngine engine(world_->TypeResolver(),
                   DefaultEngineOptions(UpdatePolicy::kCombine));
  OfflineEvaluator evaluator;
  evaluator.Train(engine, *train_);

  double rec_affinity = 0.0;
  int rec_n = 0;
  double base_affinity = 0.0;
  int base_n = 0;
  Rng rng(7);
  int served = 0;
  for (const SimUser& user : world_->population().users()) {
    if (served >= 50) break;
    RecRequest request;
    request.user = user.id;
    request.top_n = 5;
    request.now = 4 * kMillisPerDay;
    auto recs = engine.Recommend(request);
    if (!recs.ok() || recs->empty()) continue;
    ++served;
    for (const ScoredVideo& v : *recs) {
      rec_affinity += world_->TrueAffinity(user.id, v.video);
      ++rec_n;
    }
    for (int i = 0; i < 5; ++i) {
      base_affinity += world_->TrueAffinity(
          user.id, 1 + rng.NextUint64(world_->catalog().size()));
      ++base_n;
    }
  }
  ASSERT_GT(served, 10);
  EXPECT_GT(rec_affinity / rec_n, base_affinity / base_n);
}

}  // namespace
}  // namespace rtrec
