#include "kvstore/kv_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace rtrec {
namespace {

TEST(ShardedKvStoreTest, PutGetRoundTrip) {
  ShardedKvStore store;
  ASSERT_TRUE(store.Put("k1", "v1").ok());
  auto v = store.Get("k1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v1");
}

TEST(ShardedKvStoreTest, GetMissingIsNotFound) {
  ShardedKvStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
}

TEST(ShardedKvStoreTest, PutOverwrites) {
  ShardedKvStore store;
  store.Put("k", "a");
  store.Put("k", "b");
  EXPECT_EQ(*store.Get("k"), "b");
  EXPECT_EQ(store.Size(), 1u);
}

TEST(ShardedKvStoreTest, DeleteRemovesKey) {
  ShardedKvStore store;
  store.Put("k", "v");
  EXPECT_TRUE(store.Delete("k").ok());
  EXPECT_TRUE(store.Get("k").status().IsNotFound());
  EXPECT_TRUE(store.Delete("k").IsNotFound());
}

TEST(ShardedKvStoreTest, ContainsTracksPresence) {
  ShardedKvStore store;
  EXPECT_FALSE(store.Contains("k"));
  store.Put("k", "v");
  EXPECT_TRUE(store.Contains("k"));
}

TEST(ShardedKvStoreTest, UpdateCreatesWhenAsked) {
  ShardedKvStore store;
  ASSERT_TRUE(
      store.Update("k", [](std::string& v) { v += "x"; }, true).ok());
  EXPECT_EQ(*store.Get("k"), "x");
  // Without create_if_missing: NotFound.
  EXPECT_TRUE(store.Update("missing", [](std::string&) {}, false)
                  .IsNotFound());
}

TEST(ShardedKvStoreTest, UpdateIsReadModifyWrite) {
  ShardedKvStore store;
  store.Put("k", "1");
  store.Update("k", [](std::string& v) { v = std::to_string(
      std::stoi(v) + 1); }, false);
  EXPECT_EQ(*store.Get("k"), "2");
}

TEST(ShardedKvStoreTest, ShardCountRoundsUpToPowerOfTwo) {
  ShardedKvStoreOptions options;
  options.num_shards = 5;
  ShardedKvStore store(options);
  EXPECT_EQ(store.num_shards(), 8u);
  ShardedKvStoreOptions one;
  one.num_shards = 0;
  EXPECT_EQ(ShardedKvStore(one).num_shards(), 1u);
}

TEST(ShardedKvStoreTest, SizeAndForEachCoverAllShards) {
  ShardedKvStore store;
  for (int i = 0; i < 100; ++i) {
    store.Put("key" + std::to_string(i), std::to_string(i));
  }
  EXPECT_EQ(store.Size(), 100u);
  int visited = 0;
  store.ForEach([&visited](const std::string&, const std::string&) {
    ++visited;
  });
  EXPECT_EQ(visited, 100);
}

TEST(ShardedKvStoreTest, MetricsCountOperations) {
  MetricsRegistry registry;
  ShardedKvStoreOptions options;
  options.metrics = &registry;
  ShardedKvStore store(options);
  store.Put("a", "1");
  store.Get("a");
  store.Get("missing");
  store.Delete("a");
  EXPECT_EQ(registry.GetCounter("kvstore.puts")->value(), 1);
  EXPECT_EQ(registry.GetCounter("kvstore.gets")->value(), 2);
  EXPECT_EQ(registry.GetCounter("kvstore.hits")->value(), 1);
  EXPECT_EQ(registry.GetCounter("kvstore.deletes")->value(), 1);
}

TEST(ShardedKvStoreTest, ConcurrentUpdatesOnOneKeyAreAtomic) {
  ShardedKvStore store;
  store.Put("counter", "");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kPerThread; ++i) {
        store.Update("counter", [](std::string& v) { v.push_back('x'); },
                     false);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.Get("counter")->size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(ShardedKvStoreTest, MultiGetAlignsResultsWithKeys) {
  ShardedKvStore store;
  for (int i = 0; i < 50; ++i) {
    store.Put("k" + std::to_string(i), "v" + std::to_string(i));
  }
  // Hits and misses interleaved, plus a duplicate key.
  std::vector<std::string> keys;
  for (int i = 0; i < 60; i += 3) keys.push_back("k" + std::to_string(i));
  keys.push_back("k3");
  std::vector<StatusOr<std::string>> results = store.MultiGet(keys);
  ASSERT_EQ(results.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const int n = std::stoi(keys[i].substr(1));
    if (n < 50) {
      ASSERT_TRUE(results[i].ok()) << keys[i];
      EXPECT_EQ(*results[i], "v" + std::to_string(n));
    } else {
      EXPECT_TRUE(results[i].status().IsNotFound()) << keys[i];
    }
  }
}

TEST(ShardedKvStoreTest, MultiGetEmptyAndMetrics) {
  MetricsRegistry registry;
  ShardedKvStoreOptions options;
  options.metrics = &registry;
  options.metrics_prefix = "test.";
  ShardedKvStore store(options);
  EXPECT_TRUE(store.MultiGet({}).empty());
  store.Put("a", "1");
  store.Put("b", "2");
  std::vector<std::string> keys = {"a", "b", "missing"};
  (void)store.MultiGet(keys);
  EXPECT_EQ(registry.GetCounter("test.multiget.calls")->value(), 2);
  EXPECT_EQ(registry.GetCounter("test.multiget.keys")->value(), 3);
  EXPECT_EQ(registry.GetCounter("test.multiget.hits")->value(), 2);
  // Shard batches never exceed the key count.
  EXPECT_LE(registry.GetCounter("test.multiget.shard_batches")->value(), 3);
  EXPECT_GT(registry.GetCounter("test.multiget.shard_batches")->value(), 0);
}

TEST(ShardedKvStoreTest, MultiGetMatchesGetUnderRandomKeys) {
  ShardedKvStore store;
  for (int i = 0; i < 200; i += 2) {
    store.Put("key" + std::to_string(i), std::to_string(i * i));
  }
  std::vector<std::string> keys;
  for (int i = 0; i < 200; i += 7) keys.push_back("key" + std::to_string(i));
  std::vector<StatusOr<std::string>> batch = store.MultiGet(keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    StatusOr<std::string> single = store.Get(keys[i]);
    ASSERT_EQ(batch[i].ok(), single.ok()) << keys[i];
    if (single.ok()) EXPECT_EQ(*batch[i], *single);
  }
}

TEST(ShardedKvStoreTest, ConcurrentDisjointKeysAllLand) {
  ShardedKvStore store;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        store.Put("t" + std::to_string(t) + "_" + std::to_string(i), "v");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.Size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace rtrec
