#include "data/log_format.h"

#include "data/action_source.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/event_generator.h"
#include "stream/topology.h"

namespace rtrec {
namespace {

UserAction SampleAction() {
  UserAction a;
  a.user = 12345;
  a.video = 678;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 0.8125;
  a.time = 1466000000123;
  return a;
}

TEST(LogFormatTest, TsvRoundTrip) {
  const UserAction original = SampleAction();
  auto parsed = ActionFromTsv(ActionToTsv(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->user, original.user);
  EXPECT_EQ(parsed->video, original.video);
  EXPECT_EQ(parsed->type, original.type);
  EXPECT_NEAR(parsed->view_fraction, original.view_fraction, 1e-6);
  EXPECT_EQ(parsed->time, original.time);
}

TEST(LogFormatTest, AllActionTypesRoundTrip) {
  for (int i = 0; i < kNumActionTypes; ++i) {
    UserAction a = SampleAction();
    a.type = static_cast<ActionType>(i);
    auto parsed = ActionFromTsv(ActionToTsv(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->type, a.type);
  }
}

TEST(LogFormatTest, RejectsMalformedLines) {
  EXPECT_FALSE(ActionFromTsv("").ok());
  EXPECT_FALSE(ActionFromTsv("1\t2\tclick").ok());            // Too few.
  EXPECT_FALSE(ActionFromTsv("1\t2\tclick\t0\t0\textra").ok());
  EXPECT_FALSE(ActionFromTsv("x\t2\tclick\t0\t0").ok());      // Bad user.
  EXPECT_FALSE(ActionFromTsv("1\t2\tbogus\t0\t0").ok());      // Bad type.
  EXPECT_FALSE(ActionFromTsv("1\t2\tclick\tzz\t0").ok());     // Bad frac.
  EXPECT_FALSE(ActionFromTsv("1\t2\tclick\t0\tzz").ok());     // Bad time.
}

TEST(LogFormatTest, ToleratesSurroundingWhitespace) {
  auto parsed = ActionFromTsv(" 1 \t 2 \t click \t 0.5 \t 99 ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->user, 1u);
  EXPECT_EQ(parsed->type, ActionType::kClick);
}

class LogFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("rtrec_log_test_" + std::to_string(::getpid()) + ".tsv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(LogFileTest, WriteReadRoundTrip) {
  std::vector<UserAction> actions;
  for (int i = 0; i < 50; ++i) {
    UserAction a = SampleAction();
    a.user = static_cast<UserId>(i);
    a.time = i * 1000;
    actions.push_back(a);
  }
  ASSERT_TRUE(WriteActionLog(path_.string(), actions).ok());
  auto loaded = ReadActionLog(path_.string());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), actions.size());
  for (std::size_t i = 0; i < actions.size(); ++i) {
    EXPECT_EQ((*loaded)[i].user, actions[i].user);
    EXPECT_EQ((*loaded)[i].time, actions[i].time);
  }
}

TEST_F(LogFileTest, MissingFileIsNotFound) {
  EXPECT_TRUE(ReadActionLog("/nonexistent/dir/log.tsv").status()
                  .IsNotFound());
}

TEST_F(LogFileTest, MalformedLineFailsUnlessSkipped) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1\t2\tclick\t0.0\t100\n", f);
    std::fputs("garbage line\n", f);
    std::fputs("3\t4\tplay\t0.0\t200\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadActionLog(path_.string()).ok());
  auto skipped = ReadActionLog(path_.string(), /*skip_malformed=*/true);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped->size(), 2u);
}

TEST_F(LogFileTest, BlankLinesIgnored) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("\n1\t2\tclick\t0.0\t100\n\n\n", f);
    std::fclose(f);
  }
  auto loaded = ReadActionLog(path_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
}

TEST_F(LogFileTest, TsvFileActionSourceStreamsAndFilters) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1\t2\tclick\t0.0\t100\n", f);
    std::fputs("garbage\n", f);
    std::fputs("\n", f);
    std::fputs("3\t4\tplay\t0.0\t200\n", f);
    std::fclose(f);
  }
  TsvFileActionSource source(path_.string());
  ASSERT_TRUE(source.ok());
  auto first = source.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->user, 1u);
  auto second = source.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->video, 4u);
  EXPECT_FALSE(source.Next().has_value());  // Exhausted.
  EXPECT_FALSE(source.Next().has_value());  // Stays exhausted.
  EXPECT_EQ(source.malformed_lines(), 1u);
  EXPECT_EQ(source.produced(), 2u);
}

TEST_F(LogFileTest, TsvFileActionSourceMissingFileIsExhausted) {
  TsvFileActionSource source("/nonexistent/file.tsv");
  EXPECT_FALSE(source.ok());
  EXPECT_FALSE(source.Next().has_value());
}

TEST_F(LogFileTest, TsvFileActionSourceDrivesTopology) {
  const SyntheticWorld world = SyntheticWorld([]{
    WorldConfig c;
    c.seed = 5;
    c.catalog.num_videos = 50;
    c.population.num_users = 30;
    return c;
  }());
  const auto actions = world.GenerateDay(0);
  ASSERT_TRUE(WriteActionLog(path_.string(), actions).ok());

  auto source = std::make_shared<TsvFileActionSource>(path_.string());
  FactorStore::Options factor_options;
  factor_options.num_factors = 8;
  FactorStore factors(factor_options);
  HistoryStore history;
  SimTableStore table;
  PipelineDeps deps;
  deps.factors = &factors;
  deps.history = &history;
  deps.sim_table = &table;
  deps.type_resolver = world.TypeResolver();
  deps.model_config.num_factors = 8;
  auto spec = BuildRecommendationTopology(source, deps);
  ASSERT_TRUE(spec.ok());
  auto topo = stream::Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_EQ(source->produced(), actions.size());
  EXPECT_GT(factors.NumUsers(), 0u);
}

}  // namespace
}  // namespace rtrec
