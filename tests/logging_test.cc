#include "common/logging.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace rtrec {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, BelowThresholdSkipsEvaluation) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  RTREC_LOG(kDebug) << "never " << expensive();
  RTREC_LOG(kInfo) << "never " << expensive();
  RTREC_LOG(kWarn) << "never " << expensive();
  EXPECT_EQ(evaluations, 0);
  RTREC_LOG(kError) << "emitted " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, OrderingOfLevels) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
}

TEST(LoggingTest, ConcurrentLoggingDoesNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // Keep the test output quiet.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        RTREC_LOG(kInfo) << "thread " << t << " line " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace rtrec
