#include "common/lru_cache.h"

#include <gtest/gtest.h>

#include <string>

#include "common/types.h"

namespace rtrec {
namespace {

TEST(LruCacheTest, PutGetRoundTrip) {
  LruCache<int, std::string> cache(4);
  cache.Put(1, "one");
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), "one");
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(3);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  cache.Put(4, 40);  // Evicts 1 (oldest).
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(2), nullptr);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCacheTest, GetRefreshesRecency) {
  LruCache<int, int> cache(3);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  EXPECT_NE(cache.Get(1), nullptr);  // 1 is now most recent.
  cache.Put(4, 40);                  // Evicts 2.
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCacheTest, PutOverwritesAndRefreshes) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // Overwrite refreshes 1.
  cache.Put(3, 30);  // Evicts 2.
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 11);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, EraseRemoves) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ClearEmptiesEverything) {
  LruCache<int, int> cache(4);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);
}

TEST(LruCacheTest, HitMissCounters) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Get(1);
  cache.Get(1);
  cache.Get(9);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, ZeroCapacityClampsToOne) {
  LruCache<int, int> cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(2), nullptr);
}

TEST(LruCacheTest, CustomHashWorks) {
  LruCache<VideoPair, double, VideoPairHash> cache(8);
  cache.Put(VideoPair(1, 2), 0.5);
  // Normalized pair order: (2,1) is the same key.
  ASSERT_NE(cache.Get(VideoPair(2, 1)), nullptr);
  EXPECT_DOUBLE_EQ(*cache.Get(VideoPair(2, 1)), 0.5);
}

}  // namespace
}  // namespace rtrec
