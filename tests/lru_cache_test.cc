#include "common/lru_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace rtrec {
namespace {

TEST(LruCacheTest, PutGetRoundTrip) {
  LruCache<int, std::string> cache(4);
  cache.Put(1, "one");
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), "one");
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(3);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  cache.Put(4, 40);  // Evicts 1 (oldest).
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(2), nullptr);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCacheTest, GetRefreshesRecency) {
  LruCache<int, int> cache(3);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  EXPECT_NE(cache.Get(1), nullptr);  // 1 is now most recent.
  cache.Put(4, 40);                  // Evicts 2.
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCacheTest, PutOverwritesAndRefreshes) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // Overwrite refreshes 1.
  cache.Put(3, 30);  // Evicts 2.
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 11);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, EraseRemoves) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ClearEmptiesEverything) {
  LruCache<int, int> cache(4);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);
}

TEST(LruCacheTest, HitMissCounters) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Get(1);
  cache.Get(1);
  cache.Get(9);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, ZeroCapacityClampsToOne) {
  LruCache<int, int> cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(2), nullptr);
}

TEST(LruCacheTest, FuzzEvictionOrderAndCounters) {
  // Replay a random Get/Put/Erase workload against a naive recency-list
  // model. The key domain (16) exceeds capacity (6), so evictions happen
  // constantly; any divergence in eviction order shows up as a membership
  // mismatch on a later Get.
  Rng rng(42);
  constexpr std::size_t kCap = 6;
  LruCache<std::uint64_t, std::uint64_t> cache(kCap);
  std::vector<std::uint64_t> order;  // Front = most recent.
  std::unordered_map<std::uint64_t, std::uint64_t> values;
  std::size_t hits = 0;
  std::size_t misses = 0;
  auto touch = [&order](std::uint64_t key) {
    order.erase(std::find(order.begin(), order.end(), key));
    order.insert(order.begin(), key);
  };
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t op = rng.NextUint64(10);
    const std::uint64_t key = rng.NextUint64(16);
    if (op < 4) {  // Get.
      std::uint64_t* got = cache.Get(key);
      if (values.contains(key)) {
        ++hits;
        ASSERT_NE(got, nullptr) << "step " << step << " key " << key;
        ASSERT_EQ(*got, values[key]) << "step " << step;
        touch(key);
      } else {
        ++misses;
        ASSERT_EQ(got, nullptr) << "step " << step << " key " << key;
      }
    } else if (op < 8) {  // Put.
      const std::uint64_t value = rng.NextUint64();
      cache.Put(key, value);
      if (values.contains(key)) {
        values[key] = value;
        touch(key);
      } else {
        if (order.size() >= kCap) {
          values.erase(order.back());
          order.pop_back();
        }
        values[key] = value;
        order.insert(order.begin(), key);
      }
    } else {  // Erase.
      const bool removed = cache.Erase(key);
      ASSERT_EQ(removed, values.erase(key) > 0) << "step " << step;
      if (removed) {
        order.erase(std::find(order.begin(), order.end(), key));
      }
    }
    ASSERT_EQ(cache.size(), order.size()) << "step " << step;
    ASSERT_EQ(cache.hits(), hits) << "step " << step;
    ASSERT_EQ(cache.misses(), misses) << "step " << step;
  }
  // Drain check: fresh keys (more recent than every survivor) must evict
  // the survivors in exact reverse-recency order.
  std::uint64_t fresh = 1000000;
  while (cache.size() < kCap) cache.Put(fresh++, 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    cache.Put(fresh++, 0);
    EXPECT_EQ(cache.Get(*it), nullptr) << "expected victim " << *it;
  }
}

TEST(LruCacheTest, CustomHashWorks) {
  LruCache<VideoPair, double, VideoPairHash> cache(8);
  cache.Put(VideoPair(1, 2), 0.5);
  // Normalized pair order: (2,1) is the same key.
  ASSERT_NE(cache.Get(VideoPair(2, 1)), nullptr);
  EXPECT_DOUBLE_EQ(*cache.Get(VideoPair(2, 1)), 0.5);
}

}  // namespace
}  // namespace rtrec
