#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rtrec {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.value(), 6);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsDoNotLoseUpdates) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 80000);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(MetricsRegistryTest, LookupCreatesOnFirstUse) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("foo");
  ASSERT_NE(c, nullptr);
  c->Increment();
  // Same name returns the same object.
  EXPECT_EQ(registry.GetCounter("foo"), c);
  EXPECT_EQ(registry.GetCounter("foo")->value(), 1);
  // Different name is distinct.
  EXPECT_NE(registry.GetCounter("bar"), c);
}

TEST(MetricsRegistryTest, SeparateNamespacesPerKind) {
  MetricsRegistry registry;
  registry.GetCounter("x")->Increment(5);
  registry.GetGauge("x")->Set(7);
  registry.GetHistogram("x")->Add(3);
  EXPECT_EQ(registry.GetCounter("x")->value(), 5);
  EXPECT_EQ(registry.GetGauge("x")->value(), 7);
  EXPECT_EQ(registry.GetHistogram("x")->count(), 1u);
}

TEST(MetricsRegistryTest, ReportContainsAllMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("alpha")->Increment(3);
  registry.GetGauge("beta")->Set(-2);
  registry.GetHistogram("gamma")->Add(10);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("alpha = 3"), std::string::npos);
  EXPECT_NE(report.find("beta = -2"), std::string::npos);
  EXPECT_NE(report.find("gamma"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentLookupIsSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared")->Increment();
        registry.GetCounter("own" + std::to_string(t))->Increment();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.GetCounter("shared")->value(), 8000);
}

TEST(MetricsRegistryTest, DefaultRegistryIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace rtrec
