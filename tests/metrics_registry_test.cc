#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace rtrec {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.value(), 6);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsDoNotLoseUpdates) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 80000);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(DoubleGaugeTest, SetAndValue) {
  DoubleGauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(0.6931);
  EXPECT_EQ(g.value(), 0.6931);
  g.Set(-1.5);
  EXPECT_EQ(g.value(), -1.5);
}

TEST(DoubleGaugeTest, RegistryReportAndPrometheusRendering) {
  MetricsRegistry registry;
  registry.GetDoubleGauge("quality.progressive.logloss")->Set(0.25);
  // Same name returns the same object, in its own namespace.
  EXPECT_EQ(registry.GetDoubleGauge("quality.progressive.logloss")->value(),
            0.25);
  registry.GetGauge("quality.progressive.logloss")->Set(9);

  const std::string report = registry.Report();
  EXPECT_NE(report.find("quality.progressive.logloss = 0.25"),
            std::string::npos);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE quality_progressive_logloss gauge"),
            std::string::npos);
  EXPECT_NE(text.find("quality_progressive_logloss 0.25\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, LookupCreatesOnFirstUse) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("foo");
  ASSERT_NE(c, nullptr);
  c->Increment();
  // Same name returns the same object.
  EXPECT_EQ(registry.GetCounter("foo"), c);
  EXPECT_EQ(registry.GetCounter("foo")->value(), 1);
  // Different name is distinct.
  EXPECT_NE(registry.GetCounter("bar"), c);
}

TEST(MetricsRegistryTest, SeparateNamespacesPerKind) {
  MetricsRegistry registry;
  registry.GetCounter("x")->Increment(5);
  registry.GetGauge("x")->Set(7);
  registry.GetHistogram("x")->Add(3);
  EXPECT_EQ(registry.GetCounter("x")->value(), 5);
  EXPECT_EQ(registry.GetGauge("x")->value(), 7);
  EXPECT_EQ(registry.GetHistogram("x")->count(), 1u);
}

TEST(MetricsRegistryTest, ReportContainsAllMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("alpha")->Increment(3);
  registry.GetGauge("beta")->Set(-2);
  registry.GetHistogram("gamma")->Add(10);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("alpha = 3"), std::string::npos);
  EXPECT_NE(report.find("beta = -2"), std::string::npos);
  EXPECT_NE(report.find("gamma"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentLookupIsSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared")->Increment();
        registry.GetCounter("own" + std::to_string(t))->Increment();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.GetCounter("shared")->value(), 8000);
}

TEST(MetricsRegistryTest, DefaultRegistryIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

TEST(PrometheusTextTest, CountersGetTotalSuffixAndTypeLine) {
  MetricsRegistry registry;
  registry.GetCounter("server.requests")->Increment(42);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE server_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("server_requests_total 42\n"), std::string::npos);
}

TEST(PrometheusTextTest, NamesAreSanitized) {
  MetricsRegistry registry;
  registry.GetGauge("queue.depth-live")->Set(5);
  const std::string text = registry.PrometheusText();
  // '.' and '-' are not legal in Prometheus metric names.
  EXPECT_NE(text.find("queue_depth_live 5\n"), std::string::npos);
  EXPECT_EQ(text.find("queue.depth-live"), std::string::npos);
}

TEST(PrometheusTextTest, HistogramsRenderAsSummaries) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("rpc.latency.us");
  for (int i = 1; i <= 100; ++i) hist->Add(i);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE rpc_latency_us summary"), std::string::npos);
  EXPECT_NE(text.find("rpc_latency_us{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("rpc_latency_us{quantile=\"0.95\"} "),
            std::string::npos);
  EXPECT_NE(text.find("rpc_latency_us{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(text.find("rpc_latency_us_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("rpc_latency_us_sum "), std::string::npos);
}

TEST(PrometheusTextTest, HelpLinesPrecedeTypeLines) {
  MetricsRegistry registry;
  registry.GetCounter("server.requests", "Requests accepted by the server")
      ->Increment(3);
  const std::string text = registry.PrometheusText();
  const std::size_t help = text.find(
      "# HELP server_requests_total Requests accepted by the server\n");
  const std::size_t type =
      text.find("# TYPE server_requests_total counter\n");
  ASSERT_NE(help, std::string::npos) << text;
  ASSERT_NE(type, std::string::npos) << text;
  EXPECT_LT(help, type);
}

TEST(PrometheusTextTest, MissingHelpGetsGeneratedDefault) {
  MetricsRegistry registry;
  registry.GetGauge("queue.depth")->Set(5);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP queue_depth rtrec gauge queue_depth\n"),
            std::string::npos)
      << text;
}

TEST(PrometheusTextTest, FirstNonEmptyHelpStringWins) {
  MetricsRegistry registry;
  registry.GetCounter("x");  // No help yet.
  registry.GetCounter("x", "the real help");
  registry.GetCounter("x", "a different help");  // Ignored: already set.
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP x_total the real help\n"), std::string::npos);
  EXPECT_EQ(text.find("a different help"), std::string::npos);
}

TEST(PrometheusTextTest, HelpEscapesBackslashAndNewline) {
  MetricsRegistry registry;
  registry.GetCounter("weird", "line1\nline2\\end");
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP weird_total line1\\nline2\\\\end\n"),
            std::string::npos)
      << text;
}

TEST(PrometheusTextTest, NativeHistogramsExportCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("rpc.latency.us");
  for (int i = 1; i <= 100; ++i) hist->Add(i);

  MetricsRegistry::ExportOptions options;
  options.native_histograms = true;
  const std::string text = registry.PrometheusText(options);

  // The summary family is still there...
  EXPECT_NE(text.find("# TYPE rpc_latency_us summary"), std::string::npos);
  // ...and a native histogram family rides alongside under _hist.
  EXPECT_NE(text.find("# TYPE rpc_latency_us_hist histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rpc_latency_us_hist_bucket{le=\""), std::string::npos);
  EXPECT_NE(text.find("rpc_latency_us_hist_bucket{le=\"+Inf\"} 100\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rpc_latency_us_hist_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("rpc_latency_us_hist_sum 5050\n"), std::string::npos);

  // Bucket counts are cumulative (non-decreasing in le order).
  std::uint64_t prev = 0;
  std::size_t pos = 0;
  const std::string needle = "rpc_latency_us_hist_bucket{le=\"";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const std::size_t sp = text.find(' ', pos);
    ASSERT_NE(sp, std::string::npos);
    const std::uint64_t cumulative =
        std::strtoull(text.c_str() + sp + 1, nullptr, 10);
    EXPECT_GE(cumulative, prev);
    prev = cumulative;
    pos = sp;
  }
  EXPECT_EQ(prev, 100u);
}

TEST(PrometheusTextTest, DefaultScrapeOmitsNativeHistograms) {
  MetricsRegistry registry;
  registry.GetHistogram("rpc.latency.us")->Add(1);
  const std::string text = registry.PrometheusText();
  EXPECT_EQ(text.find("_hist_bucket"), std::string::npos);
}

TEST(PrometheusTextTest, EmptyRegistryRendersEmpty) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.PrometheusText().empty());
}

TEST(MetricsRegistryTest, ReportDoesNotHoldLockAgainstLookups) {
  // Regression guard for the snapshot-then-format fix: a scrape running
  // concurrently with hot-path lookups must not deadlock or crash. A
  // timing assertion would flake; existence + concurrent progress is
  // the contract worth pinning.
  MetricsRegistry registry;
  for (int i = 0; i < 50; ++i) {
    registry.GetHistogram("h" + std::to_string(i))->Add(i);
  }
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load()) {
      (void)registry.Report();
      (void)registry.PrometheusText();
    }
  });
  for (int i = 0; i < 20000; ++i) {
    registry.GetCounter("hot")->Increment();
  }
  stop.store(true);
  scraper.join();
  EXPECT_EQ(registry.GetCounter("hot")->value(), 20000);
}

}  // namespace
}  // namespace rtrec
