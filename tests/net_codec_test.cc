#include "net/wire.h"

#include <gtest/gtest.h>

#include <string>

namespace rtrec {
namespace {

// Feeds `bytes` to a fresh decoder and expects exactly one frame.
Frame DecodeOne(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.Append(bytes);
  StatusOr<Frame> frame = decoder.Next();
  EXPECT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_TRUE(decoder.Next().status().IsNotFound())
      << "one message must decode to exactly one frame";
  return frame.ok() ? *frame : Frame{};
}

// --- Roundtrips, one per message type --------------------------------------

TEST(NetCodecTest, PingPongAckRoundtrip) {
  for (auto [encoded, type] :
       {std::pair{EncodePingRequest(7), MessageType::kPingRequest},
        std::pair{EncodePongResponse(8), MessageType::kPongResponse},
        std::pair{EncodeAckResponse(9), MessageType::kAckResponse}}) {
    Frame frame = DecodeOne(encoded);
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.version, kWireVersion);
    EXPECT_TRUE(frame.body.empty());
  }
  EXPECT_EQ(DecodeOne(EncodePingRequest(7)).request_id, 7u);
}

TEST(NetCodecTest, RecommendRequestRoundtrip) {
  RecRequest request;
  request.user = 0xDEADBEEFCAFEF00Dull;
  request.seed_videos = {1, 0xFFFFFFFFFFFFFFFFull, 42};
  request.top_n = 25;
  request.now = -123456789;  // Negative timestamps must survive.
  Frame frame = DecodeOne(EncodeRecommendRequest(99, request));
  EXPECT_EQ(frame.request_id, 99u);
  auto decoded = DecodeRecommendRequest(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->user, request.user);
  EXPECT_EQ(decoded->seed_videos, request.seed_videos);
  EXPECT_EQ(decoded->top_n, request.top_n);
  EXPECT_EQ(decoded->now, request.now);
}

TEST(NetCodecTest, RecommendRequestNoSeedsRoundtrip) {
  RecRequest request;
  request.user = 5;
  auto decoded = DecodeRecommendRequest(DecodeOne(EncodeRecommendRequest(1, request)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->seed_videos.empty());
}

TEST(NetCodecTest, ObserveRequestRoundtrip) {
  UserAction action;
  action.user = 12;
  action.video = 34;
  action.type = ActionType::kPlayTime;
  action.view_fraction = 0.8125;
  action.time = 1700000000000;
  auto decoded = DecodeObserveRequest(DecodeOne(EncodeObserveRequest(2, action)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, action);
}

TEST(NetCodecTest, RegisterProfileRequestRoundtrip) {
  UserProfile profile;
  profile.registered = true;
  profile.gender = Gender::kFemale;
  profile.age = AgeBucket::k35To49;
  profile.education = Education::kPostgraduate;
  auto decoded = DecodeRegisterProfileRequest(
      DecodeOne(EncodeRegisterProfileRequest(3, 77, profile)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->user, 77u);
  EXPECT_EQ(decoded->profile, profile);
}

TEST(NetCodecTest, RecommendResponseRoundtrip) {
  std::vector<ScoredVideo> results = {
      {.video = 10, .score = 0.5}, {.video = 11, .score = -2.25}};
  auto decoded =
      DecodeRecommendResponse(DecodeOne(EncodeRecommendResponse(4, results)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, results);

  auto empty = DecodeRecommendResponse(
      DecodeOne(EncodeRecommendResponse(5, {})));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(NetCodecTest, RecommendResponseDegradedFlagRoundtrip) {
  std::vector<ScoredVideo> results = {{.video = 10, .score = 0.5}};
  auto reply = DecodeRecommendReply(DecodeOne(
      EncodeRecommendResponse(4, results, kRecommendFlagDegraded)));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->degraded());
  EXPECT_EQ(reply->flags, kRecommendFlagDegraded);
  EXPECT_EQ(reply->videos, results);

  auto normal =
      DecodeRecommendReply(DecodeOne(EncodeRecommendResponse(5, results)));
  ASSERT_TRUE(normal.ok());
  EXPECT_FALSE(normal->degraded());
  EXPECT_EQ(normal->flags, 0);

  // The flag-discarding legacy decode still sees the same videos.
  auto videos = DecodeRecommendResponse(DecodeOne(
      EncodeRecommendResponse(6, results, kRecommendFlagDegraded)));
  ASSERT_TRUE(videos.ok());
  EXPECT_EQ(*videos, results);
}

TEST(NetCodecTest, RecommendResponseUnknownFlagBitsTolerated) {
  // A newer server may set flag bits this client does not know; they
  // must decode cleanly (forward compatibility), preserved verbatim.
  std::vector<ScoredVideo> results = {{.video = 3, .score = 1.0}};
  auto reply = DecodeRecommendReply(
      DecodeOne(EncodeRecommendResponse(7, results, 0xFE)));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->flags, 0xFE);
  EXPECT_FALSE(reply->degraded());  // Bit 0 is clear.
  EXPECT_EQ(reply->videos, results);
}

TEST(NetCodecTest, RecommendReplyEmptyBodyIsTypedError) {
  Frame frame;
  frame.type = MessageType::kRecommendResponse;
  frame.body = "";  // Not even the flags byte.
  EXPECT_TRUE(DecodeRecommendReply(frame).status().IsInvalidArgument());
}

TEST(NetCodecTest, ErrorResponseRoundtrip) {
  auto decoded = DecodeErrorResponse(DecodeOne(
      EncodeErrorResponse(6, WireError::kOverloaded, "shed: cap reached")));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, WireError::kOverloaded);
  EXPECT_EQ(decoded->message, "shed: cap reached");
  EXPECT_TRUE(WireErrorToStatus(*decoded).IsUnavailable());
}

TEST(NetCodecTest, ErrorResponseMessageTruncatesAtU16) {
  const std::string huge(100'000, 'x');
  auto decoded = DecodeErrorResponse(
      DecodeOne(EncodeErrorResponse(1, WireError::kInternal, huge)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->message.size(), 0xFFFFu);
}

// --- Streaming / framing behaviour -----------------------------------------

TEST(NetCodecTest, DecoderReassemblesByteByByte) {
  RecRequest request;
  request.user = 1;
  request.seed_videos = {2, 3};
  const std::string bytes = EncodeRecommendRequest(11, request);
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Append(std::string_view(&bytes[i], 1));
    EXPECT_TRUE(decoder.Next().status().IsNotFound())
        << "frame must not surface before its last byte (i=" << i << ")";
  }
  decoder.Append(std::string_view(&bytes.back(), 1));
  StatusOr<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(DecodeRecommendRequest(*frame).ok());
}

TEST(NetCodecTest, DecoderDrainsBackToBackFrames) {
  std::string bytes = EncodePingRequest(1);
  bytes += EncodeAckResponse(2);
  bytes += EncodePongResponse(3);
  FrameDecoder decoder;
  decoder.Append(bytes);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    StatusOr<Frame> frame = decoder.Next();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->request_id, id);
  }
  EXPECT_TRUE(decoder.Next().status().IsNotFound());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

// --- Malformed input: typed errors, never crashes --------------------------

TEST(NetCodecTest, TruncatedHeaderIsJustIncomplete) {
  FrameDecoder decoder;
  decoder.Append(std::string("\x00\x00", 2));  // Half a length prefix.
  EXPECT_TRUE(decoder.Next().status().IsNotFound());
}

TEST(NetCodecTest, OversizedLengthIsCorruption) {
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  // Length prefix claims 2 MiB.
  decoder.Append(std::string("\x00\x20\x00\x00", 4));
  EXPECT_EQ(decoder.Next().status().code(), StatusCode::kCorruption);
}

TEST(NetCodecTest, UndersizedLengthIsCorruption) {
  FrameDecoder decoder;
  // Length prefix claims 3 bytes — below the 10-byte frame header.
  decoder.Append(std::string("\x00\x00\x00\x03", 4));
  EXPECT_EQ(decoder.Next().status().code(), StatusCode::kCorruption);
}

TEST(NetCodecTest, BadVersionSurvivesFramingForCallerPolicy) {
  // The decoder hands bad-version frames through; transports answer
  // with a typed BAD_VERSION error (see net_server_test).
  std::string bytes = EncodePingRequest(1);
  bytes[4] = 9;  // Version byte.
  Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.version, 9);
}

TEST(NetCodecTest, GarbagePayloadYieldsTypedErrors) {
  Frame frame;
  frame.type = MessageType::kRecommendRequest;
  frame.body = "garbage";
  EXPECT_TRUE(DecodeRecommendRequest(frame).status().IsInvalidArgument());

  frame.type = MessageType::kObserveRequest;
  EXPECT_TRUE(DecodeObserveRequest(frame).status().IsInvalidArgument());

  frame.type = MessageType::kRegisterProfileRequest;
  EXPECT_TRUE(DecodeRegisterProfileRequest(frame).status().IsInvalidArgument());

  frame.type = MessageType::kRecommendResponse;
  EXPECT_TRUE(DecodeRecommendResponse(frame).status().IsInvalidArgument());

  frame.type = MessageType::kErrorResponse;
  EXPECT_TRUE(DecodeErrorResponse(frame).status().IsInvalidArgument());
}

TEST(NetCodecTest, TruncatedBodyIsTypedError) {
  RecRequest request;
  request.user = 1;
  request.seed_videos = {2, 3, 4};
  std::string bytes = EncodeRecommendRequest(1, request);
  // Claim the same header but chop one seed off the body, fixing up the
  // length prefix so the frame still parses structurally.
  std::string shorter(bytes, 0, bytes.size() - 8);
  const std::uint32_t payload =
      static_cast<std::uint32_t>(shorter.size() - kLengthPrefixBytes);
  for (int i = 0; i < 4; ++i) {
    shorter[i] = static_cast<char>(payload >> (24 - 8 * i));
  }
  auto decoded = DecodeRecommendRequest(DecodeOne(shorter));
  EXPECT_TRUE(decoded.status().IsInvalidArgument());
}

TEST(NetCodecTest, TrailingBytesAreTypedError) {
  UserAction action;
  action.user = 1;
  action.video = 2;
  Frame frame = DecodeOne(EncodeObserveRequest(1, action));
  frame.body += '\x00';
  EXPECT_TRUE(DecodeObserveRequest(frame).status().IsInvalidArgument());
}

TEST(NetCodecTest, OutOfRangeEnumsAreTypedError) {
  UserAction action;
  action.user = 1;
  action.video = 2;
  std::string bytes = EncodeObserveRequest(1, action);
  bytes[4 + 10 + 16] = 50;  // Action-type byte: 50 is no ActionType.
  auto decoded = DecodeObserveRequest(DecodeOne(bytes));
  EXPECT_TRUE(decoded.status().IsInvalidArgument());

  UserProfile profile;
  std::string profile_bytes = EncodeRegisterProfileRequest(1, 1, profile);
  profile_bytes[4 + 10 + 9] = 100;  // Gender byte.
  auto profile_decoded =
      DecodeRegisterProfileRequest(DecodeOne(profile_bytes));
  EXPECT_TRUE(profile_decoded.status().IsInvalidArgument());
}

TEST(NetCodecTest, WrongMessageTypeIsTypedError) {
  Frame frame = DecodeOne(EncodePingRequest(1));
  EXPECT_TRUE(DecodeRecommendRequest(frame).status().IsInvalidArgument());
  EXPECT_TRUE(DecodeErrorResponse(frame).status().IsInvalidArgument());
}

TEST(NetCodecTest, SeedCountCapRejectsAbsurdClaims) {
  // A frame whose seed count claims more entries than the body holds
  // (and more than the cap) must fail cleanly instead of allocating.
  Frame frame;
  frame.type = MessageType::kRecommendRequest;
  std::string body;
  for (int i = 0; i < 8; ++i) body += '\x00';  // user
  for (int i = 0; i < 8; ++i) body += '\x00';  // now
  for (int i = 0; i < 4; ++i) body += '\x00';  // top_n
  body += "\xFF\xFF\xFF\xFF";                  // 4 billion seeds
  frame.body = body;
  EXPECT_TRUE(DecodeRecommendRequest(frame).status().IsInvalidArgument());
}

// --- Wire v2 (docs/WIRE_PROTOCOL.md §5-§7) ---------------------------------
// Conformance checklist items below cite the spec section they verify.

TEST(NetCodecTest, HelloRequestRoundtripAndV1FrameVersion) {
  // §5.1: Hello travels in a *v1* frame so any server can parse it.
  HelloRequest hello;
  hello.min_version = 1;
  hello.max_version = kMaxWireVersion;
  hello.features = 0xA5A5A5A5u;
  Frame frame = DecodeOne(EncodeHelloRequest(11, hello));
  EXPECT_EQ(frame.type, MessageType::kHelloRequest);
  EXPECT_EQ(frame.version, kWireVersion);  // NOT kWireVersionV2.
  EXPECT_EQ(frame.request_id, 11u);
  auto decoded = DecodeHelloRequest(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->min_version, 1);
  EXPECT_EQ(decoded->max_version, kMaxWireVersion);
  EXPECT_EQ(decoded->features, 0xA5A5A5A5u);
}

TEST(NetCodecTest, HelloRequestRejectsBadVersionRange) {
  // §5.2: min_version 0 and min > max are malformed.
  HelloRequest zero_min;
  zero_min.min_version = 0;
  EXPECT_TRUE(DecodeHelloRequest(DecodeOne(EncodeHelloRequest(1, zero_min)))
                  .status()
                  .IsInvalidArgument());
  HelloRequest inverted;
  inverted.min_version = 3;
  inverted.max_version = 1;
  EXPECT_TRUE(DecodeHelloRequest(DecodeOne(EncodeHelloRequest(1, inverted)))
                  .status()
                  .IsInvalidArgument());
}

TEST(NetCodecTest, HelloResponseRoundtrip) {
  // §5.3: reply carries the chosen version plus capability hints.
  HelloReply reply;
  reply.version = kWireVersionV2;
  reply.max_in_flight_hint = 256;
  reply.max_batch = static_cast<std::uint32_t>(kMaxBatchedRequests);
  Frame frame = DecodeOne(EncodeHelloResponse(12, reply));
  EXPECT_EQ(frame.type, MessageType::kHelloResponse);
  EXPECT_EQ(frame.version, kWireVersion);  // Hello pair is v1-framed.
  auto decoded = DecodeHelloResponse(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, kWireVersionV2);
  EXPECT_EQ(decoded->max_in_flight_hint, 256u);
  EXPECT_EQ(decoded->max_batch, kMaxBatchedRequests);
}

TEST(NetCodecTest, HelloResponseRejectsImpossibleVersion) {
  // §5.3: version must be in [1, kMaxWireVersion].
  HelloReply reply;
  reply.version = 0;
  EXPECT_TRUE(DecodeHelloResponse(DecodeOne(EncodeHelloResponse(1, reply)))
                  .status()
                  .IsInvalidArgument());
  reply.version = kMaxWireVersion + 1;
  EXPECT_TRUE(DecodeHelloResponse(DecodeOne(EncodeHelloResponse(1, reply)))
                  .status()
                  .IsInvalidArgument());
}

TEST(NetCodecTest, BatchRecommendRequestRoundtripIsV2Framed) {
  // §7.1: the batch request is a v2 frame carrying back-to-back
  // Recommend bodies under one request id.
  std::vector<RecRequest> batch(3);
  batch[0].user = 1;
  batch[0].seed_videos = {10, 20};
  batch[0].top_n = 5;
  batch[1].user = 2;
  batch[1].now = -42;
  batch[2].user = 0xFFFFFFFFFFFFFFFFull;
  batch[2].top_n = 1;
  Frame frame = DecodeOne(EncodeBatchRecommendRequest(77, batch));
  EXPECT_EQ(frame.type, MessageType::kBatchRecommendRequest);
  EXPECT_EQ(frame.version, kWireVersionV2);
  EXPECT_EQ(frame.request_id, 77u);
  auto decoded = DecodeBatchRecommendRequest(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].seed_videos, batch[0].seed_videos);
  EXPECT_EQ((*decoded)[1].now, -42);
  EXPECT_EQ((*decoded)[2].user, 0xFFFFFFFFFFFFFFFFull);
}

TEST(NetCodecTest, BatchRecommendRequestRejectsEmptyAndOversize) {
  // §7.1: count must be in [1, kMaxBatchedRequests].
  Frame empty;
  empty.type = MessageType::kBatchRecommendRequest;
  empty.version = kWireVersionV2;
  empty.body = std::string(4, '\x00');  // count = 0
  EXPECT_TRUE(DecodeBatchRecommendRequest(empty).status().IsInvalidArgument());

  std::vector<RecRequest> too_many(kMaxBatchedRequests + 1);
  Frame oversize = DecodeOne(EncodeBatchRecommendRequest(1, too_many));
  EXPECT_TRUE(
      DecodeBatchRecommendRequest(oversize).status().IsInvalidArgument());
}

TEST(NetCodecTest, BatchRecommendResponseRoundtripWithMixedOutcomes) {
  // §7.2: per-item error codes; failed items carry zero videos.
  std::vector<BatchRecommendItem> items(3);
  items[0].reply.videos = {{100, 0.9}, {101, 0.5}};
  items[1].error = static_cast<std::uint8_t>(WireError::kBadRequest);
  items[1].reply.videos = {{999, 1.0}};  // Must NOT survive encoding.
  items[2].reply.flags = kRecommendFlagDegraded;
  items[2].reply.videos = {{102, 0.1}};
  Frame frame = DecodeOne(EncodeBatchRecommendResponse(88, items));
  EXPECT_EQ(frame.type, MessageType::kBatchRecommendResponse);
  EXPECT_EQ(frame.version, kWireVersionV2);
  auto decoded = DecodeBatchRecommendResponse(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_TRUE((*decoded)[0].ok());
  ASSERT_EQ((*decoded)[0].reply.videos.size(), 2u);
  EXPECT_EQ((*decoded)[0].reply.videos[0].video, 100u);
  EXPECT_FALSE((*decoded)[1].ok());
  EXPECT_EQ((*decoded)[1].error,
            static_cast<std::uint8_t>(WireError::kBadRequest));
  EXPECT_TRUE((*decoded)[1].reply.videos.empty());
  EXPECT_TRUE((*decoded)[2].ok());
  EXPECT_TRUE((*decoded)[2].reply.degraded());
}

TEST(NetCodecTest, V2FramesRejectTruncationAndTrailingGarbage) {
  HelloRequest hello;
  std::string bytes = EncodeHelloRequest(5, hello);
  Frame truncated = DecodeOne(bytes);
  truncated.body = truncated.body.substr(0, truncated.body.size() - 1);
  EXPECT_TRUE(DecodeHelloRequest(truncated).status().IsInvalidArgument());
  Frame padded = DecodeOne(bytes);
  padded.body += '\x00';
  EXPECT_TRUE(DecodeHelloRequest(padded).status().IsInvalidArgument());

  std::vector<RecRequest> batch(2);
  Frame batch_padded = DecodeOne(EncodeBatchRecommendRequest(6, batch));
  batch_padded.body += '\x00';
  EXPECT_TRUE(
      DecodeBatchRecommendRequest(batch_padded).status().IsInvalidArgument());
}

// --- Trace extension (docs/WIRE_PROTOCOL.md §2.1) --------------------------

TEST(NetCodecTest, StampTraceExtensionRoundtrip) {
  // §2.1: stamping a pre-encoded frame inserts {trace_id, flags, hop}
  // between the request id and the body; the decoder strips it back out
  // and the body decodes exactly as if never stamped.
  RecRequest request;
  request.user = 0xDEADBEEFu;
  request.seed_videos = {1, 2, 3};
  std::string bytes = EncodeRecommendRequest(21, request);
  const std::string unstamped = bytes;
  StampTraceExtension(&bytes, 0x0123456789ABCDEFull, kTraceFlagSampled,
                      /*hop=*/2);
  EXPECT_EQ(bytes.size(), unstamped.size() + kTraceExtensionBytes);

  Frame frame = DecodeOne(bytes);
  EXPECT_TRUE(frame.has_trace);
  EXPECT_EQ(frame.trace_id, 0x0123456789ABCDEFull);
  EXPECT_EQ(frame.trace_flags, kTraceFlagSampled);
  EXPECT_EQ(frame.trace_hop, 2);
  // The version byte is masked back to the plain protocol version.
  EXPECT_EQ(frame.version, DecodeOne(unstamped).version);
  EXPECT_EQ(frame.request_id, 21u);
  auto decoded = DecodeRecommendRequest(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->user, request.user);
  EXPECT_EQ(decoded->seed_videos, request.seed_videos);
}

TEST(NetCodecTest, UnstampedFramesCarryNoTrace) {
  Frame frame = DecodeOne(EncodePingRequest(1));
  EXPECT_FALSE(frame.has_trace);
  EXPECT_EQ(frame.trace_id, 0u);
}

TEST(NetCodecTest, AppendFrameEmitsTraceExtension) {
  Frame frame;
  frame.version = kWireVersionV2;
  frame.type = MessageType::kPingRequest;
  frame.request_id = 9;
  frame.has_trace = true;
  frame.trace_id = 0xFFull;
  frame.trace_flags = kTraceFlagSampled;
  frame.trace_hop = 1;
  std::string bytes;
  AppendFrame(frame, &bytes);
  // On the wire the version byte carries the trace bit...
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[4]),
            kWireVersionV2 | kFrameVersionTraceBit);
  // ...and the decoder strips it back out.
  Frame decoded = DecodeOne(bytes);
  EXPECT_EQ(decoded.version, kWireVersionV2);
  EXPECT_TRUE(decoded.has_trace);
  EXPECT_EQ(decoded.trace_id, 0xFFull);
  EXPECT_EQ(decoded.trace_hop, 1);
}

TEST(NetCodecTest, TraceBitWithTruncatedExtensionIsCorruption) {
  // §2.1: a frame announcing the extension must have at least 10 body
  // bytes to hold it; anything shorter is framing corruption.
  std::string bytes = EncodePingRequest(1);  // Zero-length body.
  bytes[4] = static_cast<char>(bytes[4] | kFrameVersionTraceBit);
  FrameDecoder decoder;
  decoder.Append(bytes);
  EXPECT_EQ(decoder.Next().status().code(), StatusCode::kCorruption);
}

TEST(NetCodecTest, StampedStreamStaysInFraming) {
  // Back-to-back frames where only the middle one is stamped: the
  // length-prefix patch must keep the stream parseable.
  std::string middle = EncodeAckResponse(2);
  StampTraceExtension(&middle, 0xABCDull, kTraceFlagSampled, 0);
  std::string bytes = EncodePingRequest(1);
  bytes += middle;
  bytes += EncodePongResponse(3);
  FrameDecoder decoder;
  decoder.Append(bytes);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    StatusOr<Frame> frame = decoder.Next();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->request_id, id);
    EXPECT_EQ(frame->has_trace, id == 2);
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace rtrec
