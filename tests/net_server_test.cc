#include "net/rec_server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/trace.h"
#include "net/rec_client.h"
#include "net/socket.h"
#include "net/stats_server.h"
#include "net/wire.h"
#include "obs/span_collector.h"

namespace rtrec {
namespace {

/// Disarms every fault point on scope exit, so a failing ASSERT cannot
/// leak an armed fault into later tests.
struct FaultGuard {
  ~FaultGuard() { FaultInjector::Instance().DisarmAll(); }
};

UserAction Play(UserId user, VideoId video, Timestamp t) {
  UserAction action;
  action.user = user;
  action.video = video;
  action.type = ActionType::kPlayTime;
  action.view_fraction = 1.0;
  action.time = t;
  return action;
}

VideoTypeResolver OneType() {
  return [](VideoId) -> VideoType { return 0; };
}

RecommendationService::Options FastService() {
  RecommendationService::Options options;
  options.engine.model.num_factors = 8;
  return options;
}

RecommendationService::Options WithMetrics(RecommendationService::Options o,
                                           MetricsRegistry* metrics) {
  o.metrics = metrics;
  return o;
}

/// A service + running server on an ephemeral loopback port. The service
/// shares the server's registry, so quality.* metrics are live too.
struct LiveServer {
  explicit LiveServer(RecServer::Options options = {})
      : service(OneType(), WithMetrics(FastService(), &metrics)) {
    options.port = 0;
    options.metrics = &metrics;
    server = std::make_unique<RecServer>(&service, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  RecClient::Options ClientOptions() const {
    RecClient::Options options;
    options.port = server->port();
    options.request_timeout_ms = 5000;
    return options;
  }

  MetricsRegistry metrics;
  RecommendationService service;
  std::unique_ptr<RecServer> server;
};

/// Raw-socket peer for protocol-level tests: writes arbitrary bytes,
/// reads one frame (or EOF) with a deadline.
struct RawPeer {
  explicit RawPeer(std::uint16_t port) {
    auto connected = ConnectTcp("127.0.0.1", port, 1000);
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    if (connected.ok()) fd = std::move(*connected);
  }

  void Send(const std::string& bytes) {
    ASSERT_EQ(write(fd.get(), bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads until one frame decodes. EOF surfaces as Unavailable.
  StatusOr<Frame> ReadFrame(int timeout_ms = 2000) {
    char buf[4096];
    while (true) {
      StatusOr<Frame> frame = decoder.Next();
      if (frame.ok() || !frame.status().IsNotFound()) return frame;
      RTREC_RETURN_IF_ERROR(WaitReady(fd.get(), /*for_read=*/true,
                                      timeout_ms));
      ssize_t n = read(fd.get(), buf, sizeof(buf));
      if (n == 0) return Status::Unavailable("EOF");
      if (n < 0) return Status::Internal("read failed");
      decoder.Append(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

  /// True if the server closes the connection within the deadline.
  bool WaitForClose(int timeout_ms = 2000) {
    StatusOr<Frame> frame = ReadFrame(timeout_ms);
    return !frame.ok() && frame.status().message() == "EOF";
  }

  UniqueFd fd;
  FrameDecoder decoder;
};

// ---------------------------------------------------------------------------

TEST(RecServerTest, PingPongOverLoopback) {
  LiveServer live;
  RecClient client(live.ClientOptions());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(live.metrics.GetCounter("net.server.connections.accepted")->value(),
            1);
}

TEST(RecServerTest, FullRpcSurfaceOverWire) {
  LiveServer live;
  RecClient client(live.ClientOptions());

  UserProfile profile;
  profile.registered = true;
  profile.gender = Gender::kMale;
  profile.age = AgeBucket::k18To24;
  EXPECT_TRUE(client.RegisterProfile(1, profile).ok());

  // Observations over the wire heat videos 100/101 globally.
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    EXPECT_TRUE(client.Observe(Play(user, 100, t += 1000)).ok());
    EXPECT_TRUE(client.Observe(Play(user, 101, t += 1000)).ok());
  }

  // A cold user still gets a page (hot-video fallback), like the
  // in-process service contract.
  RecRequest request;
  request.user = 999;
  request.top_n = 5;
  request.now = t;
  auto recs = client.Recommend(request);
  ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  ASSERT_FALSE(recs->empty());
  EXPECT_TRUE((*recs)[0].video == 100 || (*recs)[0].video == 101);
}

TEST(RecServerTest, ConcurrentClientsAllGetCorrectResponses) {
  LiveServer live;
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    live.service.Observe(Play(user, 100, t += 1000));
  }

  constexpr int kClients = 8;
  constexpr int kCallsPerClient = 50;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&live, &ok_count] {
      RecClient client(live.ClientOptions());
      for (int call = 0; call < kCallsPerClient; ++call) {
        RecRequest request;
        request.user = 999;
        request.top_n = 3;
        request.now = 100000;
        auto recs = client.Recommend(request);
        if (recs.ok() && !recs->empty() && (*recs)[0].video == 100) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok_count.load(), kClients * kCallsPerClient);
  EXPECT_EQ(live.metrics.GetCounter("net.server.requests")->value(),
            kClients * kCallsPerClient);
}

TEST(RecServerTest, AdmissionControlShedsWithTypedOverloaded) {
  RecServer::Options options;
  options.max_in_flight = 1;
  options.num_workers = 4;
  options.handler_delay_for_test_ms = 3;  // Hold the slot measurably long.
  LiveServer live(options);

  constexpr int kClients = 4;
  constexpr int kCallsPerClient = 30;
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      RecClient client(live.ClientOptions());
      for (int call = 0; call < kCallsPerClient; ++call) {
        RecRequest request;
        request.user = 1;
        request.top_n = 3;
        auto recs = client.Recommend(request);
        if (recs.ok()) {
          ok_count.fetch_add(1);
        } else if (recs.status().IsUnavailable() &&
                   recs.status().message().find("OVERLOADED") !=
                       std::string::npos) {
          shed_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Excess load must shed with the typed error — and the shed counter
  // must agree — while admitted requests still succeed.
  EXPECT_GT(shed_count.load(), 0);
  EXPECT_GT(ok_count.load(), 0);
  EXPECT_EQ(live.metrics.GetCounter("net.server.requests.shed")->value(),
            shed_count.load());
  EXPECT_EQ(ok_count.load() + shed_count.load(), kClients * kCallsPerClient);
}

TEST(RecServerTest, TruncatedFrameGetsTypedErrorAndDisconnect) {
  LiveServer live;
  RawPeer peer(live.server->port());
  // Length prefix promises 2 MiB (over the 1 MiB default cap): the
  // stream is structurally corrupt.
  peer.Send(std::string("\x00\x20\x00\x00", 4));
  StatusOr<Frame> frame = peer.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, MessageType::kErrorResponse);
  auto error = DecodeErrorResponse(*frame);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, WireError::kMalformedFrame);
  EXPECT_TRUE(peer.WaitForClose());
  EXPECT_GE(live.metrics.GetCounter("net.server.protocol_errors")->value(), 1);
}

TEST(RecServerTest, GarbageBodyGetsTypedErrorAndConnectionSurvives) {
  LiveServer live;
  RawPeer peer(live.server->port());
  Frame garbage;
  garbage.type = MessageType::kRecommendRequest;
  garbage.request_id = 42;
  garbage.body = "not a recommend request";
  std::string bytes;
  AppendFrame(garbage, &bytes);
  peer.Send(bytes);

  StatusOr<Frame> frame = peer.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, MessageType::kErrorResponse);
  EXPECT_EQ(frame->request_id, 42u);
  auto error = DecodeErrorResponse(*frame);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, WireError::kMalformedFrame);

  // Framing stayed intact, so the same connection keeps working.
  peer.Send(EncodePingRequest(43));
  StatusOr<Frame> pong = peer.ReadFrame();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->type, MessageType::kPongResponse);
  EXPECT_EQ(pong->request_id, 43u);
}

TEST(RecServerTest, BadVersionGetsTypedErrorAndDisconnect) {
  LiveServer live;
  RawPeer peer(live.server->port());
  std::string bytes = EncodePingRequest(7);
  bytes[4] = 9;  // Future protocol version.
  peer.Send(bytes);
  StatusOr<Frame> frame = peer.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  auto error = DecodeErrorResponse(*frame);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, WireError::kBadVersion);
  EXPECT_TRUE(peer.WaitForClose());
}

TEST(RecServerTest, UnknownTypeGetsTypedErrorAndConnectionSurvives) {
  LiveServer live;
  RawPeer peer(live.server->port());
  Frame odd;
  odd.type = static_cast<MessageType>(0x7F);
  odd.request_id = 5;
  std::string bytes;
  AppendFrame(odd, &bytes);
  peer.Send(bytes);
  StatusOr<Frame> frame = peer.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  auto error = DecodeErrorResponse(*frame);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, WireError::kUnknownType);

  peer.Send(EncodePingRequest(6));
  StatusOr<Frame> pong = peer.ReadFrame();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->type, MessageType::kPongResponse);
}

TEST(RecServerTest, IdleConnectionsAreReaped) {
  RecServer::Options options;
  options.idle_timeout_ms = 100;
  LiveServer live(options);
  RawPeer peer(live.server->port());
  // Say nothing; the sweep (every epoll tick) must close us.
  EXPECT_TRUE(peer.WaitForClose(/*timeout_ms=*/3000));
  EXPECT_GE(
      live.metrics.GetCounter("net.server.connections.idle_closed")->value(),
      1);
}

TEST(RecServerTest, CleanShutdownWithConnectionsOpen) {
  LiveServer live;
  std::vector<std::unique_ptr<RecClient>> clients;
  for (int i = 0; i < 4; ++i) {
    auto client = std::make_unique<RecClient>(live.ClientOptions());
    ASSERT_TRUE(client->Ping().ok());
    clients.push_back(std::move(client));
  }
  EXPECT_EQ(live.metrics.GetGauge("net.server.connections.active")->value(),
            4);
  live.server->Stop();  // Must return promptly despite open connections.
  EXPECT_FALSE(live.server->running());
  EXPECT_EQ(live.metrics.GetGauge("net.server.connections.active")->value(),
            0);
  // Clients observe a dead server, not a hang.
  RecClient::Options no_retry = live.ClientOptions();
  no_retry.auto_reconnect = false;
  no_retry.connect_timeout_ms = 200;
  RecClient probe(no_retry);
  EXPECT_FALSE(probe.Ping().ok());
}

TEST(RecServerTest, StopIsIdempotentAndRestartWorks) {
  LiveServer live;
  const std::uint16_t first_port = live.server->port();
  live.server->Stop();
  live.server->Stop();  // Second stop is a no-op.
  Status restarted = live.server->Start();
  ASSERT_TRUE(restarted.ok()) << restarted.ToString();
  EXPECT_NE(live.server->port(), 0);
  (void)first_port;  // Ephemeral: the new port may or may not differ.
  RecClient client(live.ClientOptions());
  EXPECT_TRUE(client.Ping().ok());
  live.server->Stop();
}

TEST(RecServerTest, ByteAtATimeRequestAndOneByteWindowResponse) {
  // Exercises both directions of incremental framing: the server must
  // reassemble a request that arrives one byte per segment, and the
  // response must decode through a 1-byte read window on our side.
  LiveServer live;
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    live.service.Observe(Play(user, 100, t += 1000));
  }

  RawPeer peer(live.server->port());
  RecRequest request;
  request.user = 999;
  request.top_n = 3;
  request.now = t;
  const std::string bytes = EncodeRecommendRequest(77, request);
  for (char byte : bytes) {
    peer.Send(std::string(1, byte));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  StatusOr<Frame> frame = peer.decoder.Next();
  while (!frame.ok() && frame.status().IsNotFound()) {
    ASSERT_TRUE(WaitReady(peer.fd.get(), /*for_read=*/true, 2000).ok());
    char byte = 0;
    ASSERT_EQ(read(peer.fd.get(), &byte, 1), 1);  // 1-byte window.
    peer.decoder.Append(std::string_view(&byte, 1));
    frame = peer.decoder.Next();
  }
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, MessageType::kRecommendResponse);
  EXPECT_EQ(frame->request_id, 77u);
  auto reply = DecodeRecommendReply(*frame);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->degraded());
  ASSERT_FALSE(reply->videos.empty());
  EXPECT_EQ(reply->videos[0].video, 100u);
}

TEST(RecServerTest, EngineFailureServesDegradedFallback) {
  FaultGuard guard;
  LiveServer live;
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    live.service.Observe(Play(user, 100, t += 1000));
    live.service.Observe(Play(user, 101, t += 1000));
  }

  FaultInjector::Instance().Arm("service.recommend",
                                FaultSpec::Error(StatusCode::kInternal));
  RecClient client(live.ClientOptions());
  RecRequest request;
  request.user = 999;
  request.top_n = 5;
  request.now = t;
  auto reply = client.RecommendDetailed(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->degraded());
  ASSERT_FALSE(reply->videos.empty());
  EXPECT_TRUE(reply->videos[0].video == 100 || reply->videos[0].video == 101);
  EXPECT_GE(live.metrics.GetCounter("server.degraded_responses")->value(), 1);

  // Engine healthy again: answers come from the engine, unflagged.
  FaultInjector::Instance().DisarmAll();
  auto healthy = client.RecommendDetailed(request);
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy->degraded());
}

TEST(RecServerTest, DeadlineBreachServesDegradedFallback) {
  FaultGuard guard;
  RecServer::Options options;
  options.recommend_deadline_ms = 5;
  LiveServer live(options);
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    live.service.Observe(Play(user, 100, t += 1000));
  }

  FaultInjector::Instance().Arm("service.recommend", FaultSpec::Latency(60));
  RecClient client(live.ClientOptions());
  RecRequest request;
  request.user = 999;
  request.top_n = 3;
  request.now = t;
  auto reply = client.RecommendDetailed(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->degraded());
  ASSERT_FALSE(reply->videos.empty());
  EXPECT_GE(live.metrics.GetCounter("net.server.deadline_breaches")->value(),
            1);
}

TEST(RecServerTest, BreakerTripsAndServesFallbackDuringCooldown) {
  FaultGuard guard;
  RecServer::Options options;
  options.breaker_failure_threshold = 3;
  options.breaker_cooldown_ms = 60'000;  // Stays open for the whole test.
  LiveServer live(options);
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    live.service.Observe(Play(user, 100, t += 1000));
  }

  FaultInjector::Instance().Arm("service.recommend",
                                FaultSpec::Error(StatusCode::kInternal));
  RecClient client(live.ClientOptions());
  RecRequest request;
  request.user = 999;
  request.top_n = 3;
  request.now = t;
  for (int i = 0; i < 3; ++i) {
    auto reply = client.RecommendDetailed(request);
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply->degraded());
  }
  EXPECT_EQ(live.metrics.GetCounter("net.server.breaker_trips")->value(), 1);

  // Engine is healthy again, but the breaker is open: requests go
  // straight to the fallback without touching the engine.
  FaultInjector::Instance().DisarmAll();
  auto reply = client.RecommendDetailed(request);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->degraded());
}

TEST(RecServerTest, ClientRetriesTransientSocketFaults) {
  FaultGuard guard;
  LiveServer live;
  // The next server-side socket read fails once, killing the connection
  // mid-conversation; the client's retry over a fresh connection must
  // absorb it transparently.
  FaultInjector::Instance().Arm("net.socket.read",
                                FaultSpec::Error().WithOneShot());
  MetricsRegistry client_metrics;
  RecClient::Options client_options = live.ClientOptions();
  client_options.metrics = &client_metrics;
  RecClient client(client_options);
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    if (client.Ping().ok()) ++ok;
  }
  EXPECT_EQ(ok, 10);  // The retry absorbed the injected failure.
  EXPECT_GE(client_metrics.GetCounter("client.retries")->value(), 1);
  EXPECT_EQ(FaultInjector::Instance().InjectedCount("net.socket.read"), 1u);
}

TEST(RecServerTest, ClientReconnectsAcrossServerRestart) {
  RecServer::Options options;
  LiveServer live(options);
  RecClient::Options client_options = live.ClientOptions();
  RecClient client(client_options);
  ASSERT_TRUE(client.Ping().ok());

  live.server->Stop();
  ASSERT_TRUE(live.server->Start().ok());
  // The restarted server binds a fresh ephemeral port, which usually
  // differs. Either way the old client must fail cleanly (one reconnect
  // attempt, no hang); if the port survived, the retry succeeds
  // transparently.
  if (live.server->port() == client_options.port) {
    EXPECT_TRUE(client.Ping().ok());
  } else {
    EXPECT_FALSE(client.Ping().ok());
    RecClient fresh(live.ClientOptions());
    EXPECT_TRUE(fresh.Ping().ok());
  }
}

TEST(RecServerTest, ConnectRetriesUntilTheServerAppears) {
  // Reserve an address, then start the server on it only after the
  // client has begun connecting: an eager Connect() under the retry
  // policy must ride out the gap instead of surfacing the first refusal.
  std::uint16_t port = 0;
  {
    RecServer::Options options;
    LiveServer reserve(options);
    port = reserve.server->port();
    reserve.server->Stop();
  }  // Port free but recently bound — reuse is near-certain and racy
     // only against unrelated processes.

  LiveServer live;  // Target service; re-bound below on the known port.
  live.server->Stop();
  RecServer late_server(&live.service, [&] {
    RecServer::Options options;
    options.port = port;
    return options;
  }());

  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    Status started = late_server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  });

  RecClient::Options client_options;
  client_options.port = port;
  client_options.max_retries = -1;  // No attempt cap: deadline-bound.
  client_options.retry_backoff_initial_ms = 10;
  client_options.total_deadline_ms = 5'000;
  RecClient client(client_options);
  const Status connected = client.Connect();
  starter.join();
  EXPECT_TRUE(connected.ok()) << connected.ToString();
  EXPECT_TRUE(client.Ping().ok());
}

TEST(RecServerTest, HealthyAnswersTrueOnALiveServer) {
  LiveServer live;
  RecClient::Options client_options = live.ClientOptions();
  client_options.auto_reconnect = false;  // Probes never ride retries.
  RecClient client(client_options);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(client.Healthy(500));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 1'000) << "cold probe must stay within 2x";
  // Warm path: connection reused, same answer.
  EXPECT_TRUE(client.Healthy(500));
}

TEST(RecServerTest, HealthyAnswersFalseWithinTheDeadlineOnADeadPort) {
  // Bind-and-release an ephemeral port so nothing listens on it.
  std::uint16_t dead_port = 0;
  {
    RecServer::Options options;
    LiveServer reserve(options);
    dead_port = reserve.server->port();
    reserve.server->Stop();
  }
  RecClient::Options client_options;
  client_options.port = dead_port;
  RecClient client(client_options);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.Healthy(200));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  // One attempt, connect+request each bounded by the deadline: a dead
  // target answers "dead" fast, never after a retry storm.
  EXPECT_LT(elapsed.count(), 1'000);
}

TEST(RecServerTest, StatsRpcReturnsWellFormedPrometheusText) {
  LiveServer live;
  RecClient client(live.ClientOptions());
  ASSERT_TRUE(client.Ping().ok());

  StatusOr<std::string> first = client.Stats();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Well-formed text exposition: TYPE headers, counters with _total,
  // dots sanitized to underscores, trailing newline (whole lines only).
  EXPECT_NE(first->find("# TYPE net_server_requests_total counter"),
            std::string::npos);
  EXPECT_NE(first->find("net_server_bytes_in_total "), std::string::npos);
  EXPECT_EQ(first->find("net.server."), std::string::npos);
  ASSERT_FALSE(first->empty());
  EXPECT_EQ(first->back(), '\n');

  // Counters must be monotone across scrapes; the traffic in between
  // guarantees strict growth for the request counter.
  ASSERT_TRUE(client.Ping().ok());
  RecRequest request;
  request.user = 1;
  request.top_n = 5;
  (void)client.Recommend(request);
  StatusOr<std::string> second = client.Stats();
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  auto value_of = [](const std::string& text, const std::string& name) {
    const std::size_t pos = text.find("\n" + name + " ");
    EXPECT_NE(pos, std::string::npos) << name;
    if (pos == std::string::npos) return -1.0;
    return std::atof(text.c_str() + pos + 1 + name.size() + 1);
  };
  const double before = value_of(*first, "net_server_requests_total");
  const double after = value_of(*second, "net_server_requests_total");
  EXPECT_GT(after, before);
}

TEST(RecServerTest, StatsRpcBypassesAdmissionControl) {
  RecServer::Options options;
  options.max_in_flight = 1;
  options.handler_delay_for_test_ms = 200;
  options.num_workers = 2;
  LiveServer live(options);

  // Saturate the single in-flight slot with a slow Recommend...
  std::thread slow([&] {
    RecClient client(live.ClientOptions());
    RecRequest request;
    request.user = 1;
    request.top_n = 5;
    (void)client.Recommend(request);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // ...and scrape while it holds the gate: Stats must still answer.
  RecClient client(live.ClientOptions());
  StatusOr<std::string> stats = client.Stats();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  slow.join();
}

TEST(RecServerTest, StatsRpcRoundTripsPayloadLargerThanSocketBuffer) {
  LiveServer live;
  // Inflate the registry well past the 64 KiB socket read buffers used
  // by both client and server: ~1500 counters with ~130-byte names give
  // a scrape of several hundred KiB (still under the 1 MiB frame cap).
  const std::string padding(100, 'x');
  for (int i = 0; i < 1500; ++i) {
    live.metrics
        .GetCounter("bulk.metric." + padding + "." + std::to_string(i))
        ->Increment(i);
  }

  RecClient client(live.ClientOptions());
  StatusOr<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->size(), 128u * 1024u);
  // The frame arrived whole: first and last bulk metrics present, and
  // the text still ends on a full line.
  EXPECT_NE(stats->find("bulk_metric_" + padding + "_0_total 0\n"),
            std::string::npos);
  EXPECT_NE(stats->find("bulk_metric_" + padding + "_1499_total 1499\n"),
            std::string::npos);
  EXPECT_EQ(stats->back(), '\n');
}

TEST(RecServerTest, QualityMetricsVisibleViaStatsRpc) {
  LiveServer live;
  // The service was built with a metrics registry, so the quality
  // section is pre-registered even before any traffic.
  RecClient client(live.ClientOptions());
  StatusOr<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("quality_progressive_logloss "), std::string::npos);
  EXPECT_NE(stats->find("quality_online_recall_10 "), std::string::npos);
  EXPECT_NE(stats->find("quality_ctr_overall "), std::string::npos);
  EXPECT_NE(stats->find("quality_ctr_degraded "), std::string::npos);
  EXPECT_NE(stats->find("quality_ctr_arm_0 "), std::string::npos);
  EXPECT_NE(stats->find("quality_alerts_logloss_total "), std::string::npos);
}

// --- Wire v2: negotiation, interop, pipelining (docs/WIRE_PROTOCOL.md) -----

TEST(RecServerTest, V2NegotiatedAtConnect) {
  LiveServer live;
  RecClient client(live.ClientOptions());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.negotiated_version(), kWireVersionV2);
  EXPECT_EQ(live.metrics.GetCounter("net.v2.hellos")->value(), 1);
  // The handshake is connection setup, not traffic (§5).
  EXPECT_EQ(live.metrics.GetCounter("net.server.requests")->value(), 1);
}

TEST(RecServerTest, V1CappedClientInteropsWithV2Server) {
  // A client configured for pure v1 (max_wire_version = 1) skips the
  // handshake entirely; the v2 server must serve it exactly as before.
  LiveServer live;
  RecClient::Options options = live.ClientOptions();
  options.max_wire_version = 1;
  RecClient client(options);
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.negotiated_version(), kWireVersion);
  EXPECT_EQ(live.metrics.GetCounter("net.v2.hellos")->value(), 0);

  RecRequest request;
  request.user = 1;
  request.top_n = 3;
  EXPECT_TRUE(client.RecommendDetailed(request).ok());
}

TEST(RecServerTest, GenuineV1PeerNeedsNoHandshake) {
  // A peer that has never heard of Hello sends v1 frames cold (§5.4).
  LiveServer live;
  RawPeer peer(live.server->port());
  peer.Send(EncodePingRequest(42));
  StatusOr<Frame> frame = peer.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, MessageType::kPongResponse);
  EXPECT_EQ(frame->request_id, 42u);
}

TEST(RecServerTest, V2ClientFallsBackAgainstV1CappedServer) {
  // Server capped at v1 answers Hello with UNKNOWN_TYPE — exactly what
  // a pre-v2 binary would do — and the client must settle on v1 and
  // keep working (§5.4).
  RecServer::Options options;
  options.max_wire_version = 1;
  LiveServer live(options);
  RecClient client(live.ClientOptions());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.negotiated_version(), kWireVersion);

  RecRequest request;
  request.user = 7;
  request.top_n = 3;
  EXPECT_TRUE(client.RecommendDetailed(request).ok());
}

TEST(RecServerTest, BatchOnUnnegotiatedConnectionMimicsV1Server) {
  // A v2 frame without a prior Hello gets BAD_VERSION + disconnect —
  // byte-for-byte what a genuine v1 server does with version 2 (§7.3).
  LiveServer live;
  {
    RawPeer peer(live.server->port());
    std::vector<RecRequest> batch(2);
    peer.Send(EncodeBatchRecommendRequest(9, batch));
    StatusOr<Frame> frame = peer.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, MessageType::kErrorResponse);
    auto error = DecodeErrorResponse(*frame);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->code, WireError::kBadVersion);
    EXPECT_TRUE(peer.WaitForClose());
  }
  {
    // The same batch hand-framed as v1 is merely an unknown type to a
    // v1 connection: typed error, connection survives.
    RawPeer peer(live.server->port());
    std::vector<RecRequest> batch(2);
    std::string bytes = EncodeBatchRecommendRequest(9, batch);
    bytes[4] = static_cast<char>(kWireVersion);  // Version byte.
    peer.Send(bytes);
    StatusOr<Frame> frame = peer.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, MessageType::kErrorResponse);
    auto error = DecodeErrorResponse(*frame);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->code, WireError::kUnknownType);

    peer.Send(EncodePingRequest(10));
    StatusOr<Frame> pong = peer.ReadFrame();
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_EQ(pong->type, MessageType::kPongResponse);
  }
}

TEST(RecServerTest, BatchRecommendRoundTripsAndChunks) {
  LiveServer live;
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    live.service.Observe(Play(user, 100, t += 1000));
  }
  RecClient client(live.ClientOptions());
  // 70 requests > kMaxBatchedRequests forces two wire batches.
  std::vector<RecRequest> requests(70);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].user = 999;
    requests[i].top_n = 3;
    requests[i].now = t;
  }
  auto items = client.RecommendBatch(requests);
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  ASSERT_EQ(items->size(), requests.size());
  for (const auto& item : *items) {
    ASSERT_TRUE(item.status.ok()) << item.status.ToString();
    ASSERT_FALSE(item.reply.videos.empty());
    EXPECT_EQ(item.reply.videos[0].video, 100u);
  }
  EXPECT_EQ(live.metrics.GetCounter("net.v2.batched_requests")->value(), 70);
}

TEST(RecServerTest, PipelinedThreadsShareOneConnection) {
  LiveServer live;
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    live.service.Observe(Play(user, 100, t += 1000));
  }
  RecClient client(live.ClientOptions());
  ASSERT_TRUE(client.Connect().ok());

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&client, &ok_count, t] {
      for (int call = 0; call < kCallsPerThread; ++call) {
        RecRequest request;
        request.user = 999;
        request.top_n = 3;
        request.now = t;
        auto recs = client.Recommend(request);
        if (recs.ok() && !recs->empty() && (*recs)[0].video == 100) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok_count.load(), kThreads * kCallsPerThread);
  // The whole fleet of threads rode ONE pipelined connection (§6).
  EXPECT_EQ(live.metrics.GetCounter("net.server.connections.accepted")->value(),
            1);
}

TEST(RecServerTest, PipelinedCallsSurviveInjectedLatency) {
  // Slow RPCs + concurrent callers: every response must reach the
  // caller that asked for it even when replies queue up (§6).
  FaultGuard guard;
  LiveServer live;
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    live.service.Observe(Play(user, 100, t += 1000));
  }
  FaultInjector::Instance().Arm(
      "service.recommend", FaultSpec::Latency(5).WithProbability(0.5));
  RecClient client(live.ClientOptions());
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 10;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&client, &ok_count, t] {
      for (int call = 0; call < kCallsPerThread; ++call) {
        RecRequest request;
        request.user = 999;
        request.top_n = 3;
        request.now = t;
        auto recs = client.Recommend(request);
        if (recs.ok() && !recs->empty() && (*recs)[0].video == 100) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok_count.load(), kThreads * kCallsPerThread);
}

/// Minimal v2-speaking fake server for client-side tests the real
/// server cannot drive (it answers in request order by construction):
/// accepts one connection, answers Hello, then reorders responses.
struct ReorderingFakeServer {
  ReorderingFakeServer() {
    auto listener = ListenTcp("127.0.0.1", 0, /*backlog=*/1);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    listen_fd = std::move(*listener);
    auto bound = LocalPort(listen_fd.get());
    EXPECT_TRUE(bound.ok());
    port = bound.ok() ? *bound : 0;
    serve = std::thread([this] { Serve(); });
  }

  ~ReorderingFakeServer() {
    if (serve.joinable()) serve.join();
  }

  void Serve() {
    ASSERT_TRUE(WaitReady(listen_fd.get(), /*for_read=*/true, 5000).ok());
    UniqueFd conn(accept(listen_fd.get(), nullptr, nullptr));
    ASSERT_TRUE(conn.valid());
    FrameDecoder decoder;
    std::vector<Frame> held;  // Recommend requests answered in reverse.
    char buf[4096];
    while (true) {
      StatusOr<Frame> frame = decoder.Next();
      if (!frame.ok()) {
        if (!frame.status().IsNotFound()) return;
        if (!WaitReady(conn.get(), /*for_read=*/true, 5000).ok()) return;
        ssize_t n = read(conn.get(), buf, sizeof(buf));
        if (n <= 0) return;
        decoder.Append(std::string_view(buf, static_cast<std::size_t>(n)));
        continue;
      }
      if (frame->type == MessageType::kHelloRequest) {
        HelloReply reply;
        reply.version = kWireVersionV2;
        const std::string out = EncodeHelloResponse(frame->request_id, reply);
        ASSERT_EQ(write(conn.get(), out.data(), out.size()),
                  static_cast<ssize_t>(out.size()));
        continue;
      }
      if (frame->type != MessageType::kRecommendRequest) continue;
      held.push_back(*frame);
      if (held.size() < 2) continue;  // Hold until both are in.
      // Answer LAST-in first: the client must match by id, not order.
      std::string out;
      for (auto it = held.rbegin(); it != held.rend(); ++it) {
        auto request = DecodeRecommendRequest(*it);
        ASSERT_TRUE(request.ok());
        // Echo the user back as the video id so each caller can check
        // it got ITS answer.
        const std::vector<ScoredVideo> echo = {
            {static_cast<VideoId>(request->user), 1.0}};
        out += EncodeRecommendResponse(it->request_id, echo);
      }
      ASSERT_EQ(write(conn.get(), out.data(), out.size()),
                static_cast<ssize_t>(out.size()));
      return;  // Both responses flushed; done.
    }
  }

  UniqueFd listen_fd;
  std::uint16_t port = 0;
  std::thread serve;
};

TEST(RecClientTest, OutOfOrderResponsesReachTheRightCallers) {
  ReorderingFakeServer fake;
  RecClient::Options options;
  options.port = fake.port;
  options.request_timeout_ms = 5000;
  RecClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_EQ(client.negotiated_version(), kWireVersionV2);

  std::atomic<int> correct{0};
  std::vector<std::thread> callers;
  for (UserId user = 1; user <= 2; ++user) {
    callers.emplace_back([&client, &correct, user] {
      RecRequest request;
      request.user = user;
      request.top_n = 1;
      auto recs = client.Recommend(request);
      if (recs.ok() && recs->size() == 1 && (*recs)[0].video == user) {
        correct.fetch_add(1);
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(correct.load(), 2);
}

TEST(RecServerTest, CallTimeoutKeepsConnectionAndDropsStaleResponse) {
  // A timed-out call must NOT tear down the pipelined connection other
  // callers share; the late response is dropped as stale (§6.2).
  FaultGuard guard;
  LiveServer live;
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    live.service.Observe(Play(user, 100, t += 1000));
  }
  RecClient::Options options = live.ClientOptions();
  options.request_timeout_ms = 100;
  options.auto_reconnect = false;  // Surface the timeout, no retry.
  RecClient client(options);
  ASSERT_TRUE(client.Connect().ok());

  FaultInjector::Instance().Arm("service.recommend", FaultSpec::Latency(400));
  RecRequest request;
  request.user = 999;
  request.top_n = 3;
  request.now = t;
  auto timed_out = client.Recommend(request);
  EXPECT_TRUE(timed_out.status().IsUnavailable());
  EXPECT_TRUE(client.connected());
  FaultInjector::Instance().DisarmAll();

  // The abandoned response drains as stale.
  for (int i = 0; i < 100 && client.stale_responses_dropped() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(client.stale_responses_dropped(), 1u);

  // Same connection still serves traffic.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(live.metrics.GetCounter("net.server.connections.accepted")->value(),
            1);
}

/// One HTTP GET against a StatsServer; returns the whole response.
std::string HttpGet(std::uint16_t port, const std::string& path) {
  auto fd = ConnectTcp("127.0.0.1", port, 1000);
  EXPECT_TRUE(fd.ok()) << fd.status().ToString();
  if (!fd.ok()) return "";
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(write(fd->get(), request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  while (true) {
    Status ready = WaitReady(fd->get(), /*for_read=*/true, 2000);
    if (!ready.ok()) break;
    ssize_t n = read(fd->get(), buf, sizeof(buf));
    if (n <= 0) break;  // Connection: close ends the response.
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

TEST(StatsServerTest, QualityPathServesOnlyTheQualitySection) {
  MetricsRegistry metrics;
  metrics.GetCounter("net.server.requests")->Increment(7);
  metrics.GetDoubleGauge("quality.progressive.logloss")->Set(0.31);
  metrics.GetCounter("quality.alerts.logloss")->Increment(2);
  StatsServer stats_server(&metrics, {});
  ASSERT_TRUE(stats_server.Start().ok());

  const std::string quality = HttpGet(stats_server.port(), "/quality");
  EXPECT_NE(quality.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(quality.find("# TYPE quality_progressive_logloss gauge"),
            std::string::npos);
  EXPECT_NE(quality.find("quality_progressive_logloss 0.31"),
            std::string::npos);
  EXPECT_NE(quality.find("quality_alerts_logloss_total 2"),
            std::string::npos);
  // Everything outside the quality namespace is filtered out.
  EXPECT_EQ(quality.find("net_server_requests"), std::string::npos);

  // Other paths still serve the full registry.
  const std::string full = HttpGet(stats_server.port(), "/metrics");
  EXPECT_NE(full.find("net_server_requests_total 7"), std::string::npos);
  EXPECT_NE(full.find("quality_progressive_logloss 0.31"),
            std::string::npos);
  stats_server.Stop();
}

TEST(StatsServerTest, ServesPrometheusTextOverHttp) {
  MetricsRegistry metrics;
  metrics.GetCounter("some.counter")->Increment(3);
  StatsServer stats_server(&metrics, {});
  ASSERT_TRUE(stats_server.Start().ok());
  ASSERT_NE(stats_server.port(), 0);

  auto fd = ConnectTcp("127.0.0.1", stats_server.port(), 1000);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(write(fd->get(), request.data(), request.size()),
            static_cast<ssize_t>(request.size()));

  std::string response;
  char buf[4096];
  while (true) {
    Status ready = WaitReady(fd->get(), /*for_read=*/true, 2000);
    if (!ready.ok()) break;
    ssize_t n = read(fd->get(), buf, sizeof(buf));
    if (n <= 0) break;  // Connection: close ends the response.
    response.append(buf, static_cast<std::size_t>(n));
  }
  stats_server.Stop();

  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("some_counter_total 3"), std::string::npos);
  // The scrape itself is counted (visible from the next scrape on).
  EXPECT_EQ(metrics.GetCounter("stats.scrapes")->value(), 1);
}

TEST(StatsServerTest, UnknownPathsGet404) {
  MetricsRegistry metrics;
  metrics.GetCounter("some.counter")->Increment(1);
  StatsServer stats_server(&metrics, {});
  ASSERT_TRUE(stats_server.Start().ok());
  const std::string response = HttpGet(stats_server.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.0 404 Not Found"), std::string::npos)
      << response;
  EXPECT_EQ(response.find("some_counter"), std::string::npos);
  // Root still serves the full scrape.
  const std::string root = HttpGet(stats_server.port(), "/");
  EXPECT_NE(root.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(root.find("some_counter_total 1"), std::string::npos);
  stats_server.Stop();
}

TEST(StatsServerTest, HealthzReportsShardId) {
  MetricsRegistry metrics;
  StatsServer::Options options;
  options.shard_id = 3;
  StatsServer stats_server(&metrics, options);
  ASSERT_TRUE(stats_server.Start().ok());
  const std::string response = HttpGet(stats_server.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("ok shard=3"), std::string::npos) << response;
  stats_server.Stop();
}

TEST(StatsServerTest, TracesPathsServeTheSpanCollector) {
  MetricsRegistry metrics;
  obs::SpanCollector::Options span_options;
  span_options.metrics = &metrics;
  obs::SpanCollector spans(span_options);
  const std::uint16_t rpc = spans.InternName("rpc.recommend");

  // One synthetic finished trace (root only).
  obs::SpanRecord root;
  root.trace_id = 0xBEEF;
  root.span_id = 1;
  root.start_us = 100;
  root.end_us = 600;
  root.name_id = rpc;
  root.flags = obs::kSpanFlagRoot;
  spans.Record(root);

  StatsServer::Options options;
  options.spans = &spans;
  StatsServer stats_server(&metrics, options);
  ASSERT_TRUE(stats_server.Start().ok());

  const std::string traces = HttpGet(stats_server.port(), "/traces");
  EXPECT_NE(traces.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(traces.find("application/json"), std::string::npos);
  EXPECT_NE(traces.find("\"traceEvents\""), std::string::npos) << traces;
  EXPECT_NE(traces.find("000000000000beef"), std::string::npos) << traces;

  const std::string slow = HttpGet(stats_server.port(), "/traces/slow");
  EXPECT_NE(slow.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(slow.find("\"total_us\":500"), std::string::npos) << slow;
  stats_server.Stop();
}

TEST(StatsServerTest, TracesPathIs404WithoutACollector) {
  MetricsRegistry metrics;
  StatsServer stats_server(&metrics, {});
  ASSERT_TRUE(stats_server.Start().ok());
  const std::string response = HttpGet(stats_server.port(), "/traces");
  EXPECT_NE(response.find("HTTP/1.0 404 Not Found"), std::string::npos);
  stats_server.Stop();
}

TEST(StatsServerTest, NativeHistogramOptionChangesTheScrape) {
  MetricsRegistry metrics;
  metrics.GetHistogram("rpc.latency.us")->Add(5);
  StatsServer::Options options;
  options.native_histograms = true;
  StatsServer stats_server(&metrics, options);
  ASSERT_TRUE(stats_server.Start().ok());
  const std::string response = HttpGet(stats_server.port(), "/metrics");
  EXPECT_NE(response.find("rpc_latency_us_hist_bucket{le=\""),
            std::string::npos)
      << response;
  stats_server.Stop();
}

// ---------------------------------------------------------------------------
// Trace propagation over TCP (docs/WIRE_PROTOCOL.md §2.1, §5.5).

TEST(TracePropagationTest, NegotiatedOnV2Connect) {
  LiveServer live;
  RecClient client(live.ClientOptions());
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.negotiated_version(), kWireVersionV2);
  EXPECT_TRUE(client.trace_propagation_negotiated());
}

TEST(TracePropagationTest, SampledContextPropagatesAndServerAdopts) {
  MetricsRegistry trace_metrics;
  Tracer::Options tracer_options;
  tracer_options.sample_every_n = 0;  // Server never self-samples...
  tracer_options.metrics = &trace_metrics;
  Tracer tracer(tracer_options);
  obs::SpanCollector::Options span_options;
  span_options.metrics = &trace_metrics;
  obs::SpanCollector spans(span_options);

  RecServer::Options options;
  options.tracer = &tracer;
  options.spans = &spans;
  LiveServer live(options);
  RecClient client(live.ClientOptions());

  // ...so the only sampled trace it can see is the one we propagate.
  TraceContext trace;
  trace.id = 0x1234ABCD;
  trace.start_us = Tracer::NowMicros();
  RecRequest request;
  request.user = 1;
  request.top_n = 3;
  {
    ScopedTraceContext scope(trace);
    ASSERT_TRUE(client.Recommend(request).ok());
  }
  ASSERT_TRUE(client.Recommend(request).ok());  // Untraced control call.

  EXPECT_EQ(trace_metrics.GetCounter("trace.adopted")->value(), 1);
  spans.Flush();
  // The server's span tree carries the propagated id — stitchable.
  EXPECT_TRUE(spans.HasTrace(0x1234ABCD));
  const std::string json = spans.ExportChromeJson();
  EXPECT_NE(json.find("\"name\":\"rpc.recommend\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"engine\""), std::string::npos);
}

TEST(TracePropagationTest, V1PeerSilentlyDropsTheContext) {
  MetricsRegistry trace_metrics;
  Tracer::Options tracer_options;
  tracer_options.sample_every_n = 0;
  tracer_options.metrics = &trace_metrics;
  Tracer tracer(tracer_options);
  obs::SpanCollector::Options span_options;
  span_options.metrics = &trace_metrics;
  obs::SpanCollector spans(span_options);

  RecServer::Options options;
  options.max_wire_version = 1;  // Pre-v2 server: no Hello, no feature.
  options.tracer = &tracer;
  options.spans = &spans;
  LiveServer live(options);
  RecClient client(live.ClientOptions());

  TraceContext trace;
  trace.id = 0x5678;
  trace.start_us = Tracer::NowMicros();
  RecRequest request;
  request.user = 1;
  request.top_n = 3;
  {
    ScopedTraceContext scope(trace);
    // The request must be byte-identical v1 traffic: correct answer, no
    // extension on the wire, nothing adopted server-side.
    auto recs = client.Recommend(request);
    ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  }
  EXPECT_FALSE(client.trace_propagation_negotiated());
  EXPECT_EQ(trace_metrics.GetCounter("trace.adopted")->value(), 0);
  spans.Flush();
  EXPECT_FALSE(spans.HasTrace(0x5678));
}

TEST(TracePropagationTest, UnnegotiatedExtensionIsAVersionViolation) {
  LiveServer live;
  RawPeer peer(live.server->port());
  // A trace extension without the Hello feature handshake is exactly
  // what a pre-trace server would see as a bad version byte.
  std::string bytes = EncodePingRequest(7);
  StampTraceExtension(&bytes, 0xAB, kTraceFlagSampled, 0);
  peer.Send(bytes);
  StatusOr<Frame> frame = peer.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  auto error = DecodeErrorResponse(*frame);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, WireError::kBadVersion);
  EXPECT_TRUE(peer.WaitForClose());
}

TEST(TracePropagationTest, TailCaptureKeepsSlowRequestsServerSide) {
  MetricsRegistry trace_metrics;
  obs::SpanCollector::Options span_options;
  span_options.metrics = &trace_metrics;
  obs::SpanCollector spans(span_options);

  RecServer::Options options;
  options.spans = &spans;
  options.trace_slow_us = 1;  // Everything is "slow": capture all.
  options.handler_delay_for_test_ms = 2;
  LiveServer live(options);
  RecClient client(live.ClientOptions());
  RecRequest request;
  request.user = 1;
  request.top_n = 3;
  ASSERT_TRUE(client.Recommend(request).ok());

  spans.Flush();
  const auto stats = spans.GetStats();
  EXPECT_GE(stats.slow_captured, 1u);
  const std::string json = spans.ExportSlowJson();
  EXPECT_NE(json.find("\"slow_capture\":true"), std::string::npos) << json;
}

}  // namespace
}  // namespace rtrec
