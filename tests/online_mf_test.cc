#include "core/online_mf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/random.h"
#include "common/vec_math.h"

namespace rtrec {
namespace {

MfModelConfig SmallConfig(UpdatePolicy policy = UpdatePolicy::kCombine) {
  // Mechanics tests pin their own rates (production defaults are tuned
  // for week-long streams and would need thousands of updates here).
  MfModelConfig config;
  config.num_factors = 8;
  config.policy = policy;
  config.eta0 = 0.05;
  config.alpha = 0.02;
  config.seed = 3;
  return config;
}

FactorStore::Options StoreOptions(const MfModelConfig& config) {
  FactorStore::Options o;
  o.num_factors = config.num_factors;
  o.init_scale = config.init_scale;
  o.seed = config.seed;
  return o;
}

UserAction Play(UserId u, VideoId v, double fraction, Timestamp t = 0) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = fraction;
  a.time = t;
  return a;
}

UserAction Impress(UserId u, VideoId v, Timestamp t = 0) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kImpress;
  a.time = t;
  return a;
}

class OnlineMfTest : public ::testing::Test {
 protected:
  void Init(UpdatePolicy policy) {
    config_ = SmallConfig(policy);
    store_ = std::make_unique<FactorStore>(StoreOptions(config_));
    model_ = std::make_unique<OnlineMf>(store_.get(), config_);
  }

  MfModelConfig config_;
  std::unique_ptr<FactorStore> store_;
  std::unique_ptr<OnlineMf> model_;
};

TEST_F(OnlineMfTest, ImpressionDoesNotUpdateModel) {
  Init(UpdatePolicy::kCombine);
  const auto result = model_->Update(Impress(1, 2));
  EXPECT_FALSE(result.updated);
  EXPECT_EQ(result.rating, 0.0);
  EXPECT_EQ(store_->NumUsers(), 0u);
  EXPECT_EQ(store_->RatingCount(), 0u);
}

TEST_F(OnlineMfTest, EngagedActionCreatesEntriesAndUpdates) {
  Init(UpdatePolicy::kCombine);
  const auto result = model_->Update(Play(1, 2, 0.9));
  EXPECT_TRUE(result.updated);
  EXPECT_EQ(result.rating, 1.0);
  EXPECT_GT(result.confidence, 0.0);
  EXPECT_EQ(store_->NumUsers(), 1u);
  EXPECT_EQ(store_->NumVideos(), 1u);
  EXPECT_EQ(store_->RatingCount(), 1u);
}

TEST_F(OnlineMfTest, RepeatedActionShrinksError) {
  Init(UpdatePolicy::kCombine);
  double first_error = 0.0;
  double last_error = 0.0;
  for (int i = 0; i < 50; ++i) {
    const auto result = model_->Update(Play(1, 2, 1.0));
    if (i == 0) first_error = std::abs(result.error);
    last_error = std::abs(result.error);
  }
  EXPECT_LT(last_error, first_error);
  EXPECT_LT(last_error, 0.2);
}

TEST_F(OnlineMfTest, PredictionApproachesRatingAfterTraining) {
  Init(UpdatePolicy::kCombine);
  for (int i = 0; i < 100; ++i) model_->Update(Play(1, 2, 1.0));
  EXPECT_NEAR(model_->Predict(1, 2), 1.0, 0.2);
}

TEST_F(OnlineMfTest, CombinePolicyScalesLearningRateWithConfidence) {
  Init(UpdatePolicy::kCombine);
  const auto strong = model_->Update(Play(1, 2, 1.0));   // w = 2.5
  const auto weak = model_->Update(Play(3, 4, 0.1));     // w = 1.5
  EXPECT_GT(strong.learning_rate, weak.learning_rate);
  EXPECT_NEAR(strong.learning_rate,
              config_.eta0 + config_.alpha * strong.confidence, 1e-12);
  EXPECT_NEAR(weak.learning_rate,
              config_.eta0 + config_.alpha * weak.confidence, 1e-12);
}

TEST_F(OnlineMfTest, BinaryPolicyUsesFixedRate) {
  Init(UpdatePolicy::kBinary);
  const auto strong = model_->Update(Play(1, 2, 1.0));
  const auto weak = model_->Update(Play(3, 4, 0.1));
  EXPECT_DOUBLE_EQ(strong.learning_rate, config_.eta0);
  EXPECT_DOUBLE_EQ(weak.learning_rate, config_.eta0);
  EXPECT_EQ(strong.rating, 1.0);
}

TEST_F(OnlineMfTest, ConfPolicyUsesWeightAsRating) {
  Init(UpdatePolicy::kConfidenceAsRating);
  const auto result = model_->Update(Play(1, 2, 1.0));
  EXPECT_DOUBLE_EQ(result.rating, result.confidence);
  EXPECT_GT(result.rating, 1.0);  // PlayTime weight, not binary.
  EXPECT_DOUBLE_EQ(result.learning_rate, config_.eta0);
}

TEST_F(OnlineMfTest, GlobalMeanTracksTrainedRatings) {
  Init(UpdatePolicy::kCombine);
  model_->Update(Play(1, 2, 1.0));
  model_->Update(Play(3, 4, 1.0));
  EXPECT_DOUBLE_EQ(store_->GlobalMean(), 1.0);  // Binary ratings.

  Init(UpdatePolicy::kConfidenceAsRating);
  model_->Update(Play(1, 2, 1.0));  // Rating 2.5.
  EXPECT_NEAR(store_->GlobalMean(), 2.5, 1e-9);
}

TEST_F(OnlineMfTest, PredictUnknownIdsIsFinite) {
  Init(UpdatePolicy::kCombine);
  const double p = model_->Predict(999, 888);
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_NEAR(p, 0.0, 0.2);  // Near-zero from random init dot products.
}

TEST_F(OnlineMfTest, TrainingSeparatesLikedFromUntouched) {
  Init(UpdatePolicy::kCombine);
  // User 1 repeatedly watches video 2; never touches video 50.
  for (int i = 0; i < 80; ++i) model_->Update(Play(1, 2, 1.0));
  EXPECT_GT(model_->Predict(1, 2), model_->Predict(1, 50));
}

TEST_F(OnlineMfTest, CollaborativeTransferAcrossUsers) {
  Init(UpdatePolicy::kCombine);
  // Users 1 and 2 co-watch videos 10 and 11; user 3 watches only 20.
  Rng rng(5);
  for (int round = 0; round < 120; ++round) {
    model_->Update(Play(1, 10, 1.0, round));
    model_->Update(Play(1, 11, 1.0, round));
    model_->Update(Play(2, 10, 1.0, round));
    model_->Update(Play(2, 11, 1.0, round));
    model_->Update(Play(3, 20, 1.0, round));
  }
  // Latent vectors of co-watched 10 and 11 align more than 10 and 20.
  const FactorEntry y10 = store_->GetOrInitVideo(10);
  const FactorEntry y11 = store_->GetOrInitVideo(11);
  const FactorEntry y20 = store_->GetOrInitVideo(20);
  EXPECT_GT(CosineSimilarity(y10.vec, y11.vec),
            CosineSimilarity(y10.vec, y20.vec));
}

TEST_F(OnlineMfTest, ApplySgdStepMatchesManualComputation) {
  Init(UpdatePolicy::kBinary);
  FactorEntry user;
  user.vec = {0.1f, -0.2f};
  user.bias = 0.05f;
  FactorEntry video;
  video.vec = {0.3f, 0.4f};
  video.bias = -0.1f;

  const double rating = 1.0, eta = 0.1, lambda = 0.01, mean = 0.2;
  const double expected_error =
      rating - mean - 0.05 - (-0.1) - (0.1 * 0.3 + (-0.2) * 0.4);

  FactorEntry u2 = user, v2 = video;
  const double error =
      OnlineMf::ApplySgdStep(u2, v2, rating, eta, lambda, mean);
  EXPECT_NEAR(error, expected_error, 1e-6);

  // Bias update: b += eta * (e - lambda * b).
  EXPECT_NEAR(u2.bias, 0.05 + eta * (error - lambda * 0.05), 1e-6);
  EXPECT_NEAR(v2.bias, -0.1 + eta * (error - lambda * -0.1), 1e-6);
  // Vector update uses the *other* side's old vector (corrected Eq. 5).
  EXPECT_NEAR(u2.vec[0], 0.1 + eta * (error * 0.3 - lambda * 0.1), 1e-6);
  EXPECT_NEAR(v2.vec[0], 0.3 + eta * (error * 0.1 - lambda * 0.3), 1e-6);
}

TEST_F(OnlineMfTest, RegularizationPullsTowardZero) {
  // With rating exactly matched (error 0), weights should shrink.
  FactorEntry user;
  user.vec = {1.0f};
  user.bias = 0.0f;
  FactorEntry video;
  video.vec = {1.0f};
  video.bias = 0.0f;
  // rating = mean + dot = 0 + 1 -> error 0.
  OnlineMf::ApplySgdStep(user, video, 1.0, 0.1, 0.5, 0.0);
  EXPECT_LT(user.vec[0], 1.0f);
  EXPECT_LT(video.vec[0], 1.0f);
}

// Policy sweep: every policy must learn the planted preference.
class PolicyParamTest : public ::testing::TestWithParam<UpdatePolicy> {};

TEST_P(PolicyParamTest, LearnsPlantedPreference) {
  MfModelConfig config = SmallConfig(GetParam());
  FactorStore store(StoreOptions(config));
  OnlineMf model(&store, config);
  for (int i = 0; i < 100; ++i) {
    model.Update(Play(1, 2, 1.0, i));
    model.Update(Play(3, 4, 1.0, i));
  }
  EXPECT_GT(model.Predict(1, 2), model.Predict(1, 77));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyParamTest,
                         ::testing::Values(
                             UpdatePolicy::kBinary,
                             UpdatePolicy::kConfidenceAsRating,
                             UpdatePolicy::kCombine));

TEST(OnlineMfExplicitModeTest, GlobalMeanEntersObjectiveWhenEnabled) {
  // Explicit-feedback mode: μ is part of Eq. 2 and the error. With
  // ConfModel ratings ~2.5 and μ tracking them, predictions for unknown
  // pairs centre on μ rather than 0.
  MfModelConfig config;
  config.num_factors = 8;
  config.policy = UpdatePolicy::kConfidenceAsRating;
  config.use_global_mean = true;
  config.eta0 = 0.05;
  FactorStore::Options store_options;
  store_options.num_factors = 8;
  FactorStore store(store_options);
  OnlineMf model(&store, config);
  UserAction a;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;  // Weight 2.5.
  for (int i = 0; i < 40; ++i) {
    a.user = 1 + static_cast<UserId>(i % 4);
    a.video = 1 + static_cast<VideoId>(i % 6);
    a.time = i;
    model.Update(a);
  }
  EXPECT_NEAR(store.GlobalMean(), 2.5, 1e-9);
  // Unknown pair prediction is pulled to μ (biases ~0, dot ~0).
  EXPECT_NEAR(model.Predict(999, 888), 2.5, 0.3);

  // Same stream without μ: unknown pairs predict near 0.
  MfModelConfig config2 = config;
  config2.use_global_mean = false;
  FactorStore store2(store_options);
  OnlineMf model2(&store2, config2);
  for (int i = 0; i < 40; ++i) {
    a.user = 1 + static_cast<UserId>(i % 4);
    a.video = 1 + static_cast<VideoId>(i % 6);
    model2.Update(a);
  }
  EXPECT_LT(model2.Predict(999, 888), 1.0);
}

TEST(MfModelConfigTest, ValidationCatchesBadValues) {
  MfModelConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_factors = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = MfModelConfig{};
  config.eta0 = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = MfModelConfig{};
  config.eta0 = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = MfModelConfig{};
  config.lambda = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config = MfModelConfig{};
  config.alpha = -1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(UpdatePolicyTest, NamesMatchPaper) {
  EXPECT_STREQ(UpdatePolicyToString(UpdatePolicy::kBinary), "BinaryModel");
  EXPECT_STREQ(UpdatePolicyToString(UpdatePolicy::kConfidenceAsRating),
               "ConfModel");
  EXPECT_STREQ(UpdatePolicyToString(UpdatePolicy::kCombine), "CombineModel");
}

}  // namespace
}  // namespace rtrec
