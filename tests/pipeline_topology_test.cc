#include "core/topology_factory.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "core/recommender.h"
#include "stream/topology.h"

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;
  a.time = t;
  return a;
}

UserAction Impress(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kImpress;
  a.time = t;
  return a;
}

class PipelineTopologyTest : public ::testing::Test {
 protected:
  PipelineTopologyTest() {
    FactorStore::Options factor_options;
    factor_options.num_factors = 8;
    factors_ = std::make_unique<FactorStore>(factor_options);
    history_ = std::make_unique<HistoryStore>();
    table_ = std::make_unique<SimTableStore>();
  }

  PipelineDeps Deps() {
    PipelineDeps deps;
    deps.factors = factors_.get();
    deps.history = history_.get();
    deps.sim_table = table_.get();
    deps.type_resolver = [](VideoId) -> VideoType { return 0; };
    deps.model_config.num_factors = 8;
    return deps;
  }

  /// Runs the Fig. 2 topology over `actions` to completion.
  void RunPipeline(std::vector<UserAction> actions,
                   PipelineParallelism parallelism = {}) {
    auto source =
        std::make_shared<VectorActionSource>(std::move(actions));
    auto spec = BuildRecommendationTopology(source, Deps(), parallelism);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    auto topo = stream::Topology::Create(std::move(spec).value());
    ASSERT_TRUE(topo.ok()) << topo.status().ToString();
    ASSERT_TRUE((*topo)->Start().ok());
    ASSERT_TRUE((*topo)->Join().ok());
    metrics_report_ = (*topo)->metrics().Report();
  }

  std::unique_ptr<FactorStore> factors_;
  std::unique_ptr<HistoryStore> history_;
  std::unique_ptr<SimTableStore> table_;
  std::string metrics_report_;
};

TEST(VectorActionSourceTest, HandsOutEachActionExactlyOnce) {
  std::vector<UserAction> actions;
  for (int i = 0; i < 5000; ++i) {
    actions.push_back(Play(static_cast<UserId>(i), 1, i));
  }
  VectorActionSource source(actions);
  EXPECT_EQ(source.size(), 5000u);

  std::atomic<std::size_t> total{0};
  std::atomic<std::uint64_t> user_sum{0};
  std::vector<std::thread> pullers;
  for (int t = 0; t < 4; ++t) {
    pullers.emplace_back([&source, &total, &user_sum] {
      while (auto action = source.Next()) {
        total.fetch_add(1);
        user_sum.fetch_add(action->user);
      }
    });
  }
  for (auto& th : pullers) th.join();
  EXPECT_EQ(total.load(), 5000u);
  EXPECT_EQ(user_sum.load(), 4999ull * 5000 / 2);
  EXPECT_FALSE(source.Next().has_value());
}

TEST(ActionTupleTest, RoundTrip) {
  const UserAction original = Play(7, 9, 1234);
  auto decoded = TupleToAction(ActionToTuple(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(ActionTupleTest, RejectsBadActionCode) {
  stream::Tuple bad(pipeline_schema::Action(),
                    {std::int64_t{1}, std::int64_t{2}, std::int64_t{99},
                     0.0, std::int64_t{0}});
  EXPECT_FALSE(TupleToAction(bad).ok());
}

TEST_F(PipelineTopologyTest, RejectsNullDeps) {
  auto source = std::make_shared<VectorActionSource>(
      std::vector<UserAction>{});
  PipelineDeps deps = Deps();
  deps.factors = nullptr;
  EXPECT_FALSE(BuildRecommendationTopology(source, deps).ok());
  EXPECT_FALSE(BuildRecommendationTopology(nullptr, Deps()).ok());
}

TEST_F(PipelineTopologyTest, TrainsModelFromStream) {
  std::vector<UserAction> actions;
  for (int round = 0; round < 30; ++round) {
    for (UserId u = 1; u <= 5; ++u) {
      actions.push_back(Play(u, 10, round * 1000));
      actions.push_back(Play(u, 11, round * 1000 + 500));
    }
  }
  RunPipeline(std::move(actions));

  // MF vectors were created and written through MFStorage.
  EXPECT_EQ(factors_->NumUsers(), 5u);
  EXPECT_EQ(factors_->NumVideos(), 2u);
  EXPECT_GT(factors_->RatingCount(), 0u);

  // Histories recorded.
  EXPECT_EQ(history_->Get(1).size(), 2u);

  // Similar-video tables populated via GetItemPairs -> ItemPairSim ->
  // ResultStorage.
  EXPECT_GT(table_->GetDecayedSimilarity(10, 11, 30000), 0.0);
}

TEST_F(PipelineTopologyTest, ImpressionsFlowThroughWithoutStateChanges) {
  std::vector<UserAction> actions;
  for (int i = 0; i < 50; ++i) {
    actions.push_back(Impress(1, static_cast<VideoId>(i + 1), i * 100));
  }
  RunPipeline(std::move(actions));
  EXPECT_EQ(factors_->NumUsers(), 0u);
  EXPECT_TRUE(history_->Get(1).empty());
  EXPECT_EQ(table_->NumVideos(), 0u);
}

TEST_F(PipelineTopologyTest, HighParallelismMatchesLowParallelismCounts) {
  std::vector<UserAction> actions;
  for (int round = 0; round < 50; ++round) {
    for (UserId u = 1; u <= 20; ++u) {
      actions.push_back(
          Play(u, static_cast<VideoId>(u % 7 + 1), round * 1000 + u));
    }
  }
  PipelineParallelism wide;
  wide.spout = 2;
  wide.compute_mf = 4;
  wide.mf_storage = 4;
  wide.user_history = 3;
  wide.get_item_pairs = 3;
  wide.item_pair_sim = 4;
  wide.result_storage = 3;
  RunPipeline(actions, wide);

  // Every engaged action trained the model exactly once.
  EXPECT_EQ(factors_->RatingCount(), actions.size());
  EXPECT_EQ(factors_->NumUsers(), 20u);
  EXPECT_EQ(factors_->NumVideos(), 7u);
}

TEST_F(PipelineTopologyTest, PairCacheHitsOnRepeatedCoWatches) {
  // Section 5.1's cache technique: the same pair recomputed within the
  // TTL is served from the ItemPairSim task-local LRU. Repeated
  // co-watches of one pair in a tight window must produce cache hits.
  std::vector<UserAction> actions;
  for (int round = 0; round < 40; ++round) {
    for (UserId u = 1; u <= 5; ++u) {
      actions.push_back(Play(u, 10, round * 100));
      actions.push_back(Play(u, 11, round * 100 + 50));
    }
  }
  auto source = std::make_shared<VectorActionSource>(std::move(actions));
  PipelineDeps deps = Deps();
  deps.sim_config.pair_cache_size = 1024;
  deps.sim_config.pair_cache_ttl_millis = 10'000.0;
  auto spec = BuildRecommendationTopology(source, deps);
  ASSERT_TRUE(spec.ok());
  auto topo = stream::Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_GT((*topo)->metrics().GetCounter("item_pair_sim.cache_hits")
                ->value(),
            0);
  // The table still holds the pair.
  EXPECT_GT(table_->GetDecayedSimilarity(10, 11, 4000), 0.0);
}

TEST_F(PipelineTopologyTest, PairCacheDisabledComputesEveryPair) {
  std::vector<UserAction> actions;
  for (int round = 0; round < 20; ++round) {
    actions.push_back(Play(1, 10, round * 100));
    actions.push_back(Play(1, 11, round * 100 + 50));
  }
  auto source = std::make_shared<VectorActionSource>(std::move(actions));
  PipelineDeps deps = Deps();
  deps.sim_config.pair_cache_size = 0;
  auto spec = BuildRecommendationTopology(source, deps);
  ASSERT_TRUE(spec.ok());
  auto topo = stream::Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_EQ(
      (*topo)->metrics().GetCounter("item_pair_sim.cache_hits")->value(), 0);
}

TEST_F(PipelineTopologyTest, ReliableSpoutDeliversEveryActionWithAcking) {
  std::vector<UserAction> actions;
  for (int round = 0; round < 40; ++round) {
    for (UserId u = 1; u <= 10; ++u) {
      actions.push_back(
          Play(u, static_cast<VideoId>(u % 5 + 1), round * 1000 + u));
    }
  }
  const std::size_t total = actions.size();
  auto source = std::make_shared<VectorActionSource>(std::move(actions));
  PipelineDeps deps = Deps();
  deps.reliable_spout = true;
  auto spec = BuildRecommendationTopology(source, deps);
  ASSERT_TRUE(spec.ok());
  stream::TopologyOptions options;
  options.enable_acking = true;
  auto topo = stream::Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  // Every action trained the model (no losses, no duplicates on the
  // healthy path).
  EXPECT_EQ(factors_->RatingCount(), total);
}

TEST_F(PipelineTopologyTest, ServingPathWorksOverPipelineOutput) {
  std::vector<UserAction> actions;
  for (int round = 0; round < 40; ++round) {
    for (UserId u = 1; u <= 8; ++u) {
      actions.push_back(Play(u, 10, round * 1000));
      actions.push_back(Play(u, 11, round * 1000 + 500));
      actions.push_back(Play(u, 12, round * 1000 + 700));
    }
  }
  RunPipeline(std::move(actions));

  MfModelConfig model_config;
  model_config.num_factors = 8;
  OnlineMf model(factors_.get(), model_config);
  RecommendConfig rec_config;
  MfRecommender recommender(&model, history_.get(), table_.get(), nullptr,
                            rec_config);
  RecRequest request;
  request.user = 999;
  request.seed_videos = {10};
  request.now = 40000;
  auto recs = recommender.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  for (const auto& r : *recs) {
    EXPECT_TRUE(r.video == 11 || r.video == 12) << r.video;
  }
}

}  // namespace
}  // namespace rtrec
