#include "demographic/grouper.h"

#include <gtest/gtest.h>

#include <set>

namespace rtrec {
namespace {

UserProfile Registered(Gender g, AgeBucket a,
                       Education e = Education::kBachelor) {
  UserProfile p;
  p.registered = true;
  p.gender = g;
  p.age = a;
  p.education = e;
  return p;
}

TEST(ProfileTest, ToStringIncludesParts) {
  const std::string s =
      ProfileToString(Registered(Gender::kMale, AgeBucket::k25To34));
  EXPECT_NE(s.find("reg"), std::string::npos);
  EXPECT_NE(s.find("male"), std::string::npos);
  EXPECT_NE(s.find("25-34"), std::string::npos);
  EXPECT_NE(ProfileToString(UserProfile{}).find("unreg"), std::string::npos);
}

TEST(GrouperTest, UnregisteredMapsToGlobal) {
  EXPECT_EQ(DemographicGrouper::GroupFor(UserProfile{}), kGlobalGroup);
}

TEST(GrouperTest, GroupIsGenderAgeCell) {
  const GroupId a = DemographicGrouper::GroupFor(
      Registered(Gender::kMale, AgeBucket::k25To34));
  const GroupId b = DemographicGrouper::GroupFor(
      Registered(Gender::kMale, AgeBucket::k25To34, Education::kPrimary));
  EXPECT_EQ(a, b);  // Education does not split groups.
  const GroupId c = DemographicGrouper::GroupFor(
      Registered(Gender::kFemale, AgeBucket::k25To34));
  const GroupId d = DemographicGrouper::GroupFor(
      Registered(Gender::kMale, AgeBucket::k18To24));
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(c, d);
}

TEST(GrouperTest, AllCellsDistinct) {
  std::set<GroupId> groups;
  for (Gender g : {Gender::kUnknown, Gender::kFemale, Gender::kMale}) {
    for (int a = 0; a < kNumAgeBuckets; ++a) {
      groups.insert(DemographicGrouper::GroupFor(
          Registered(g, static_cast<AgeBucket>(a))));
    }
  }
  EXPECT_EQ(groups.size(), DemographicGrouper::kNumGroups);
  EXPECT_FALSE(groups.contains(kGlobalGroup));
}

TEST(GrouperTest, RegistryRoundTrip) {
  DemographicGrouper grouper;
  const UserProfile profile = Registered(Gender::kFemale, AgeBucket::k35To49);
  grouper.RegisterProfile(42, profile);
  EXPECT_EQ(grouper.GetProfile(42), profile);
  EXPECT_EQ(grouper.GroupOf(42), DemographicGrouper::GroupFor(profile));
  EXPECT_EQ(grouper.NumProfiles(), 1u);
}

TEST(GrouperTest, UnknownUserIsGlobal) {
  DemographicGrouper grouper;
  EXPECT_EQ(grouper.GroupOf(7), kGlobalGroup);
  EXPECT_FALSE(grouper.GetProfile(7).registered);
}

TEST(GrouperTest, ReRegistrationUpdatesProfile) {
  DemographicGrouper grouper;
  grouper.RegisterProfile(1, Registered(Gender::kMale, AgeBucket::kUnder18));
  grouper.RegisterProfile(1, Registered(Gender::kMale, AgeBucket::k50Plus));
  EXPECT_EQ(grouper.GetProfile(1).age, AgeBucket::k50Plus);
  EXPECT_EQ(grouper.NumProfiles(), 1u);
}

TEST(GrouperTest, GroupNamesAreReadable) {
  EXPECT_EQ(DemographicGrouper::GroupName(kGlobalGroup), "global");
  const GroupId g = DemographicGrouper::GroupFor(
      Registered(Gender::kMale, AgeBucket::k25To34));
  const std::string name = DemographicGrouper::GroupName(g);
  EXPECT_NE(name.find("male"), std::string::npos);
  EXPECT_NE(name.find("25-34"), std::string::npos);
}

}  // namespace
}  // namespace rtrec
