#include "quality/quality_monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "eval/ab_test.h"
#include "kvstore/factor_store.h"
#include "service/recommendation_service.h"

namespace rtrec {
namespace {

UserAction Act(UserId user, VideoId video, ActionType type, Timestamp t) {
  UserAction action;
  action.user = user;
  action.video = video;
  action.type = type;
  if (type == ActionType::kPlayTime) action.view_fraction = 1.0;
  action.time = t;
  return action;
}

MfSample Sample(UserId user, ActionType type, double prediction,
                double rating, Timestamp t = 1000) {
  MfSample sample;
  sample.action = Act(user, /*video=*/7, type, t);
  sample.prediction = prediction;
  sample.rating = rating;
  sample.confidence = rating;
  return sample;
}

double Gauge(MetricsRegistry& metrics, const std::string& name) {
  return metrics.GetDoubleGauge(name)->value();
}

std::int64_t Count(MetricsRegistry& metrics, const std::string& name) {
  return metrics.GetCounter(name)->value();
}

// ---------------------------------------------------------------------
// Signal 1: progressive validation.

TEST(QualityMonitorTest, ProgressiveLoglossExactValues) {
  MetricsRegistry metrics;
  QualityMonitor::Options options;
  options.ewma_alpha = 0.5;
  QualityMonitor monitor(&metrics, options);

  // prediction 0 → p = 0.5 → logloss ln 2 for either label.
  monitor.OnMfSample(Sample(1, ActionType::kClick, 0.0, 1.0));
  const double ln2 = std::log(2.0);
  EXPECT_NEAR(Gauge(metrics, "quality.progressive.logloss"), ln2, 1e-12);
  EXPECT_NEAR(Gauge(metrics, "quality.progressive.logloss.click"), ln2,
              1e-12);
  // Calibration EWMA seeds at y − p = 1 − 0.5.
  EXPECT_NEAR(Gauge(metrics, "quality.progressive.bias"), 0.5, 1e-12);
  EXPECT_EQ(Count(metrics, "quality.progressive.samples"), 1);

  // An impression (negative) at prediction 0: loss ln 2 again, bias
  // EWMA moves to 0.5·0.5 + 0.5·(0 − 0.5) = 0.
  monitor.OnMfSample(Sample(1, ActionType::kImpress, 0.0, 0.0));
  EXPECT_NEAR(Gauge(metrics, "quality.progressive.logloss"), ln2, 1e-12);
  EXPECT_NEAR(Gauge(metrics, "quality.progressive.bias"), 0.0, 1e-12);
  EXPECT_EQ(Count(metrics, "quality.progressive.samples"), 2);

  // A confident correct positive: p = σ(2), EWMA averages in its loss.
  const double p2 = 1.0 / (1.0 + std::exp(-2.0));
  monitor.OnMfSample(Sample(1, ActionType::kClick, 2.0, 1.0));
  const double expected = 0.5 * ln2 + 0.5 * -std::log(p2);
  EXPECT_NEAR(Gauge(metrics, "quality.progressive.logloss"), expected, 1e-12);
  // The per-type EWMA only saw the two clicks.
  EXPECT_NEAR(Gauge(metrics, "quality.progressive.logloss.click"),
              0.5 * ln2 + 0.5 * -std::log(p2), 1e-12);
}

TEST(QualityMonitorTest, ProgressiveSegmentsByGroup) {
  MetricsRegistry metrics;
  QualityMonitor::Options options;
  options.ewma_alpha = 1.0;  // Gauge == last sample, no averaging.
  options.group_of = [](UserId user) -> GroupId {
    return user < 100 ? 1 : 2;
  };
  options.group_name = [](GroupId g) {
    return std::string("g") + std::to_string(g);
  };
  QualityMonitor monitor(&metrics, options);

  monitor.OnMfSample(Sample(1, ActionType::kClick, 0.0, 1.0));
  monitor.OnMfSample(Sample(200, ActionType::kClick, 2.0, 1.0));

  const double ln2 = std::log(2.0);
  const double loss2 = -std::log(1.0 / (1.0 + std::exp(-2.0)));
  EXPECT_NEAR(Gauge(metrics, "quality.progressive.logloss.group.g1"), ln2,
              1e-12);
  EXPECT_NEAR(Gauge(metrics, "quality.progressive.logloss.group.g2"), loss2,
              1e-12);
}

TEST(QualityMonitorTest, HookSeesPreStepPredictionFromOnlineMf) {
  MfModelConfig config;
  config.num_factors = 8;
  FactorStore::Options store_options;
  store_options.num_factors = 8;
  FactorStore store(store_options);
  OnlineMf model(&store, config);

  MetricsRegistry metrics;
  QualityMonitor::Options options;
  options.ewma_alpha = 1.0;
  QualityMonitor monitor(&metrics, options);
  model.set_validation_hook(&monitor);

  const UserAction action = Act(3, 5, ActionType::kPlayTime, 500);
  // Progressive validation: the sample's prediction must equal the
  // model's prediction BEFORE the action trains it. p = σ(r̂), and the
  // bias gauge stores y − p with alpha 1.
  const double pre = model.Predict(3, 5);
  const double p = 1.0 / (1.0 + std::exp(-pre));
  model.Update(action);
  EXPECT_EQ(Count(metrics, "quality.progressive.samples"), 1);
  EXPECT_NEAR(Gauge(metrics, "quality.progressive.bias"), 1.0 - p, 1e-9);
  // The step moved the model: predicting again now differs.
  EXPECT_NE(model.Predict(3, 5), pre);
}

TEST(QualityMonitorTest, ImpressionsSampleAsNegativesWithoutTraining) {
  MfModelConfig config;
  config.num_factors = 8;
  FactorStore::Options store_options;
  store_options.num_factors = 8;
  FactorStore store(store_options);
  OnlineMf model(&store, config);

  MetricsRegistry metrics;
  QualityMonitor monitor(&metrics, QualityMonitor::Options{});
  model.set_validation_hook(&monitor);

  model.Update(Act(3, 5, ActionType::kImpress, 500));
  EXPECT_EQ(Count(metrics, "quality.progressive.samples"), 1);
  // The impression was scored but must not have initialized the ids.
  EXPECT_FALSE(store.GetUser(3).ok());
  EXPECT_FALSE(store.GetVideo(5).ok());
}

// ---------------------------------------------------------------------
// Signal 2: online recall.

TEST(QualityMonitorTest, HoldoutSelectionIsDeterministicAndSkipsImpressions) {
  MetricsRegistry metrics;
  QualityMonitor::Options options;
  options.holdout_every_n = 1;  // Every engaged action.
  QualityMonitor monitor(&metrics, options);

  const UserAction play = Act(1, 2, ActionType::kPlay, 3);
  EXPECT_TRUE(monitor.ShouldHoldOut(play));
  EXPECT_TRUE(monitor.ShouldHoldOut(play));  // Stable, not counter-based.
  EXPECT_FALSE(monitor.ShouldHoldOut(Act(1, 2, ActionType::kImpress, 3)));

  QualityMonitor::Options off;
  off.holdout_every_n = 0;
  QualityMonitor disabled(&metrics, off);
  EXPECT_FALSE(disabled.ShouldHoldOut(play));
}

TEST(QualityMonitorTest, OnlineRecallExactRatio) {
  MetricsRegistry metrics;
  QualityMonitor monitor(&metrics, QualityMonitor::Options{});

  const UserAction a = Act(1, 2, ActionType::kPlay, 3);
  monitor.OnHoldoutResult(a, true);
  monitor.OnHoldoutResult(a, false);
  monitor.OnHoldoutResult(a, false);
  monitor.OnHoldoutResult(a, false);

  EXPECT_EQ(Count(metrics, "quality.holdout.evaluated"), 4);
  EXPECT_EQ(Count(metrics, "quality.holdout.hits"), 1);
  EXPECT_NEAR(Gauge(metrics, "quality.online_recall@10"), 0.25, 1e-12);
}

// ---------------------------------------------------------------------
// Signal 3: CTR join.

std::vector<ScoredVideo> Page(std::vector<VideoId> videos) {
  std::vector<ScoredVideo> page;
  for (VideoId v : videos) page.push_back({v, 1.0});
  return page;
}

TEST(QualityMonitorTest, CtrJoinExactValuesAndSegments) {
  MetricsRegistry metrics;
  QualityMonitor::Options options;
  options.num_arms = 2;
  QualityMonitor monitor(&metrics, options);

  const UserId user = 42;
  const std::size_t arm = AbArmOf(user, 2);
  monitor.OnServed(user, Page({10, 11, 12}), /*degraded=*/false, 1000);
  EXPECT_EQ(Count(metrics, "quality.ctr.impressions"), 3);
  EXPECT_EQ(Count(metrics, "quality.ctr.impressions.primary"), 3);
  EXPECT_EQ(Count(metrics,
                  "quality.ctr.impressions.arm." + std::to_string(arm)),
            3);

  // Click position 1 of the served page.
  monitor.OnEngagement(Act(user, 11, ActionType::kClick, 2000));
  EXPECT_EQ(Count(metrics, "quality.ctr.clicks"), 1);
  EXPECT_NEAR(Gauge(metrics, "quality.ctr.overall"), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(Gauge(metrics, "quality.ctr.primary"), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(Gauge(metrics, "quality.ctr.arm." + std::to_string(arm)),
              1.0 / 3.0, 1e-12);
  // Position-weighted: one click at position 1 → (1/0.85) / 3.
  EXPECT_NEAR(Gauge(metrics, "quality.ctr.position_weighted"),
              (1.0 / 0.85) / 3.0, 1e-12);

  // A degraded page to another user joins into the degraded segment.
  const UserId other = 43;
  monitor.OnServed(other, Page({20, 21}), /*degraded=*/true, 1000);
  monitor.OnEngagement(Act(other, 20, ActionType::kPlay, 1500));
  EXPECT_EQ(Count(metrics, "quality.ctr.impressions.degraded"), 2);
  EXPECT_EQ(Count(metrics, "quality.ctr.clicks.degraded"), 1);
  EXPECT_NEAR(Gauge(metrics, "quality.ctr.degraded"), 0.5, 1e-12);
  // Primary CTR unchanged by degraded traffic.
  EXPECT_NEAR(Gauge(metrics, "quality.ctr.primary"), 1.0 / 3.0, 1e-12);
}

TEST(QualityMonitorTest, DuplicateClickCountsOnce) {
  MetricsRegistry metrics;
  QualityMonitor monitor(&metrics, QualityMonitor::Options{});

  monitor.OnServed(1, Page({10, 11}), false, 1000);
  monitor.OnEngagement(Act(1, 10, ActionType::kClick, 1100));
  monitor.OnEngagement(Act(1, 10, ActionType::kPlay, 1200));  // Same slot.

  EXPECT_EQ(Count(metrics, "quality.ctr.clicks"), 1);
  EXPECT_EQ(Count(metrics, "quality.ctr.duplicate_clicks"), 1);
  EXPECT_NEAR(Gauge(metrics, "quality.ctr.overall"), 0.5, 1e-12);
}

TEST(QualityMonitorTest, EngagementWithoutImpressionNeverCountsAsClick) {
  MetricsRegistry metrics;
  QualityMonitor monitor(&metrics, QualityMonitor::Options{});

  // No impression served at all.
  monitor.OnEngagement(Act(1, 10, ActionType::kClick, 1000));
  // Impression for a different video than the engagement.
  monitor.OnServed(2, Page({20}), false, 1000);
  monitor.OnEngagement(Act(2, 99, ActionType::kClick, 1100));
  // Impressions are not engagements and never join.
  monitor.OnEngagement(Act(2, 20, ActionType::kImpress, 1100));

  EXPECT_EQ(Count(metrics, "quality.ctr.clicks"), 0);
  EXPECT_EQ(Count(metrics, "quality.ctr.unmatched_engagements"), 2);
}

TEST(QualityMonitorTest, JoinWindowExpiresImpressions) {
  MetricsRegistry metrics;
  QualityMonitor::Options options;
  options.join_window_ms = 100;
  QualityMonitor monitor(&metrics, options);

  monitor.OnServed(1, Page({10}), false, 1000);
  monitor.OnEngagement(Act(1, 10, ActionType::kClick, 1101));  // Too late.
  monitor.OnEngagement(Act(1, 10, ActionType::kClick, 900));   // Too early.
  EXPECT_EQ(Count(metrics, "quality.ctr.clicks"), 0);
  EXPECT_EQ(Count(metrics, "quality.ctr.unmatched_engagements"), 2);

  monitor.OnEngagement(Act(1, 10, ActionType::kClick, 1100));  // In window.
  EXPECT_EQ(Count(metrics, "quality.ctr.clicks"), 1);
}

TEST(QualityMonitorTest, RingEvictionUnlinksOldImpressions) {
  MetricsRegistry metrics;
  QualityMonitor::Options options;
  options.ring_size = 2;
  QualityMonitor monitor(&metrics, options);

  monitor.OnServed(1, Page({10, 11}), false, 1000);
  monitor.OnServed(2, Page({20, 21}), false, 1000);  // Evicts user 1.
  monitor.OnEngagement(Act(1, 10, ActionType::kClick, 1100));
  EXPECT_EQ(Count(metrics, "quality.ctr.clicks"), 0);
  EXPECT_EQ(Count(metrics, "quality.ctr.unmatched_engagements"), 1);

  monitor.OnEngagement(Act(2, 21, ActionType::kClick, 1100));
  EXPECT_EQ(Count(metrics, "quality.ctr.clicks"), 1);
  // Impressions counters are cumulative; CTR derives from them, so the
  // ratio reflects all served impressions, not just live slots.
  EXPECT_EQ(Count(metrics, "quality.ctr.impressions"), 4);
}

// ---------------------------------------------------------------------
// Signal 4: drift watchdog.

TEST(QualityMonitorTest, WatchdogFiresLoglossAndNormAlerts) {
  MetricsRegistry metrics;
  QualityMonitor::Options options;
  options.ewma_alpha = 1.0;
  options.watchdog_every_n = 1;
  options.logloss_alert = 0.5;
  options.embedding_norm_alert = 5.0;
  // y − p ≈ 0.95 for the sample below; keep calibration out of the way.
  options.calibration_alert = 1.5;
  QualityMonitor monitor(&metrics, options);

  // A badly wrong confident prediction: engaged but r̂ = −3.
  MfSample bad = Sample(1, ActionType::kClick, -3.0, 1.0);
  bad.user_norm = 20.0;
  bad.video_norm = 20.0;
  monitor.OnMfSample(bad);

  EXPECT_GE(Count(metrics, "quality.alerts.logloss"), 1);
  EXPECT_GE(Count(metrics, "quality.alerts.embedding_norm"), 1);
  EXPECT_EQ(Count(metrics, "quality.alerts.calibration"), 0);
  EXPECT_NEAR(Gauge(metrics, "quality.drift.embedding_norm"), 20.0, 1e-12);
}

TEST(QualityMonitorTest, WatchdogFiresStalenessAndCoverageAlerts) {
  MetricsRegistry metrics;
  QualityMonitor::Options options;
  options.ring_size = 4;
  options.staleness_alert_ms = 1000;
  options.coverage_alert = 0.5;
  QualityMonitor monitor(&metrics, options);

  // Train at t=1000, serve at t=5000 → 4000ms staleness > 1000ms.
  monitor.OnMfSample(Sample(1, ActionType::kClick, 0.0, 1.0, 1000));
  // The same single video fills the whole ring → coverage 1/4 < 0.5.
  monitor.OnServed(1, Page({10, 10}), false, 5000);
  monitor.OnServed(2, Page({10, 10}), false, 5000);

  EXPECT_GE(Count(metrics, "quality.alerts.staleness"), 1);
  EXPECT_GE(Count(metrics, "quality.alerts.coverage"), 1);
  EXPECT_EQ(metrics.GetGauge("quality.drift.sim_staleness_ms")->value(),
            4000);
  EXPECT_NEAR(Gauge(metrics, "quality.drift.served_coverage"), 0.25, 1e-12);
}

TEST(QualityMonitorTest, WatchdogFiresLabelShiftOnEngagementRateJump) {
  MetricsRegistry metrics;
  QualityMonitor::Options options;
  // ewma_alpha 0.5 → label pair runs at α 0.01 (fast) / 0.001 (slow),
  // warm-up guard 5 / 0.001 = 5000 samples.
  options.ewma_alpha = 0.5;
  options.watchdog_every_n = 1;
  QualityMonitor monitor(&metrics, options);

  // A stationary stream: engagement rate pinned at 0.5 by strict
  // alternation. Covers the warm-up guard and then some — the label
  // EWMAs sit within one ripple (α · 0.5) of each other, far under the
  // alert threshold, so a steady stream never fires.
  for (int i = 0; i < 12000; ++i) {
    monitor.OnMfSample(i % 2 == 0
                           ? Sample(1, ActionType::kClick, 0.0, 1.0)
                           : Sample(1, ActionType::kImpress, 0.0, 0.0));
  }
  EXPECT_EQ(Count(metrics, "quality.alerts.label_shift"), 0);

  // The planted shift: engagement rate jumps to 1.0. The fast EWMA
  // races ahead of the slow one and the gap crosses the threshold while
  // per-sample losses stay individually unremarkable — exactly the
  // drift signature SGD re-calibration hides from the loss channels.
  for (int i = 0; i < 3000; ++i) {
    monitor.OnMfSample(Sample(1, ActionType::kClick, 0.0, 1.0));
  }
  EXPECT_GT(Count(metrics, "quality.alerts.label_shift"), 0);
  EXPECT_GT(Gauge(metrics, "quality.drift.label_shift"), 0.0);
  // Attribution: no other training-side alert explains the firing.
  EXPECT_EQ(Count(metrics, "quality.alerts.logloss"), 0);
  EXPECT_EQ(Count(metrics, "quality.alerts.calibration"), 0);
  EXPECT_EQ(Count(metrics, "quality.alerts.bias_drift"), 0);
}

// ---------------------------------------------------------------------
// End-to-end through RecommendationService.

TEST(QualityMonitorTest, ServiceTrainsEachActionThroughTheHookExactlyOnce) {
  MetricsRegistry metrics;
  RecommendationService::Options options;
  options.engine.model.num_factors = 8;
  options.metrics = &metrics;
  options.quality.holdout_every_n = 0;  // Isolate progressive counting.
  RecommendationService service([](VideoId) -> VideoType { return 0; },
                                options);

  // A profiled user trains both its group engine and the global engine;
  // the sample must still be recorded once (hook on global only).
  UserProfile profile;
  service.RegisterProfile(7, profile);
  service.Observe(Act(7, 10, ActionType::kPlayTime, 1000));
  EXPECT_EQ(Count(metrics, "quality.progressive.samples"), 1);

  service.Observe(Act(8, 10, ActionType::kPlayTime, 2000));
  EXPECT_EQ(Count(metrics, "quality.progressive.samples"), 2);
}

TEST(QualityMonitorTest, ServiceEndToEndRecallCtrAndScrape) {
  MetricsRegistry metrics;
  RecommendationService::Options options;
  options.engine.model.num_factors = 8;
  options.metrics = &metrics;
  options.quality.holdout_every_n = 1;  // Every engaged action scored.
  RecommendationService service([](VideoId) -> VideoType { return 0; },
                                options);

  // Strong co-watch structure so held-out actions are predictable: all
  // users cycle the same three videos.
  Timestamp t = 0;
  for (int round = 0; round < 20; ++round) {
    for (UserId user = 1; user <= 6; ++user) {
      for (VideoId video = 10; video <= 12; ++video) {
        service.Observe(Act(user, video, ActionType::kPlayTime, t += 1000));
      }
    }
  }
  EXPECT_GT(Count(metrics, "quality.holdout.evaluated"), 0);
  EXPECT_GT(Count(metrics, "quality.holdout.hits"), 0);
  EXPECT_GT(Gauge(metrics, "quality.online_recall@10"), 0.0);
  EXPECT_GT(Count(metrics, "quality.progressive.samples"), 0);
  const double logloss = Gauge(metrics, "quality.progressive.logloss");
  EXPECT_TRUE(std::isfinite(logloss));
  EXPECT_GT(logloss, 0.0);

  // Serve a page, then engage with its top pick → CTR joins.
  RecRequest request;
  request.user = 1;
  request.top_n = 5;
  request.now = t;
  auto page = service.Recommend(request);
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page->empty());
  service.Observe(Act(1, (*page)[0].video, ActionType::kClick, t + 10));
  EXPECT_EQ(Count(metrics, "quality.ctr.clicks"), 1);
  EXPECT_GT(Gauge(metrics, "quality.ctr.overall"), 0.0);

  // Degraded path records into the degraded segment.
  auto fallback = service.FallbackRecommend(request);
  ASSERT_FALSE(fallback.empty());
  EXPECT_GT(Count(metrics, "quality.ctr.impressions.degraded"), 0);

  // The whole section is visible on a Prometheus scrape, sanitized.
  const std::string text = metrics.PrometheusText();
  EXPECT_NE(text.find("quality_progressive_logloss"), std::string::npos);
  EXPECT_NE(text.find("quality_online_recall_10"), std::string::npos);
  EXPECT_NE(text.find("quality_ctr_overall"), std::string::npos);
  EXPECT_NE(text.find("quality_alerts_logloss_total"), std::string::npos);
}

TEST(QualityMonitorTest, ConcurrentMixedTrafficSmoke) {
  MetricsRegistry metrics;
  QualityMonitor::Options options;
  options.ring_size = 64;
  options.watchdog_every_n = 16;
  QualityMonitor monitor(&metrics, options);

  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&monitor, i] {
      for (int n = 0; n < 500; ++n) {
        const UserId user = static_cast<UserId>(i * 1000 + n % 17);
        const VideoId video = static_cast<VideoId>(n % 31);
        monitor.OnServed(user, Page({video, video + 1}), n % 5 == 0,
                         1000 + n);
        monitor.OnEngagement(Act(user, video, ActionType::kClick, 1001 + n));
        monitor.OnMfSample(Sample(user, ActionType::kClick,
                                  0.1 * (n % 10), 1.0, 1000 + n));
        monitor.OnHoldoutResult(Act(user, video, ActionType::kPlay, n),
                                n % 3 == 0);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Conservation: every engagement either joined, was a duplicate, or
  // was unmatched.
  const std::int64_t engagements = 4 * 500;
  EXPECT_EQ(Count(metrics, "quality.ctr.clicks") +
                Count(metrics, "quality.ctr.duplicate_clicks") +
                Count(metrics, "quality.ctr.unmatched_engagements"),
            engagements);
  EXPECT_EQ(Count(metrics, "quality.progressive.samples"), 4 * 500);
  EXPECT_EQ(Count(metrics, "quality.holdout.evaluated"), 4 * 500);
}

}  // namespace
}  // namespace rtrec
