#include "kvstore/quantization.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <vector>

#include "common/crc32.h"
#include "core/engine.h"
#include "data/dataset.h"
#include "eval/evaluator.h"
#include "eval/experiment_runner.h"
#include "kvstore/checkpoint.h"
#include "kvstore/factor_store.h"

namespace rtrec {
namespace {

// --- Half-precision codec --------------------------------------------------

TEST(HalfCodecTest, ExactValuesRoundTrip) {
  // Every value here is exactly representable in binary16.
  const float exact[] = {0.0f,  -0.0f, 1.0f,   -1.0f,  0.5f,  2.0f,
                         1.5f,  0.25f, -0.75f, 1024.0f, 65504.0f,
                         -65504.0f, 0.0009765625f /* 2^-10 */};
  for (float v : exact) {
    EXPECT_EQ(DecodeHalf(EncodeHalf(v)), v) << "value " << v;
  }
  // Signed zero keeps its sign bit.
  EXPECT_EQ(EncodeHalf(-0.0f), 0x8000u);
  EXPECT_EQ(EncodeHalf(0.0f), 0x0000u);
}

TEST(HalfCodecTest, NormalRelativeErrorBounded) {
  // Round-to-nearest gives relative error <= 2^-11 for normal halves.
  constexpr float kMaxRel = 1.0f / 2048.0f;
  for (int i = 0; i < 4000; ++i) {
    const float v = -8.0f + 0.004f * static_cast<float>(i);
    if (std::fabs(v) < 0.01f) continue;  // Stay in the normal range.
    const float back = DecodeHalf(EncodeHalf(v));
    EXPECT_LE(std::fabs(back - v), std::fabs(v) * kMaxRel) << "value " << v;
  }
}

TEST(HalfCodecTest, SubnormalsRoundTrip) {
  // Half subnormals are multiples of 2^-24; those multiples round-trip
  // exactly, and anything in range survives within half a step.
  constexpr float kStep = 5.9604644775390625e-8f;  // 2^-24.
  for (int m = 1; m < 1024; m += 37) {
    const float v = kStep * static_cast<float>(m);
    EXPECT_EQ(DecodeHalf(EncodeHalf(v)), v) << "multiple " << m;
    EXPECT_EQ(DecodeHalf(EncodeHalf(-v)), -v) << "multiple -" << m;
  }
  const float tiny = 1.7e-8f;  // Below range: underflows to zero...
  EXPECT_EQ(DecodeHalf(EncodeHalf(tiny)), 0.0f);
  // ...but values just under the subnormal threshold round to a step.
  const float near = kStep * 3.4f;
  EXPECT_LE(std::fabs(DecodeHalf(EncodeHalf(near)) - near), kStep / 2.0f);
}

TEST(HalfCodecTest, SpecialsAndOverflow) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(DecodeHalf(EncodeHalf(inf)), inf);
  EXPECT_EQ(DecodeHalf(EncodeHalf(-inf)), -inf);
  EXPECT_TRUE(std::isnan(DecodeHalf(EncodeHalf(
      std::numeric_limits<float>::quiet_NaN()))));
  // Beyond the half range (max finite half is 65504) rounds to Inf.
  EXPECT_EQ(DecodeHalf(EncodeHalf(70000.0f)), inf);
  EXPECT_EQ(DecodeHalf(EncodeHalf(-1e9f)), -inf);
}

// --- Vector quantization ---------------------------------------------------

TEST(QuantizeVectorTest, Float32IsLossless) {
  const std::vector<float> in = {0.1f, -2.5f, 3.75f, 0.0f};
  std::vector<std::byte> packed(in.size() * 4);
  std::vector<float> out(in.size());
  float scale = -1.0f;
  QuantizeVector(FactorPrecision::kFloat32, in.data(), in.size(),
                 packed.data(), &scale);
  EXPECT_EQ(scale, 0.0f);
  DequantizeVector(FactorPrecision::kFloat32, packed.data(), in.size(), scale,
                   out.data());
  EXPECT_EQ(out, in);
}

TEST(QuantizeVectorTest, Int8ErrorWithinHalfStep) {
  // Symmetric scaling: step = max|x| / 127, rounding to nearest keeps
  // every element within step/2; the max element maps exactly.
  std::vector<float> in;
  for (int i = 0; i < 64; ++i) {
    in.push_back(0.31f * std::sin(0.7 * i) - 0.05f * i / 64.0f);
  }
  std::vector<std::byte> packed(in.size());
  std::vector<float> out(in.size());
  float scale = 0.0f;
  QuantizeVector(FactorPrecision::kInt8, in.data(), in.size(), packed.data(),
                 &scale);
  float max_abs = 0.0f;
  for (float v : in) max_abs = std::max(max_abs, std::fabs(v));
  EXPECT_FLOAT_EQ(scale, max_abs / 127.0f);
  DequantizeVector(FactorPrecision::kInt8, packed.data(), in.size(), scale,
                   out.data());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_LE(std::fabs(out[i] - in[i]), scale / 2.0f + 1e-7f) << "i=" << i;
  }
}

TEST(QuantizeVectorTest, Int8RequantizationIsFixedPoint) {
  // Dequantize -> requantize must be stable, or every read-modify-write
  // through the store would drift the vector.
  std::vector<float> in = {0.2f, -0.9f, 0.45f, 0.0f, 0.9f, -0.13f};
  std::vector<std::byte> p1(in.size()), p2(in.size());
  std::vector<float> mid(in.size());
  float s1 = 0.0f, s2 = 0.0f;
  QuantizeVector(FactorPrecision::kInt8, in.data(), in.size(), p1.data(),
                 &s1);
  DequantizeVector(FactorPrecision::kInt8, p1.data(), in.size(), s1,
                   mid.data());
  QuantizeVector(FactorPrecision::kInt8, mid.data(), in.size(), p2.data(),
                 &s2);
  EXPECT_FLOAT_EQ(s2, s1);
  EXPECT_EQ(std::memcmp(p1.data(), p2.data(), in.size()), 0);
}

TEST(QuantizeVectorTest, Int8ZeroVector) {
  std::vector<float> in(8, 0.0f);
  std::vector<std::byte> packed(in.size());
  std::vector<float> out(in.size(), 1.0f);
  float scale = 1.0f;
  QuantizeVector(FactorPrecision::kInt8, in.data(), in.size(), packed.data(),
                 &scale);
  EXPECT_EQ(scale, 0.0f);
  DequantizeVector(FactorPrecision::kInt8, packed.data(), in.size(), scale,
                   out.data());
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

// --- Quantized FactorStore -------------------------------------------------

FactorStore::Options StoreOptions(FactorPrecision precision) {
  FactorStore::Options o;
  o.num_factors = 8;
  o.precision = precision;
  return o;
}

std::vector<float> TestVector(int salt) {
  std::vector<float> v(8);
  for (int i = 0; i < 8; ++i) {
    v[i] = 0.3f * std::sin(0.9 * (salt + i)) + 0.01f * salt;
  }
  return v;
}

TEST(QuantizedFactorStoreTest, Fp16RoundTripWithinBound) {
  FactorStore store(StoreOptions(FactorPrecision::kFloat16));
  for (UserId u = 1; u <= 10; ++u) {
    FactorEntry e;
    e.vec = TestVector(static_cast<int>(u));
    e.bias = 0.25f * u;  // Biases stay float32: exact.
    store.PutUser(u, std::move(e));
  }
  for (UserId u = 1; u <= 10; ++u) {
    const auto got = store.GetUser(u);
    ASSERT_TRUE(got.ok());
    EXPECT_FLOAT_EQ(got->bias, 0.25f * u);
    const std::vector<float> want = TestVector(static_cast<int>(u));
    for (int i = 0; i < 8; ++i) {
      EXPECT_LE(std::fabs(got->vec[i] - want[i]),
                std::fabs(want[i]) / 2048.0f + 1e-7f);
    }
  }
}

TEST(QuantizedFactorStoreTest, Int8RoundTripWithinHalfStep) {
  FactorStore store(StoreOptions(FactorPrecision::kInt8));
  const std::vector<float> want = TestVector(7);
  float max_abs = 0.0f;
  for (float v : want) max_abs = std::max(max_abs, std::fabs(v));
  const float step = max_abs / 127.0f;
  FactorEntry e;
  e.vec = want;
  store.PutVideo(3, std::move(e));
  const auto got = store.GetVideo(3);
  ASSERT_TRUE(got.ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_LE(std::fabs(got->vec[i] - want[i]), step / 2.0f + 1e-7f);
  }
}

TEST(QuantizedFactorStoreTest, GetOrInitIsReadYourWriteConsistent) {
  // The lazily-initialized entry a reader sees must equal what a second
  // read returns — initialization goes through the same quantized
  // payload, not a float side channel.
  for (FactorPrecision p : {FactorPrecision::kFloat16,
                            FactorPrecision::kInt8}) {
    FactorStore store(StoreOptions(p));
    const FactorEntry first = store.GetOrInitUser(42);
    const FactorEntry second = store.GetOrInitUser(42);
    EXPECT_EQ(first.vec, second.vec) << FactorPrecisionToString(p);
    EXPECT_EQ(first.bias, second.bias);
  }
}

TEST(QuantizedFactorStoreTest, BytesPerEntryShrinks) {
  FactorStore::Options fp32 = StoreOptions(FactorPrecision::kFloat32);
  fp32.num_factors = 32;
  FactorStore::Options fp16 = StoreOptions(FactorPrecision::kFloat16);
  fp16.num_factors = 32;
  FactorStore::Options int8 = StoreOptions(FactorPrecision::kInt8);
  int8.num_factors = 32;
  const FactorStore s32(fp32), s16(fp16), s8(int8);
  // The ISSUE guardrail: >=40% smaller per entry than float32.
  EXPECT_LE(static_cast<double>(s16.BytesPerEntry()),
            0.6 * static_cast<double>(s32.BytesPerEntry()));
  EXPECT_LT(s8.BytesPerEntry(), s16.BytesPerEntry());
}

TEST(QuantizedFactorStoreTest, ApproxFactorBytesCountsEntries) {
  FactorStore store(StoreOptions(FactorPrecision::kFloat16));
  EXPECT_EQ(store.ApproxFactorBytes(), 0u);
  store.GetOrInitUser(1);
  store.GetOrInitVideo(2);
  store.GetOrInitVideo(3);
  EXPECT_EQ(store.ApproxFactorBytes(), 3 * store.BytesPerEntry());
}

// --- Checkpoint format versions -------------------------------------------

class QuantizedCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("rtrec_quant_ckpt_" + std::to_string(::getpid()) + ".bin");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(QuantizedCheckpointTest, SamePrecisionIsBitExact) {
  for (FactorPrecision p : {FactorPrecision::kFloat16,
                            FactorPrecision::kInt8}) {
    FactorStore source(StoreOptions(p));
    for (UserId u = 1; u <= 12; ++u) {
      FactorEntry e;
      e.vec = TestVector(static_cast<int>(u));
      e.bias = 0.1f * u;
      source.PutUser(u, std::move(e));
    }
    for (VideoId v = 1; v <= 9; ++v) source.GetOrInitVideo(v);
    source.ObserveRating(2.0);
    source.ObserveRating(4.0);
    ASSERT_TRUE(SaveCheckpoint(path_.string(), &source, nullptr, nullptr)
                    .ok());

    FactorStore restored(StoreOptions(p));
    ASSERT_TRUE(LoadCheckpoint(path_.string(), &restored, nullptr, nullptr)
                    .ok());
    EXPECT_DOUBLE_EQ(restored.GlobalMean(), 3.0);
    for (UserId u = 1; u <= 12; ++u) {
      // Raw payloads round-trip, so the dequantized views are identical
      // (no second quantization hop).
      EXPECT_EQ(restored.GetUser(u)->vec, source.GetUser(u)->vec)
          << FactorPrecisionToString(p) << " user " << u;
    }
    for (VideoId v = 1; v <= 9; ++v) {
      EXPECT_EQ(restored.GetVideo(v)->vec, source.GetVideo(v)->vec);
    }
  }
}

TEST_F(QuantizedCheckpointTest, CrossPrecisionConverts) {
  // fp32 checkpoint -> fp16 store: every loaded vector is the fp16
  // rounding of the saved one.
  FactorStore fp32(StoreOptions(FactorPrecision::kFloat32));
  for (UserId u = 1; u <= 6; ++u) {
    FactorEntry e;
    e.vec = TestVector(static_cast<int>(u));
    fp32.PutUser(u, std::move(e));
  }
  ASSERT_TRUE(SaveCheckpoint(path_.string(), &fp32, nullptr, nullptr).ok());

  FactorStore fp16(StoreOptions(FactorPrecision::kFloat16));
  ASSERT_TRUE(LoadCheckpoint(path_.string(), &fp16, nullptr, nullptr).ok());
  for (UserId u = 1; u <= 6; ++u) {
    const std::vector<float> want = fp32.GetUser(u)->vec;
    const std::vector<float> got = fp16.GetUser(u)->vec;
    for (int i = 0; i < 8; ++i) {
      EXPECT_FLOAT_EQ(got[i], DecodeHalf(EncodeHalf(want[i])));
    }
  }

  // And back: an fp16 checkpoint loads into an fp32 store losslessly
  // (halves are exactly representable as floats).
  ASSERT_TRUE(SaveCheckpoint(path_.string(), &fp16, nullptr, nullptr).ok());
  FactorStore widened(StoreOptions(FactorPrecision::kFloat32));
  ASSERT_TRUE(LoadCheckpoint(path_.string(), &widened, nullptr, nullptr)
                  .ok());
  for (UserId u = 1; u <= 6; ++u) {
    EXPECT_EQ(widened.GetUser(u)->vec, fp16.GetUser(u)->vec);
  }
}

TEST_F(QuantizedCheckpointTest, LoadsLegacyV2Format) {
  // Hand-build a pre-quantization "RTRECCP2" file: float32 entries, no
  // precision tag. The loader must still accept it.
  auto append = [](std::string& buf, const auto& value) {
    buf.append(reinterpret_cast<const char*>(&value), sizeof(value));
  };
  auto frame = [&](std::string& file, const std::string& section) {
    const std::uint64_t len = section.size();
    const std::uint32_t crc = Crc32(section.data(), section.size());
    append(file, len);
    file.append(section);
    append(file, crc);
  };

  const std::vector<float> vec = TestVector(1);
  std::string factors;
  append(factors, std::uint32_t{8});     // num_factors (no precision tag).
  append(factors, double{5.0});          // rating sum.
  append(factors, std::uint64_t{2});     // rating count.
  append(factors, std::uint64_t{1});     // num users.
  append(factors, std::uint64_t{0});     // num videos.
  append(factors, std::uint64_t{7});     // user id.
  append(factors, float{0.5f});          // bias.
  append(factors, std::uint32_t{8});     // vector length.
  factors.append(reinterpret_cast<const char*>(vec.data()),
                 vec.size() * sizeof(float));

  std::string empty;
  append(empty, std::uint64_t{0});  // Zero lists / histories.

  std::string file = "RTRECCP2";
  frame(file, factors);
  frame(file, empty);
  frame(file, empty);
  ASSERT_TRUE(WriteFileAtomic(path_.string(), file).ok());

  FactorStore restored(StoreOptions(FactorPrecision::kFloat32));
  ASSERT_TRUE(LoadCheckpoint(path_.string(), &restored, nullptr, nullptr)
                  .ok());
  EXPECT_EQ(restored.NumUsers(), 1u);
  EXPECT_DOUBLE_EQ(restored.GlobalMean(), 2.5);
  const auto entry = restored.GetUser(7);
  ASSERT_TRUE(entry.ok());
  EXPECT_FLOAT_EQ(entry->bias, 0.5f);
  EXPECT_EQ(entry->vec, vec);

  // The same legacy file also loads into a quantized store (converted
  // through the fp16 codec on the way in).
  FactorStore quantized(StoreOptions(FactorPrecision::kFloat16));
  ASSERT_TRUE(LoadCheckpoint(path_.string(), &quantized, nullptr, nullptr)
                  .ok());
  const auto half_entry = quantized.GetUser(7);
  ASSERT_TRUE(half_entry.ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(half_entry->vec[i], DecodeHalf(EncodeHalf(vec[i])));
  }
}

// --- Recall guardrail ------------------------------------------------------

TEST(QuantizedRecallTest, Fp16RecallWithinOnePercentOfFp32) {
  // Same world, same split, same seed; the engines differ only in factor
  // storage precision. fp16 rounding (2^-11 relative) is far below the
  // SGD noise floor, so recall@10 must match within the ISSUE's 1% band.
  const SyntheticWorld world(SmallWorldConfig());
  const Dataset cleaned =
      Dataset(world.GenerateDays(0, 7)).FilterMinActivity(5, 3);
  const auto [train, test] = cleaned.SplitAtTime(6 * kMillisPerDay);
  ASSERT_GT(train.size(), 0u);
  ASSERT_GT(test.size(), 0u);

  const OfflineEvaluator evaluator;
  double recall10[2] = {0.0, 0.0};
  const FactorPrecision precisions[2] = {FactorPrecision::kFloat32,
                                         FactorPrecision::kFloat16};
  for (int i = 0; i < 2; ++i) {
    RecEngine::Options options =
        DefaultEngineOptions(UpdatePolicy::kCombine);
    options.model.precision = precisions[i];
    RecEngine engine(world.TypeResolver(), options);
    recall10[i] = evaluator.Evaluate(engine, train, test).recall(10);
  }
  ASSERT_GT(recall10[0], 0.0);
  EXPECT_LE(std::fabs(recall10[1] - recall10[0]) / recall10[0], 0.01)
      << "fp32 recall@10 " << recall10[0] << " vs fp16 " << recall10[1];
}

}  // namespace
}  // namespace rtrec
