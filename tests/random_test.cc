#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace rtrec {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(10), 10u);
    const std::int64_t v = rng.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BoundedUniformCoversAllValues) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.NextUint64(8)];
  for (int c : counts) {
    EXPECT_GT(c, 700);  // Expected 1000 each; loose bound.
    EXPECT_LT(c, 1300);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(23);
  int trues = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++trues;
  }
  EXPECT_NEAR(static_cast<double>(trues) / n, 0.3, 0.03);
  Rng rng2(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.NextBool(0.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  ZipfDistribution zipf(4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(zipf.Pmf(i), 0.25, 1e-9);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.1);
  double total = 0;
  for (std::size_t i = 0; i < 100; ++i) total += zipf.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, HeadHeavierThanTail) {
  ZipfDistribution zipf(1000, 1.0);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(100));
  EXPECT_GT(zipf.Pmf(100), zipf.Pmf(999));
}

TEST(ZipfTest, SampleMatchesPmfRoughly) {
  ZipfDistribution zipf(10, 1.0);
  Rng rng(37);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, zipf.Pmf(i), 0.01)
        << "rank " << i;
  }
}

TEST(ZipfTest, SingleElementAlwaysSampled) {
  ZipfDistribution zipf(1, 2.0);
  Rng rng(41);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

// Property sweep: sampling stays in range for many (n, s) combinations.
class ZipfParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(ZipfParamTest, SamplesAlwaysInRange) {
  const auto [n, s] = GetParam();
  ZipfDistribution zipf(n, s);
  Rng rng(n * 1000 + static_cast<std::uint64_t>(s * 10));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(zipf.Sample(rng), n);
  }
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) total += zipf.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfParamTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 10, 1000),
                       ::testing::Values(0.0, 0.5, 1.0, 2.0)));

}  // namespace
}  // namespace rtrec
