#include "core/recommender.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/engine.h"

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t, double fraction = 1.0) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = fraction;
  a.time = t;
  return a;
}

RecEngine::Options SmallEngineOptions() {
  RecEngine::Options options;
  options.model.num_factors = 8;
  options.similarity.xi_millis = 1.0 * kMillisPerDay;
  options.recommend.top_n = 5;
  return options;
}

VideoTypeResolver TwoTypes() {
  return [](VideoId v) -> VideoType { return v % 2; };
}

class MfRecommenderTest : public ::testing::Test {
 protected:
  MfRecommenderTest() : engine_(TwoTypes(), SmallEngineOptions()) {}

  /// Builds co-watch structure: users 1..8 watch a clique of videos
  /// {10, 12, 14}; users 21..24 watch {31, 33}.
  void TrainCliques() {
    Timestamp t = 1000;
    for (int round = 0; round < 20; ++round) {
      for (UserId u = 1; u <= 8; ++u) {
        for (VideoId v : {10, 12, 14}) {
          engine_.Observe(Play(u, v, t));
          t += 1000;
        }
      }
      for (UserId u = 21; u <= 24; ++u) {
        for (VideoId v : {31, 33}) {
          engine_.Observe(Play(u, v, t));
          t += 1000;
        }
      }
    }
    now_ = t;
  }

  RecEngine engine_;
  Timestamp now_ = 0;
};

TEST_F(MfRecommenderTest, ColdUserWithoutSeedsGetsEmptyList) {
  RecRequest request;
  request.user = 777;
  request.now = 0;
  auto recs = engine_.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());
}

TEST_F(MfRecommenderTest, RelatedVideosFromExplicitSeed) {
  TrainCliques();
  // "Related videos" scenario (Fig. 6b): seed = video being watched.
  RecRequest request;
  request.user = 99;  // Brand-new user; candidates come from the seed.
  request.seed_videos = {10};
  request.now = now_;
  auto recs = engine_.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  // The co-watched clique videos surface.
  std::vector<VideoId> ids;
  for (const auto& r : *recs) ids.push_back(r.video);
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 12) != ids.end() ||
              std::find(ids.begin(), ids.end(), 14) != ids.end());
  // The other clique's videos do not.
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 31) == ids.end());
}

TEST_F(MfRecommenderTest, GuessYouLikeUsesHistorySeeds) {
  TrainCliques();
  // User 1 has history; no explicit seeds ("guess you like", Fig. 6a).
  // With the default (exclude_watched off), clique favourites resurface.
  RecRequest request;
  request.user = 1;
  request.now = now_;
  auto recs = engine_.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_FALSE(recs->empty());
  for (const auto& r : *recs) {
    EXPECT_TRUE(r.video == 10 || r.video == 12 || r.video == 14) << r.video;
  }
}

TEST_F(MfRecommenderTest, ExplicitSeedNeverRecommendedBack) {
  TrainCliques();
  RecRequest request;
  request.user = 99;
  request.seed_videos = {10};
  request.now = now_;
  auto recs = engine_.Recommend(request);
  ASSERT_TRUE(recs.ok());
  for (const auto& r : *recs) {
    EXPECT_NE(r.video, 10u);
  }
}

TEST_F(MfRecommenderTest, WatchedVideosExcludedWhenConfigured) {
  RecEngine::Options options = SmallEngineOptions();
  options.recommend.exclude_watched = true;
  RecEngine engine(TwoTypes(), options);
  Timestamp t = 1000;
  for (int round = 0; round < 20; ++round) {
    for (UserId u = 1; u <= 8; ++u) {
      for (VideoId v : {10, 12, 14}) {
        engine.Observe(Play(u, v, t));
        t += 1000;
      }
    }
  }
  RecRequest request;
  request.user = 1;
  request.seed_videos = {10};
  request.now = t;
  auto recs = engine.Recommend(request);
  ASSERT_TRUE(recs.ok());
  for (const auto& r : *recs) {
    EXPECT_NE(r.video, 10u);
    EXPECT_NE(r.video, 12u);  // Watched by user 1.
    EXPECT_NE(r.video, 14u);
  }
}

TEST_F(MfRecommenderTest, ResultsSortedByScore) {
  TrainCliques();
  RecRequest request;
  request.user = 99;
  request.seed_videos = {10};
  request.now = now_;
  auto recs = engine_.Recommend(request);
  ASSERT_TRUE(recs.ok());
  for (std::size_t i = 1; i < recs->size(); ++i) {
    EXPECT_GE((*recs)[i - 1].score, (*recs)[i].score);
  }
}

TEST_F(MfRecommenderTest, TopNOverrideRespected) {
  TrainCliques();
  RecRequest request;
  request.user = 99;
  request.seed_videos = {10};
  request.top_n = 1;
  request.now = now_;
  auto recs = engine_.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_LE(recs->size(), 1u);
}

TEST_F(MfRecommenderTest, DeterministicForIdenticalState) {
  TrainCliques();
  RecRequest request;
  request.user = 99;
  request.seed_videos = {10};
  request.now = now_;
  auto a = engine_.Recommend(request);
  auto b = engine_.Recommend(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(MfRecommenderTest, LatencyHistogramRecordsRequests) {
  TrainCliques();
  RecRequest request;
  request.user = 99;
  request.seed_videos = {10};
  request.now = now_;
  const std::uint64_t before = engine_.recommender().latency().count();
  engine_.Recommend(request);
  EXPECT_EQ(engine_.recommender().latency().count(), before + 1);
}

TEST_F(MfRecommenderTest, StaleSimilaritiesFadeFromCandidates) {
  TrainCliques();
  // Far in the future, similarity entries have fully decayed (ξ = 1 day).
  RecRequest request;
  request.user = 99;
  request.seed_videos = {10};
  request.now = now_ + 60 * kMillisPerDay;
  auto recs = engine_.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());
}

TEST_F(MfRecommenderTest, DuplicateSeedsDoNotDuplicateResults) {
  TrainCliques();
  RecRequest request;
  request.user = 99;
  request.seed_videos = {10, 10, 10};
  request.now = now_;
  auto recs = engine_.Recommend(request);
  ASSERT_TRUE(recs.ok());
  std::set<VideoId> seen;
  for (const auto& r : *recs) {
    EXPECT_TRUE(seen.insert(r.video).second) << "duplicate " << r.video;
  }
}

TEST_F(MfRecommenderTest, UnknownSeedYieldsEmptyNotError) {
  TrainCliques();
  RecRequest request;
  request.user = 99;
  request.seed_videos = {987654};  // Never seen by anyone.
  request.now = now_;
  auto recs = engine_.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());
}

TEST_F(MfRecommenderTest, HugeTopNReturnsWhatExists) {
  TrainCliques();
  RecRequest request;
  request.user = 99;
  request.seed_videos = {10};
  request.top_n = 100000;
  request.now = now_;
  auto recs = engine_.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_LE(recs->size(), 5u);  // Bounded by actual candidates.
}

TEST(FrontierExpansionTest, RepeatedImprovementDoesNotCrowdOutFrontier) {
  // Regression: a candidate whose best path similarity improves more than
  // once within a hop (reached from several frontier nodes) used to be
  // appended to the next frontier once per improvement, so its duplicates
  // crowded distinct candidates out of the capped frontier.
  RecEngine::Options options;
  options.model.num_factors = 8;
  options.recommend.candidate_hops = 2;
  options.recommend.hop_fanout = 1;  // Frontier cap = fanout·|seeds| = 2.
  RecEngine engine([](VideoId) -> VideoType { return 0; }, options);
  const Timestamp now = 1000;
  // Both seeds (100, 101) point at A=200 with different strengths, so A's
  // best path similarity improves twice in hop 0. Only the weaker branch
  // B=201 leads on to C=300.
  SimTableStore& table = engine.sim_table();
  table.Update(100, 200, 0.90, now);
  table.Update(101, 200, 0.95, now);
  table.Update(100, 201, 0.50, now);
  table.Update(201, 300, 0.80, now);

  RecRequest request;
  request.user = 999;
  request.seed_videos = {100, 101};
  request.now = now;
  auto recs = engine.Recommend(request);
  ASSERT_TRUE(recs.ok());
  bool found_c = false;
  for (const auto& r : *recs) found_c |= (r.video == 300);
  EXPECT_TRUE(found_c) << "duplicate frontier slots for video 200 crowded "
                          "out 201, so 300 was never reached";
}

TEST(FactorCacheEquivalenceTest, CachedServingMatchesUncached) {
  auto build = [](std::size_t cache_size) {
    RecEngine::Options options;
    options.model.num_factors = 8;
    options.recommend.factor_cache_size = cache_size;
    auto engine = std::make_unique<RecEngine>(
        [](VideoId) -> VideoType { return 0; }, options);
    Timestamp t = 1000;
    for (int round = 0; round < 10; ++round) {
      for (UserId u = 1; u <= 6; ++u) {
        for (VideoId v : {10, 12, 14, 16}) {
          engine->Observe(Play(u, v, t));
          t += 1000;
        }
      }
    }
    return std::make_pair(std::move(engine), t);
  };
  auto [cached, t1] = build(4096);
  auto [uncached, t2] = build(0);
  ASSERT_EQ(t1, t2);
  EXPECT_EQ(uncached->recommender().factor_cache(), nullptr);

  RecRequest request;
  request.user = 3;
  request.now = t1;
  auto warm = cached->Recommend(request);  // Fill the cache.
  ASSERT_TRUE(warm.ok());
  auto a = cached->Recommend(request);
  auto b = uncached->Recommend(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *warm);
  EXPECT_EQ(*a, *b);
  FactorCache* cache = cached->recommender().factor_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->hits(), 0u);

  // An update to a video invalidates exactly its cached entry: the next
  // serve re-reads it from the store and still matches the uncached path.
  cached->Observe(Play(3, 10, t1 + 1000));
  uncached->Observe(Play(3, 10, t1 + 1000));
  request.now = t1 + 1000;
  auto a2 = cached->Recommend(request);
  auto b2 = uncached->Recommend(request);
  ASSERT_TRUE(a2.ok());
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(*a2, *b2);
}

TEST(TransitiveClosureTest, SecondHopReachesChainNeighbors) {
  // Similar-video chain 10—11—12 with no direct (10, 12) co-watch:
  // 1-hop expansion from seed 10 cannot see 12; the YouTube-style 2-hop
  // closure can.
  auto build = [](int hops) {
    RecEngine::Options options;
    options.model.num_factors = 8;
    options.model.eta0 = 0.05;
    options.recommend.candidate_hops = hops;
    options.recommend.top_n = 10;
    auto engine = std::make_unique<RecEngine>(
        [](VideoId) -> VideoType { return 0; }, options);
    Timestamp t = 0;
    for (int round = 0; round < 15; ++round) {
      for (UserId u = 1; u <= 4; ++u) {  // Co-watch 10 and 11.
        engine->Observe(Play(u, 10, t += 1000));
        engine->Observe(Play(u, 11, t += 1000));
      }
      for (UserId u = 11; u <= 14; ++u) {  // Co-watch 11 and 12.
        engine->Observe(Play(u, 11, t += 1000));
        engine->Observe(Play(u, 12, t += 1000));
      }
    }
    return std::make_pair(std::move(engine), t);
  };

  auto [one_hop, t1] = build(1);
  RecRequest request;
  request.user = 999;
  request.seed_videos = {10};
  request.now = t1;
  auto recs1 = one_hop->Recommend(request);
  ASSERT_TRUE(recs1.ok());
  bool found_12 = false;
  for (const auto& r : *recs1) found_12 |= (r.video == 12);
  EXPECT_FALSE(found_12) << "1-hop expansion must not reach video 12";

  auto [two_hop, t2] = build(2);
  request.now = t2;
  auto recs2 = two_hop->Recommend(request);
  ASSERT_TRUE(recs2.ok());
  found_12 = false;
  bool found_11 = false;
  for (const auto& r : *recs2) {
    found_12 |= (r.video == 12);
    found_11 |= (r.video == 11);
  }
  EXPECT_TRUE(found_11);
  EXPECT_TRUE(found_12) << "2-hop closure must reach video 12";
}

TEST(TransitiveClosureTest, HopConfigValidated) {
  RecommendConfig config;
  config.candidate_hops = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.candidate_hops = 4;
  EXPECT_FALSE(config.Validate().ok());
  config.candidate_hops = 2;
  config.hop_fanout = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(RecEngineOptionsTest, ValidationCascades) {
  RecEngine::Options options;
  EXPECT_TRUE(options.Validate().ok());
  options.history_per_user = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = RecEngine::Options{};
  options.model.num_factors = -1;
  EXPECT_FALSE(options.Validate().ok());
  options = RecEngine::Options{};
  options.similarity.beta = 2.0;
  EXPECT_FALSE(options.Validate().ok());
  options = RecEngine::Options{};
  options.recommend.top_n = 0;
  EXPECT_FALSE(options.Validate().ok());
}

}  // namespace
}  // namespace rtrec
