#include "baselines/reservoir_mf.h"

#include <gtest/gtest.h>

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;
  a.time = t;
  return a;
}

ReservoirMfRecommender::Options SmallOptions(std::size_t reservoir = 64,
                                             std::size_t replay = 2) {
  ReservoirMfRecommender::Options options;
  options.reservoir_size = reservoir;
  options.replay_per_action = replay;
  options.engine.model.num_factors = 8;
  options.engine.model.eta0 = 0.05;
  return options;
}

VideoTypeResolver OneType() {
  return [](VideoId) -> VideoType { return 0; };
}

TEST(ReservoirMfTest, ReservoirFillsThenSaturates) {
  ReservoirMfRecommender model(OneType(), SmallOptions(16));
  for (int i = 0; i < 10; ++i) {
    model.Observe(Play(1, static_cast<VideoId>(i + 1), i));
  }
  EXPECT_EQ(model.ReservoirSize(), 10u);
  EXPECT_EQ(model.ActionsSeen(), 10u);
  for (int i = 10; i < 100; ++i) {
    model.Observe(Play(1, static_cast<VideoId>(i + 1), i));
  }
  EXPECT_EQ(model.ReservoirSize(), 16u);  // Capacity bound.
  EXPECT_EQ(model.ActionsSeen(), 100u);
}

TEST(ReservoirMfTest, ImpressionsNeitherTrainNorSample) {
  ReservoirMfRecommender model(OneType(), SmallOptions());
  UserAction impress;
  impress.user = 1;
  impress.video = 10;
  impress.type = ActionType::kImpress;
  model.Observe(impress);
  // Impressions are offered to the reservoir (they are stream elements)
  // but never train; the engine stays empty.
  EXPECT_EQ(model.engine().factors().NumUsers(), 0u);
}

TEST(ReservoirMfTest, ServesLikeAnMfEngine) {
  ReservoirMfRecommender model(OneType(), SmallOptions());
  Timestamp t = 0;
  for (int round = 0; round < 25; ++round) {
    for (UserId u = 1; u <= 6; ++u) {
      model.Observe(Play(u, 10, t += 100));
      model.Observe(Play(u, 11, t += 100));
    }
  }
  RecRequest request;
  request.user = 42;
  request.seed_videos = {10};
  request.now = t;
  auto recs = model.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].video, 11u);
  EXPECT_EQ(model.name(), "ReservoirMF");
}

TEST(ReservoirMfTest, ReplayIncreasesTrainingVolume) {
  // With replay_per_action = 4, the model applies ~5x the SGD steps of
  // the single-pass strategy; the rating counter shows it.
  ReservoirMfRecommender replayed(OneType(), SmallOptions(64, 4));
  ReservoirMfRecommender pure(OneType(), SmallOptions(64, 0));
  Timestamp t = 0;
  for (int i = 0; i < 50; ++i) {
    const UserAction a = Play(1 + i % 5, 1 + i % 7, t += 100);
    replayed.Observe(a);
    pure.Observe(a);
  }
  EXPECT_EQ(pure.engine().factors().RatingCount(), 50u);
  EXPECT_GT(replayed.engine().factors().RatingCount(), 200u);
}

TEST(ReservoirMfTest, ZeroReplayMatchesPureOnlineTrajectory) {
  // replay_per_action = 0 must degenerate to the paper's single-pass
  // strategy exactly.
  auto options = SmallOptions(64, 0);
  ReservoirMfRecommender reservoir(OneType(), options);
  RecEngine pure(OneType(), options.engine);
  Timestamp t = 0;
  for (int i = 0; i < 80; ++i) {
    const UserAction a = Play(1 + i % 5, 1 + i % 9, t += 100);
    reservoir.Observe(a);
    pure.Observe(a);
  }
  for (UserId u = 1; u <= 5; ++u) {
    for (VideoId v = 1; v <= 9; ++v) {
      EXPECT_DOUBLE_EQ(reservoir.engine().model().Predict(u, v),
                       pure.model().Predict(u, v));
    }
  }
}

}  // namespace
}  // namespace rtrec
