#include "service/recommendation_service.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;
  a.time = t;
  return a;
}

VideoTypeResolver OneType() {
  return [](VideoId) -> VideoType { return 0; };
}

RecommendationService::Options FastOptions() {
  RecommendationService::Options options;
  options.engine.model.num_factors = 8;
  options.engine.model.eta0 = 0.05;
  return options;
}

UserProfile MaleYoung() {
  UserProfile p;
  p.registered = true;
  p.gender = Gender::kMale;
  p.age = AgeBucket::k18To24;
  return p;
}

TEST(RecommendationServiceTest, ColdStartServesHotVideos) {
  RecommendationService service(OneType(), FastOptions());
  // Some global traffic heats videos.
  for (UserId u = 1; u <= 5; ++u) {
    service.Observe(Play(u, 100, 1000));
    service.Observe(Play(u, 101, 2000));
  }
  RecRequest request;
  request.user = 999;  // Never seen, unregistered.
  request.top_n = 5;
  request.now = 3000;
  auto recs = service.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty()) << "cold users must never get an empty page";
  EXPECT_TRUE((*recs)[0].video == 100 || (*recs)[0].video == 101);
}

TEST(RecommendationServiceTest, WarmUserGetsPersonalizedResults) {
  RecommendationService service(OneType(), FastOptions());
  for (UserId u = 1; u <= 6; ++u) {
    service.RegisterProfile(u, MaleYoung());
  }
  Timestamp t = 0;
  for (int round = 0; round < 25; ++round) {
    for (UserId u = 1; u <= 6; ++u) {
      service.Observe(Play(u, 10, t += 1000));
      service.Observe(Play(u, 11, t += 1000));
    }
    service.Observe(Play(50, 200, t += 1000));  // Unrelated hot noise.
  }
  RecRequest request;
  request.user = 1;
  request.seed_videos = {10};
  request.top_n = 3;
  request.now = t;
  auto recs = service.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].video, 11u);  // Group co-watch wins the top slot.
}

TEST(RecommendationServiceTest, GlobalModeSkipsPerGroupTraining) {
  RecommendationService::Options options = FastOptions();
  options.demographic_training = false;
  RecommendationService service(OneType(), options);
  EXPECT_EQ(service.trainer(), nullptr);
  service.Observe(Play(1, 10, 100));
  RecRequest request;
  request.user = 1;
  request.now = 200;
  EXPECT_TRUE(service.Recommend(request).ok());
}

TEST(RecommendationServiceTest, MetricsCountTraffic) {
  MetricsRegistry registry;
  RecommendationService::Options options = FastOptions();
  options.metrics = &registry;
  RecommendationService service(OneType(), options);
  service.Observe(Play(1, 10, 100));
  service.Observe(Play(1, 11, 200));
  RecRequest request;
  request.user = 1;
  request.now = 300;
  (void)service.Recommend(request);
  EXPECT_EQ(registry.GetCounter("service.actions")->value(), 2);
  EXPECT_EQ(registry.GetCounter("service.requests")->value(), 1);
  EXPECT_EQ(service.request_latency().count(), 1u);
}

TEST(RecommendationServiceTest, ServingPathMetricsVisible) {
  // The batched VectorsGet and the factor cache must surface through the
  // service registry (the Stats RPC serves exactly this registry).
  MetricsRegistry registry;
  RecommendationService::Options options = FastOptions();
  options.metrics = &registry;
  RecommendationService service(OneType(), options);
  Timestamp t = 0;
  for (int round = 0; round < 10; ++round) {
    for (UserId u = 1; u <= 4; ++u) {
      service.Observe(Play(u, 10, t += 1000));
      service.Observe(Play(u, 11, t += 1000));
    }
  }
  RecRequest request;
  request.user = 1;
  request.seed_videos = {10};
  request.now = t;
  ASSERT_TRUE(service.Recommend(request).ok());
  ASSERT_TRUE(service.Recommend(request).ok());  // Second serve hits cache.
  EXPECT_GT(registry.GetCounter("kvstore.multiget.calls")->value(), 0);
  EXPECT_GT(registry.GetCounter("kvstore.multiget.keys")->value(), 0);
  EXPECT_GT(registry.GetCounter("service.factor_cache.misses")->value(), 0);
  EXPECT_GT(registry.GetCounter("service.factor_cache.hits")->value(), 0);
}

TEST(RecommendationServiceTest, ConcurrentTrafficIsSafe) {
  RecommendationService service(OneType(), FastOptions());
  for (UserId u = 1; u <= 8; ++u) service.RegisterProfile(u, MaleYoung());
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&service, t] {
      for (int i = 0; i < 1500; ++i) {
        service.Observe(Play(1 + (t * 7 + i) % 8,
                             1 + static_cast<VideoId>(i % 30), i));
      }
    });
  }
  threads.emplace_back([&service, &stop] {
    RecRequest request;
    request.top_n = 5;
    while (!stop.load()) {
      request.user = 1;
      request.now = 100000;
      ASSERT_TRUE(service.Recommend(request).ok());
    }
  });
  for (int t = 0; t < 3; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true);
  threads.back().join();
  EXPECT_GT(service.request_latency().count(), 0u);
}

TEST(RecommendationServiceTest, CheckpointRestoreRoundTrip) {
  const std::string dir =
      "/tmp/rtrec_service_ckpt_" + std::to_string(::getpid());
  RecommendationService original(OneType(), FastOptions());
  original.RegisterProfile(1, MaleYoung());
  Timestamp t = 0;
  for (int round = 0; round < 20; ++round) {
    original.Observe(Play(1, 10, t += 1000));
    original.Observe(Play(1, 11, t += 1000));
    original.Observe(Play(99, 30, t += 1000));  // Global engine traffic.
  }
  ASSERT_TRUE(original.Checkpoint(dir).ok());

  RecommendationService restored(OneType(), FastOptions());
  restored.RegisterProfile(1, MaleYoung());  // Profiles re-registered.
  ASSERT_TRUE(restored.Restore(dir).ok());

  ASSERT_NE(restored.trainer(), nullptr);
  EXPECT_EQ(restored.trainer()->ActiveGroups().size(), 1u);
  RecEngine* group_engine = restored.trainer()->GetEngine(
      DemographicGrouper::GroupFor(MaleYoung()));
  ASSERT_NE(group_engine, nullptr);
  EXPECT_GT(group_engine->sim_table().GetDecayedSimilarity(10, 11, t), 0.0);
  RecEngine* global = restored.trainer()->GetEngine(kGlobalGroup);
  ASSERT_NE(global, nullptr);
  EXPECT_TRUE(global->factors().GetVideo(30).ok());

  std::filesystem::remove_all(dir);
}

TEST(RecommendationServiceTest, GlobalModeCheckpointRoundTrip) {
  const std::string dir =
      "/tmp/rtrec_service_gckpt_" + std::to_string(::getpid());
  RecommendationService::Options options = FastOptions();
  options.demographic_training = false;
  RecommendationService original(OneType(), options);
  for (int i = 0; i < 30; ++i) {
    original.Observe(Play(1 + i % 3, 1 + i % 5, i * 100));
  }
  ASSERT_TRUE(original.Checkpoint(dir).ok());
  RecommendationService restored(OneType(), options);
  ASSERT_TRUE(restored.Restore(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(RecommendationServiceTest, FallbackExcludesRequestSeeds) {
  // Regression: the degraded-mode path used to ignore request.seed_videos
  // and could hand back the very video the user was watching.
  RecommendationService service(OneType(), FastOptions());
  for (UserId u = 1; u <= 5; ++u) service.Observe(Play(u, 100, 1000));
  for (UserId u = 1; u <= 3; ++u) service.Observe(Play(u, 101, 2000));
  RecRequest request;
  request.user = 999;
  request.seed_videos = {100};  // The video on screen — and the hottest.
  request.top_n = 1;
  request.now = 3000;
  std::vector<ScoredVideo> recs = service.FallbackRecommend(request);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].video, 101u);
}

TEST(RecommendationServiceTest, FallbackExcludesWatchedWhenConfigured) {
  RecommendationService::Options options = FastOptions();
  options.engine.recommend.exclude_watched = true;
  RecommendationService service(OneType(), options);
  for (UserId u = 1; u <= 5; ++u) service.Observe(Play(u, 100, 1000));
  for (UserId u = 1; u <= 3; ++u) service.Observe(Play(u, 101, 2000));
  service.Observe(Play(7, 100, 2500));  // User 7 already watched 100.
  RecRequest request;
  request.user = 7;
  request.top_n = 2;
  request.now = 3000;
  std::vector<ScoredVideo> recs = service.FallbackRecommend(request);
  ASSERT_FALSE(recs.empty());
  for (const auto& r : recs) EXPECT_NE(r.video, 100u);
}

TEST(RecommendationServiceTest, FallbackStillFullWhenSeedsOverlapHotList) {
  // Over-fetching keeps the page full after filtering.
  RecommendationService service(OneType(), FastOptions());
  for (UserId u = 1; u <= 5; ++u) {
    service.Observe(Play(u, 100, 1000));
    service.Observe(Play(u, 101, 1500));
    service.Observe(Play(u, 102, 2000));
  }
  RecRequest request;
  request.user = 999;
  request.seed_videos = {100};
  request.top_n = 2;
  request.now = 3000;
  std::vector<ScoredVideo> recs = service.FallbackRecommend(request);
  EXPECT_EQ(recs.size(), 2u);
  for (const auto& r : recs) EXPECT_NE(r.video, 100u);
}

TEST(RecommendationServiceTest, ProfilesRouteToGroupEngines) {
  RecommendationService service(OneType(), FastOptions());
  service.RegisterProfile(1, MaleYoung());
  service.Observe(Play(1, 10, 100));   // Male group engine.
  service.Observe(Play(99, 20, 100));  // Unregistered -> global only.
  ASSERT_NE(service.trainer(), nullptr);
  EXPECT_EQ(service.trainer()->ActiveGroups().size(), 1u);
}

}  // namespace
}  // namespace rtrec
