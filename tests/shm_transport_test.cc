#include "net/shm_transport.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.h"
#include "common/trace.h"
#include "net/rec_client.h"
#include "net/rec_server.h"
#include "net/wire.h"
#include "obs/span_collector.h"
#include "service/recommendation_service.h"

namespace rtrec {
namespace {

std::int64_t SteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Unique-enough shm object names so parallel ctest invocations and
/// leaked segments from crashed earlier runs cannot collide.
std::string TestShmName(const std::string& tag) {
  return "/rtrec.test-" + tag + "-" + std::to_string(getpid());
}

UserAction Play(UserId user, VideoId video, Timestamp t) {
  UserAction action;
  action.user = user;
  action.video = video;
  action.type = ActionType::kPlayTime;
  action.view_fraction = 1.0;
  action.time = t;
  return action;
}

VideoTypeResolver OneType() {
  return [](VideoId) -> VideoType { return 0; };
}

RecommendationService::Options FastService() {
  RecommendationService::Options options;
  options.engine.model.num_factors = 8;
  return options;
}

// --- Addressing (docs/WIRE_PROTOCOL.md §9.1) -------------------------------

TEST(ShmAddressTest, AcceptedSpellings) {
  EXPECT_EQ(ParseShmAddress("rec://shm/cache0"), "/rtrec.cache0");
  EXPECT_EQ(ParseShmAddress("shm:cache0"), "/rtrec.cache0");
  EXPECT_EQ(ParseShmAddress("shm://a.B_c-9"), "/rtrec.a.B_c-9");
}

TEST(ShmAddressTest, TcpHostsAndBadNamesAreNotShmAddresses) {
  EXPECT_FALSE(ParseShmAddress("127.0.0.1").has_value());
  EXPECT_FALSE(ParseShmAddress("shard3.prod.example.com").has_value());
  EXPECT_FALSE(ParseShmAddress("").has_value());
  EXPECT_FALSE(ParseShmAddress("shm:").has_value());           // empty name
  EXPECT_FALSE(ParseShmAddress("shm:has space").has_value());  // bad char
  EXPECT_FALSE(ParseShmAddress("shm:a/b").has_value());        // bad char
  EXPECT_FALSE(
      ParseShmAddress("shm:" + std::string(64, 'x')).has_value());  // too long
}

// --- Raw transport ---------------------------------------------------------

/// An ShmServer that answers Ping with Pong and echoes nothing else.
struct PingShmServer {
  explicit PingShmServer(const std::string& name,
                         ShmServer::Options options = {}) {
    auto created = ShmServer::Create(
        name, options,
        [](const Frame& frame, ShmServer::ConnState* conn,
           const ShmServer::SendFn& send) {
          (void)conn;
          if (frame.type == MessageType::kPingRequest) {
            send(EncodePongResponse(frame.request_id));
          }
        });
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    if (created.ok()) server = std::move(*created);
  }
  std::unique_ptr<ShmServer> server;
};

TEST(ShmTransportTest, PingRoundTripOverSegment) {
  const std::string name = TestShmName("ping");
  PingShmServer live(name);
  ASSERT_NE(live.server, nullptr);

  auto client = ShmClient::Attach(name, {});
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const std::string ping = EncodePingRequest(7);
  ASSERT_TRUE((*client)->Send(ping, SteadyMillis() + 2000).ok());
  auto frame = (*client)->NextFrame(SteadyMillis() + 2000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, MessageType::kPongResponse);
  EXPECT_EQ(frame->request_id, 7u);
}

TEST(ShmTransportTest, AttachToMissingSegmentIsUnavailable) {
  auto client = ShmClient::Attach(TestShmName("nonexistent"), {});
  EXPECT_TRUE(client.status().IsUnavailable())
      << client.status().ToString();
}

TEST(ShmTransportTest, RingWrapsSurviveManyFrames) {
  // Tiny rings force the cursors to wrap many times; every frame must
  // still arrive intact (docs/WIRE_PROTOCOL.md §9.2: free-running
  // cursors, two-part copies at the boundary).
  const std::string name = TestShmName("wrap");
  MetricsRegistry metrics;
  ShmServer::Options options;
  options.max_frame_bytes = 4096;
  options.ring_bytes = 8192;
  options.metrics = &metrics;
  PingShmServer live(name, options);
  ASSERT_NE(live.server, nullptr);

  auto client = ShmClient::Attach(name, {});
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (std::uint64_t i = 1; i <= 2000; ++i) {
    ASSERT_TRUE(
        (*client)->Send(EncodePingRequest(i), SteadyMillis() + 2000).ok());
    auto frame = (*client)->NextFrame(SteadyMillis() + 2000);
    ASSERT_TRUE(frame.ok()) << "frame " << i << ": "
                            << frame.status().ToString();
    ASSERT_EQ(frame->request_id, i);
  }
  EXPECT_GT(metrics.GetCounter("shm.ring.wraps")->value(), 0);
  EXPECT_GT(metrics.GetCounter("shm.ring.polls")->value(), 0);
}

TEST(ShmTransportTest, SlotExhaustionThenCleanCloseFreesTheSlot) {
  const std::string name = TestShmName("slots");
  ShmServer::Options options;
  options.slot_count = 1;
  PingShmServer live(name, options);
  ASSERT_NE(live.server, nullptr);

  auto first = ShmClient::Attach(name, {});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = ShmClient::Attach(name, {});
  EXPECT_TRUE(second.status().IsResourceExhausted())
      << second.status().ToString();

  // Clean close (destructor announces kSlotClosing, §9.4); the server
  // poller reclaims and a fresh attach succeeds.
  first->reset();
  StatusOr<std::unique_ptr<ShmClient>> retry =
      Status::Unavailable("not yet attached");
  const std::int64_t deadline = SteadyMillis() + 5000;
  while (SteadyMillis() < deadline) {
    retry = ShmClient::Attach(name, {});
    if (retry.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  ASSERT_TRUE(
      (*retry)->Send(EncodePingRequest(1), SteadyMillis() + 2000).ok());
  auto frame = (*retry)->NextFrame(SteadyMillis() + 2000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
}

TEST(ShmTransportTest, ServerReclaimsSlotOfKilledClient) {
  // The kill -9 drill (docs/WIRE_PROTOCOL.md §9.5): a client dies
  // mid-request — partial frame in the ring, slot still Active, no
  // Closing announcement. The server must notice the dead pid, reclaim
  // the slot, and serve the next client.
  const std::string name = TestShmName("kill9");
  ShmServer::Options options;
  options.slot_count = 1;
  PingShmServer live(name, options);
  ASSERT_NE(live.server, nullptr);

  auto victim = ShmClient::Attach(name, {});
  ASSERT_TRUE(victim.ok()) << victim.status().ToString();
  // Half a ping frame: the server-side decoder sits on a partial.
  const std::string ping = EncodePingRequest(99);
  ASSERT_TRUE((*victim)->TestOnlyWriteRaw(ping.data(), ping.size() / 2));

  // Manufacture a guaranteed-dead pid and hand the slot to it, then
  // abandon the mapping — observationally identical to SIGKILL.
  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  (*victim)->TestOnlySetSlotPid(static_cast<std::uint64_t>(child));
  (*victim)->TestOnlyAbandon();

  const std::int64_t deadline = SteadyMillis() + 5000;
  while (live.server->slots_reclaimed() == 0 && SteadyMillis() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(live.server->slots_reclaimed(), 1u);

  // The reclaimed slot serves a fresh client; the dead client's partial
  // frame did NOT poison the decoder (rings were reset).
  StatusOr<std::unique_ptr<ShmClient>> fresh =
      Status::Unavailable("not yet attached");
  while (SteadyMillis() < deadline) {
    fresh = ShmClient::Attach(name, {});
    if (fresh.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ASSERT_TRUE(
      (*fresh)->Send(EncodePingRequest(1), SteadyMillis() + 2000).ok());
  auto frame = (*fresh)->NextFrame(SteadyMillis() + 2000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->request_id, 1u);
}

TEST(ShmTransportTest, ClientSeesUnavailableWhenServerExits) {
  const std::string name = TestShmName("serverexit");
  auto live = std::make_unique<PingShmServer>(name);
  ASSERT_NE(live->server, nullptr);
  auto client = ShmClient::Attach(name, {});
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  live.reset();  // Server announces shutdown and unlinks the segment.
  auto frame = (*client)->NextFrame(SteadyMillis() + 2000);
  EXPECT_TRUE(frame.status().IsUnavailable()) << frame.status().ToString();
  EXPECT_TRUE((*client)
                  ->Send(EncodePingRequest(1), SteadyMillis() + 200)
                  .IsUnavailable());
}

// --- RecServer / RecClient over shm ----------------------------------------

/// A full RecServer serving BOTH transports: TCP loopback + shm.
struct DualTransportServer {
  explicit DualTransportServer(const std::string& shm_name)
      : service(OneType(), FastService()) {
    RecServer::Options options;
    options.port = 0;
    options.metrics = &metrics;
    options.shm_name = shm_name;
    server = std::make_unique<RecServer>(&service, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  MetricsRegistry metrics;
  RecommendationService service;
  std::unique_ptr<RecServer> server;
};

TEST(ShmRecServerTest, FullRpcSurfaceOverShm) {
  const std::string name = TestShmName("rpc");
  DualTransportServer live(name);

  RecClient::Options options;
  options.host = "rec://shm/" + name.substr(std::string("/rtrec.").size());
  RecClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  // v2 negotiation runs over shm exactly as over TCP (§9: the rings
  // carry ordinary wire frames).
  EXPECT_EQ(client.negotiated_version(), kWireVersionV2);

  UserProfile profile;
  profile.registered = true;
  profile.gender = Gender::kMale;
  profile.age = AgeBucket::k18To24;
  EXPECT_TRUE(client.RegisterProfile(1, profile).ok());

  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    EXPECT_TRUE(client.Observe(Play(user, 100, t += 1000)).ok());
  }

  RecRequest request;
  request.user = 999;
  request.top_n = 5;
  request.now = t;
  auto recs = client.Recommend(request);
  ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].video, 100u);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Latency histograms are tagged per transport.
  EXPECT_NE(stats->find("shm_rpc_recommend_latency_us"), std::string::npos);

  // Batch over shm.
  std::vector<RecRequest> batch(3, request);
  auto items = client.RecommendBatch(batch);
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  for (const auto& item : *items) {
    ASSERT_TRUE(item.status.ok()) << item.status.ToString();
    EXPECT_FALSE(item.reply.videos.empty());
  }

  EXPECT_GT(live.metrics.GetCounter("shm.ring.polls")->value(), 0);
}

TEST(ShmRecServerTest, TcpAndShmClientsShareOneService) {
  const std::string name = TestShmName("dual");
  DualTransportServer live(name);

  RecClient::Options tcp_options;
  tcp_options.port = live.server->port();
  RecClient tcp_client(tcp_options);

  RecClient::Options shm_options;
  shm_options.host = "shm:" + name.substr(std::string("/rtrec.").size());
  RecClient shm_client(shm_options);

  // An observation ingested over TCP is visible to a Recommend over shm:
  // both transports front the same service.
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    ASSERT_TRUE(tcp_client.Observe(Play(user, 777, t += 1000)).ok());
  }
  RecRequest request;
  request.user = 999;
  request.top_n = 3;
  request.now = t;
  auto recs = shm_client.Recommend(request);
  ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].video, 777u);
}

TEST(ShmRecServerTest, ConcurrentPipelinedCallersOverShm) {
  const std::string name = TestShmName("pipeshm");
  DualTransportServer live(name);
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    live.service.Observe(Play(user, 100, t += 1000));
  }

  RecClient::Options options;
  options.host = "shm:" + name.substr(std::string("/rtrec.").size());
  RecClient client(options);
  ASSERT_TRUE(client.Connect().ok());

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&client, &ok_count, t] {
      for (int call = 0; call < kCallsPerThread; ++call) {
        RecRequest request;
        request.user = 999;
        request.top_n = 3;
        request.now = t;
        auto recs = client.Recommend(request);
        if (recs.ok() && !recs->empty() && (*recs)[0].video == 100) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok_count.load(), kThreads * kCallsPerThread);
}

TEST(ShmRecServerTest, TracePropagationRidesTheShmTransport) {
  // The shm rings carry ordinary wire frames, so the trace extension
  // (docs/WIRE_PROTOCOL.md §2.1) must propagate exactly as over TCP.
  const std::string name = TestShmName("traceshm");
  MetricsRegistry metrics;
  Tracer::Options tracer_options;
  tracer_options.sample_every_n = 0;  // Adoption is the only sampled path.
  tracer_options.metrics = &metrics;
  Tracer tracer(tracer_options);
  obs::SpanCollector::Options span_options;
  span_options.metrics = &metrics;
  obs::SpanCollector spans(span_options);

  RecommendationService service(OneType(), FastService());
  RecServer::Options options;
  options.port = 0;
  options.metrics = &metrics;
  options.shm_name = name;
  options.tracer = &tracer;
  options.spans = &spans;
  RecServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    service.Observe(Play(user, 100, t += 1000));
  }

  RecClient::Options client_options;
  client_options.host = "shm:" + name.substr(std::string("/rtrec.").size());
  RecClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.trace_propagation_negotiated());

  TraceContext trace;
  trace.id = 0x51234ull;
  trace.start_us = Tracer::NowMicros();
  RecRequest request;
  request.user = 999;
  request.top_n = 3;
  request.now = t;
  {
    ScopedTraceContext scope(trace);
    auto recs = client.Recommend(request);
    ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  }

  EXPECT_EQ(metrics.GetCounter("trace.adopted")->value(), 1);
  spans.Flush();
  EXPECT_TRUE(spans.HasTrace(trace.id));
  server.Stop();
}

TEST(ShmRecServerTest, ClusterClientRoutesOverShmAddresses) {
  // A manifest may list shm addresses as shard hosts; the router's
  // per-shard RecClients then ride the same-host transport while the
  // routing/breaker/failover machinery stays transport-blind.
  const std::string name = TestShmName("clustershm");
  DualTransportServer live(name);
  Timestamp t = 0;
  for (UserId user = 1; user <= 5; ++user) {
    live.service.Observe(Play(user, 100, t += 1000));
  }

  ClusterClient::Options options;
  ShardAddress shard;
  shard.shard = 0;
  shard.host = "rec://shm/" + name.substr(std::string("/rtrec.").size());
  shard.port = 1;  // Ignored for shm addresses; 0 is not manifest-legal.
  options.manifest.shards = {shard};
  ClusterClient router(options);

  RecRequest request;
  request.user = 42;
  request.top_n = 3;
  request.now = t;
  auto reply = router.RecommendDetailed(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_FALSE(reply->videos.empty());
  EXPECT_EQ(reply->videos[0].video, 100u);
}

}  // namespace
}  // namespace rtrec
