#include "kvstore/sim_table_store.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rtrec {
namespace {

SimTableStore::Options SmallOptions(std::size_t k = 4,
                                    double xi = 1000.0) {
  SimTableStore::Options o;
  o.top_k = k;
  o.xi_millis = xi;
  return o;
}

TEST(SimTableStoreTest, UpdateIsBidirectional) {
  SimTableStore table(SmallOptions());
  table.Update(1, 2, 0.8, 0);
  const auto from_1 = table.Query(1, 0, 10);
  const auto from_2 = table.Query(2, 0, 10);
  ASSERT_EQ(from_1.size(), 1u);
  ASSERT_EQ(from_2.size(), 1u);
  EXPECT_EQ(from_1[0].video, 2u);
  EXPECT_EQ(from_2[0].video, 1u);
  EXPECT_DOUBLE_EQ(from_1[0].similarity, 0.8);
}

TEST(SimTableStoreTest, SelfPairsIgnored) {
  SimTableStore table(SmallOptions());
  table.Update(1, 1, 0.9, 0);
  EXPECT_TRUE(table.Query(1, 0, 10).empty());
}

TEST(SimTableStoreTest, QueryRanksByDecayedSimilarity) {
  SimTableStore table(SmallOptions());
  table.Update(1, 2, 0.5, 0);
  table.Update(1, 3, 0.9, 0);
  table.Update(1, 4, 0.7, 0);
  const auto similar = table.Query(1, 0, 10);
  ASSERT_EQ(similar.size(), 3u);
  EXPECT_EQ(similar[0].video, 3u);
  EXPECT_EQ(similar[1].video, 4u);
  EXPECT_EQ(similar[2].video, 2u);
}

TEST(SimTableStoreTest, DecayHalvesAtXi) {
  SimTableStore table(SmallOptions(4, 1000.0));
  table.Update(1, 2, 0.8, 0);
  EXPECT_NEAR(table.GetDecayedSimilarity(1, 2, 1000), 0.4, 1e-9);
  EXPECT_NEAR(table.GetDecayedSimilarity(1, 2, 2000), 0.2, 1e-9);
  // No decay at or before the update time.
  EXPECT_NEAR(table.GetDecayedSimilarity(1, 2, 0), 0.8, 1e-9);
}

TEST(SimTableStoreTest, UpdateRestartsDecayClock) {
  SimTableStore table(SmallOptions(4, 1000.0));
  table.Update(1, 2, 0.8, 0);
  table.Update(1, 2, 0.8, 5000);  // Fresh action touches the pair.
  EXPECT_NEAR(table.GetDecayedSimilarity(1, 2, 5000), 0.8, 1e-9);
}

TEST(SimTableStoreTest, DecayCanReorderEntries) {
  SimTableStore table(SmallOptions(4, 1000.0));
  table.Update(1, 2, 0.9, 0);     // Strong but old.
  table.Update(1, 3, 0.5, 4000);  // Weaker but fresh.
  const auto similar = table.Query(1, 4000, 10);
  ASSERT_EQ(similar.size(), 2u);
  // 0.9 decayed over 4 half-lives = 0.05625 < 0.5.
  EXPECT_EQ(similar[0].video, 3u);
}

TEST(SimTableStoreTest, CapacityEvictsWeakestDecayed) {
  SimTableStore table(SmallOptions(2, 1000.0));
  table.Update(1, 2, 0.3, 0);
  table.Update(1, 3, 0.5, 0);
  table.Update(1, 4, 0.4, 0);  // Evicts video 2 (weakest).
  const auto similar = table.Query(1, 0, 10);
  ASSERT_EQ(similar.size(), 2u);
  EXPECT_EQ(similar[0].video, 3u);
  EXPECT_EQ(similar[1].video, 4u);
}

TEST(SimTableStoreTest, WeakNewcomerDoesNotEvict) {
  SimTableStore table(SmallOptions(2, 1000.0));
  table.Update(1, 2, 0.3, 0);
  table.Update(1, 3, 0.5, 0);
  table.Update(1, 4, 0.1, 0);
  const auto similar = table.Query(1, 0, 10);
  ASSERT_EQ(similar.size(), 2u);
  EXPECT_EQ(similar[0].video, 3u);
  EXPECT_EQ(similar[1].video, 2u);
}

TEST(SimTableStoreTest, FullyDecayedEntriesArePruned) {
  SimTableStore table(SmallOptions(4, 10.0));  // 10 ms half-life.
  table.Update(1, 2, 0.5, 0);
  // After 1000 half-lives the entry is numerically dead.
  EXPECT_TRUE(table.Query(1, 10000, 10).empty());
  EXPECT_DOUBLE_EQ(table.GetDecayedSimilarity(1, 2, 10000), 0.0);
}

TEST(SimTableStoreTest, QueryLimitTruncates) {
  SimTableStore table(SmallOptions(10, 1000.0));
  for (VideoId v = 2; v <= 8; ++v) {
    table.Update(1, v, 0.1 * static_cast<double>(v), 0);
  }
  EXPECT_EQ(table.Query(1, 0, 3).size(), 3u);
  EXPECT_EQ(table.Query(1, 0, 100).size(), 7u);
}

TEST(SimTableStoreTest, UnknownVideoYieldsEmpty) {
  SimTableStore table(SmallOptions());
  EXPECT_TRUE(table.Query(123, 0, 10).empty());
  EXPECT_DOUBLE_EQ(table.GetDecayedSimilarity(123, 456, 0), 0.0);
}

TEST(SimTableStoreTest, NumVideosCountsNonEmptyLists) {
  SimTableStore table(SmallOptions());
  EXPECT_EQ(table.NumVideos(), 0u);
  table.Update(1, 2, 0.5, 0);
  EXPECT_EQ(table.NumVideos(), 2u);  // Both directions.
  table.Update(3, 4, 0.5, 0);
  EXPECT_EQ(table.NumVideos(), 4u);
}

TEST(SimTableStoreTest, ArenaBacksAllLists) {
  SimTableStore table(SmallOptions(16, 1000.0));
  EXPECT_EQ(table.ArenaBytes(), 0u);
  table.Update(1, 2, 0.5, 0);
  const std::size_t after_small = table.ArenaBytes();
  EXPECT_GT(after_small, 0u);
  // Lists start on the small size class; overflowing it promotes the
  // list to a full top_k slab without losing entries.
  for (VideoId v = 3; v <= 14; ++v) {
    table.Update(1, v, 0.1 * static_cast<double>(v), 0);
  }
  EXPECT_GE(table.ArenaBytes(), after_small);
  const auto similar = table.Query(1, 0, 100);
  EXPECT_EQ(similar.size(), 13u);
  // All original similarities survive the promotion copy.
  EXPECT_DOUBLE_EQ(table.GetDecayedSimilarity(1, 2, 0), 0.5);
  EXPECT_DOUBLE_EQ(table.GetDecayedSimilarity(1, 14, 0), 1.4);
}

TEST(SimTableStoreTest, ArenaRecyclesPromotedSlabs) {
  // Promoting a list frees its small slab back to the arena, so arena
  // growth is bounded by live slabs, not by promotion count: new small
  // lists reuse the freed slabs and the arena does not grow. LoadList
  // writes one directed list, which makes the slab accounting exact.
  SimTableStore::Options o = SmallOptions(32, 1000.0);
  o.num_shards = 1;  // One stripe so every list shares one arena.
  SimTableStore table(o);
  auto entries = [](std::size_t n) {
    std::vector<SimilarVideo> out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(SimilarVideo{1000000 + i, 0.5, 0});
    }
    return out;
  };
  // 64 small lists, then promote all of them to full slabs.
  for (VideoId v = 1; v <= 64; ++v) table.LoadList(v, entries(1));
  for (VideoId v = 1; v <= 64; ++v) table.LoadList(v, entries(12));
  const std::size_t after_promotions = table.ArenaBytes();
  EXPECT_GT(after_promotions, 0u);
  // A second wave of small lists fits entirely in the recycled slabs.
  for (VideoId v = 101; v <= 164; ++v) table.LoadList(v, entries(1));
  EXPECT_EQ(table.ArenaBytes(), after_promotions);
}

TEST(SimTableStoreTest, LoadListRestoresThroughArena) {
  SimTableStore source(SmallOptions(16, 1000.0));
  for (VideoId v = 2; v <= 13; ++v) {
    source.Update(1, v, 0.05 * static_cast<double>(v), 0);
  }
  SimTableStore restored(SmallOptions(16, 1000.0));
  source.ForEachList([&restored](VideoId id,
                                 std::span<const SimilarVideo> entries) {
    restored.LoadList(id, {entries.begin(), entries.end()});
  });
  EXPECT_EQ(restored.NumVideos(), source.NumVideos());
  EXPECT_GT(restored.ArenaBytes(), 0u);
  for (VideoId v = 2; v <= 13; ++v) {
    EXPECT_DOUBLE_EQ(restored.GetDecayedSimilarity(1, v, 0),
                     source.GetDecayedSimilarity(1, v, 0));
  }
}

}  // namespace
}  // namespace rtrec
