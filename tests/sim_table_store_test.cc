#include "kvstore/sim_table_store.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rtrec {
namespace {

SimTableStore::Options SmallOptions(std::size_t k = 4,
                                    double xi = 1000.0) {
  SimTableStore::Options o;
  o.top_k = k;
  o.xi_millis = xi;
  return o;
}

TEST(SimTableStoreTest, UpdateIsBidirectional) {
  SimTableStore table(SmallOptions());
  table.Update(1, 2, 0.8, 0);
  const auto from_1 = table.Query(1, 0, 10);
  const auto from_2 = table.Query(2, 0, 10);
  ASSERT_EQ(from_1.size(), 1u);
  ASSERT_EQ(from_2.size(), 1u);
  EXPECT_EQ(from_1[0].video, 2u);
  EXPECT_EQ(from_2[0].video, 1u);
  EXPECT_DOUBLE_EQ(from_1[0].similarity, 0.8);
}

TEST(SimTableStoreTest, SelfPairsIgnored) {
  SimTableStore table(SmallOptions());
  table.Update(1, 1, 0.9, 0);
  EXPECT_TRUE(table.Query(1, 0, 10).empty());
}

TEST(SimTableStoreTest, QueryRanksByDecayedSimilarity) {
  SimTableStore table(SmallOptions());
  table.Update(1, 2, 0.5, 0);
  table.Update(1, 3, 0.9, 0);
  table.Update(1, 4, 0.7, 0);
  const auto similar = table.Query(1, 0, 10);
  ASSERT_EQ(similar.size(), 3u);
  EXPECT_EQ(similar[0].video, 3u);
  EXPECT_EQ(similar[1].video, 4u);
  EXPECT_EQ(similar[2].video, 2u);
}

TEST(SimTableStoreTest, DecayHalvesAtXi) {
  SimTableStore table(SmallOptions(4, 1000.0));
  table.Update(1, 2, 0.8, 0);
  EXPECT_NEAR(table.GetDecayedSimilarity(1, 2, 1000), 0.4, 1e-9);
  EXPECT_NEAR(table.GetDecayedSimilarity(1, 2, 2000), 0.2, 1e-9);
  // No decay at or before the update time.
  EXPECT_NEAR(table.GetDecayedSimilarity(1, 2, 0), 0.8, 1e-9);
}

TEST(SimTableStoreTest, UpdateRestartsDecayClock) {
  SimTableStore table(SmallOptions(4, 1000.0));
  table.Update(1, 2, 0.8, 0);
  table.Update(1, 2, 0.8, 5000);  // Fresh action touches the pair.
  EXPECT_NEAR(table.GetDecayedSimilarity(1, 2, 5000), 0.8, 1e-9);
}

TEST(SimTableStoreTest, DecayCanReorderEntries) {
  SimTableStore table(SmallOptions(4, 1000.0));
  table.Update(1, 2, 0.9, 0);     // Strong but old.
  table.Update(1, 3, 0.5, 4000);  // Weaker but fresh.
  const auto similar = table.Query(1, 4000, 10);
  ASSERT_EQ(similar.size(), 2u);
  // 0.9 decayed over 4 half-lives = 0.05625 < 0.5.
  EXPECT_EQ(similar[0].video, 3u);
}

TEST(SimTableStoreTest, CapacityEvictsWeakestDecayed) {
  SimTableStore table(SmallOptions(2, 1000.0));
  table.Update(1, 2, 0.3, 0);
  table.Update(1, 3, 0.5, 0);
  table.Update(1, 4, 0.4, 0);  // Evicts video 2 (weakest).
  const auto similar = table.Query(1, 0, 10);
  ASSERT_EQ(similar.size(), 2u);
  EXPECT_EQ(similar[0].video, 3u);
  EXPECT_EQ(similar[1].video, 4u);
}

TEST(SimTableStoreTest, WeakNewcomerDoesNotEvict) {
  SimTableStore table(SmallOptions(2, 1000.0));
  table.Update(1, 2, 0.3, 0);
  table.Update(1, 3, 0.5, 0);
  table.Update(1, 4, 0.1, 0);
  const auto similar = table.Query(1, 0, 10);
  ASSERT_EQ(similar.size(), 2u);
  EXPECT_EQ(similar[0].video, 3u);
  EXPECT_EQ(similar[1].video, 2u);
}

TEST(SimTableStoreTest, FullyDecayedEntriesArePruned) {
  SimTableStore table(SmallOptions(4, 10.0));  // 10 ms half-life.
  table.Update(1, 2, 0.5, 0);
  // After 1000 half-lives the entry is numerically dead.
  EXPECT_TRUE(table.Query(1, 10000, 10).empty());
  EXPECT_DOUBLE_EQ(table.GetDecayedSimilarity(1, 2, 10000), 0.0);
}

TEST(SimTableStoreTest, QueryLimitTruncates) {
  SimTableStore table(SmallOptions(10, 1000.0));
  for (VideoId v = 2; v <= 8; ++v) {
    table.Update(1, v, 0.1 * static_cast<double>(v), 0);
  }
  EXPECT_EQ(table.Query(1, 0, 3).size(), 3u);
  EXPECT_EQ(table.Query(1, 0, 100).size(), 7u);
}

TEST(SimTableStoreTest, UnknownVideoYieldsEmpty) {
  SimTableStore table(SmallOptions());
  EXPECT_TRUE(table.Query(123, 0, 10).empty());
  EXPECT_DOUBLE_EQ(table.GetDecayedSimilarity(123, 456, 0), 0.0);
}

TEST(SimTableStoreTest, NumVideosCountsNonEmptyLists) {
  SimTableStore table(SmallOptions());
  EXPECT_EQ(table.NumVideos(), 0u);
  table.Update(1, 2, 0.5, 0);
  EXPECT_EQ(table.NumVideos(), 2u);  // Both directions.
  table.Update(3, 4, 0.5, 0);
  EXPECT_EQ(table.NumVideos(), 4u);
}

}  // namespace
}  // namespace rtrec
