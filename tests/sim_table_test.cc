#include "core/sim_table.h"

#include <gtest/gtest.h>

#include <memory>

namespace rtrec {
namespace {

class SimTableUpdaterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FactorStore::Options factor_options;
    factor_options.num_factors = 8;
    factors_ = std::make_unique<FactorStore>(factor_options);
    history_ = std::make_unique<HistoryStore>();
    SimTableStore::Options table_options;
    table_options.top_k = 10;
    table_options.xi_millis = 1000.0;
    table_ = std::make_unique<SimTableStore>(table_options);

    SimilarityConfig config;
    config.beta = 0.3;
    config.xi_millis = 1000.0;
    config.min_confidence = 1.0;
    config.max_pairs_per_action = 4;
    // Videos 1-10 are type 0, the rest type 1.
    updater_ = std::make_unique<SimTableUpdater>(
        factors_.get(), history_.get(), table_.get(),
        [](VideoId v) -> VideoType { return v <= 10 ? 0 : 1; }, config);
  }

  UserAction Play(UserId u, VideoId v, Timestamp t) {
    UserAction a;
    a.user = u;
    a.video = v;
    a.type = ActionType::kPlayTime;
    a.view_fraction = 1.0;
    a.time = t;
    return a;
  }

  UserAction Impress(UserId u, VideoId v, Timestamp t) {
    UserAction a;
    a.user = u;
    a.video = v;
    a.type = ActionType::kImpress;
    a.time = t;
    return a;
  }

  std::unique_ptr<FactorStore> factors_;
  std::unique_ptr<HistoryStore> history_;
  std::unique_ptr<SimTableStore> table_;
  std::unique_ptr<SimTableUpdater> updater_;
};

TEST_F(SimTableUpdaterTest, FirstActionHasNoPartners) {
  EXPECT_EQ(updater_->OnAction(Play(1, 5, 100)), 0u);
  EXPECT_EQ(table_->NumVideos(), 0u);
  // But the history was recorded.
  EXPECT_EQ(history_->Get(1).size(), 1u);
}

TEST_F(SimTableUpdaterTest, CoWatchCreatesPair) {
  updater_->OnAction(Play(1, 5, 100));
  EXPECT_EQ(updater_->OnAction(Play(1, 6, 200)), 1u);
  EXPECT_GT(table_->GetDecayedSimilarity(5, 6, 200), 0.0);
  EXPECT_GT(table_->GetDecayedSimilarity(6, 5, 200), 0.0);
}

TEST_F(SimTableUpdaterTest, ImpressionsNeverTouchTables) {
  updater_->OnAction(Play(1, 5, 100));
  EXPECT_EQ(updater_->OnAction(Impress(1, 6, 200)), 0u);
  EXPECT_EQ(table_->NumVideos(), 0u);
  // Impressions also stay out of history.
  EXPECT_EQ(history_->Get(1).size(), 1u);
}

TEST_F(SimTableUpdaterTest, RepeatedVideoDoesNotPairWithItself) {
  updater_->OnAction(Play(1, 5, 100));
  EXPECT_EQ(updater_->OnAction(Play(1, 5, 200)), 0u);
  EXPECT_DOUBLE_EQ(table_->GetDecayedSimilarity(5, 5, 200), 0.0);
}

TEST_F(SimTableUpdaterTest, PairsBoundedByConfig) {
  for (VideoId v = 1; v <= 8; ++v) {
    updater_->OnAction(Play(1, v, static_cast<Timestamp>(v) * 100));
  }
  // max_pairs_per_action = 4: the 9th video pairs with at most 4 partners.
  EXPECT_EQ(updater_->OnAction(Play(1, 9, 1000)), 4u);
}

TEST_F(SimTableUpdaterTest, SameTypePairsScoreHigherThanCrossType) {
  // Videos 5,6 share type 0; video 15 is type 1. Latent vectors are near
  // zero at init, so the type term dominates the fused similarity.
  updater_->OnAction(Play(1, 5, 100));
  updater_->OnAction(Play(1, 6, 200));
  updater_->OnAction(Play(2, 5, 100));
  updater_->OnAction(Play(2, 15, 200));
  const double same_type = table_->GetDecayedSimilarity(5, 6, 200);
  const double cross_type = table_->GetDecayedSimilarity(5, 15, 200);
  EXPECT_GT(same_type, cross_type);
}

TEST_F(SimTableUpdaterTest, RefreshPairUsesCurrentVectors) {
  // Plant identical vectors for 7 and 8 -> CF similarity = |y|^2 > 0.
  FactorEntry entry;
  entry.vec.assign(8, 0.5f);
  factors_->PutVideo(7, entry);
  factors_->PutVideo(8, entry);
  const double fused = updater_->RefreshPair(7, 8, 500);
  // s1 = 8 * 0.25 = 2.0, s2 = 1 (both type 0): fused = 0.7*2 + 0.3*1.
  EXPECT_NEAR(fused, 0.7 * 2.0 + 0.3, 1e-6);
  EXPECT_NEAR(table_->GetDecayedSimilarity(7, 8, 500), fused, 1e-9);
}

TEST_F(SimTableUpdaterTest, DifferentUsersHistoriesAreIndependent) {
  updater_->OnAction(Play(1, 5, 100));
  EXPECT_EQ(updater_->OnAction(Play(2, 6, 200)), 0u);
}

}  // namespace
}  // namespace rtrec
