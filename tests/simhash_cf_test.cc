#include "baselines/simhash_cf.h"

#include <gtest/gtest.h>

#include <bit>

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;
  a.time = t;
  return a;
}

TEST(SimHashTest, IdenticalProfilesIdenticalSignatures) {
  std::vector<std::pair<VideoId, double>> profile = {
      {1, 1.0}, {2, 2.0}, {3, 0.5}};
  EXPECT_EQ(ComputeSimHash(profile), ComputeSimHash(profile));
}

TEST(SimHashTest, OrderIndependent) {
  std::vector<std::pair<VideoId, double>> a = {{1, 1.0}, {2, 2.0}};
  std::vector<std::pair<VideoId, double>> b = {{2, 2.0}, {1, 1.0}};
  EXPECT_EQ(ComputeSimHash(a), ComputeSimHash(b));
}

TEST(SimHashTest, SimilarProfilesHaveSmallHammingDistance) {
  // 19 shared videos, one differing: signatures should be much closer
  // than two disjoint profiles.
  std::vector<std::pair<VideoId, double>> base;
  for (VideoId v = 1; v <= 19; ++v) base.emplace_back(v, 1.0);
  auto near = base;
  near.emplace_back(100, 1.0);
  auto base_plus = base;
  base_plus.emplace_back(101, 1.0);

  std::vector<std::pair<VideoId, double>> disjoint;
  for (VideoId v = 1000; v < 1020; ++v) disjoint.emplace_back(v, 1.0);

  const auto d_near = std::popcount(ComputeSimHash(near) ^
                                    ComputeSimHash(base_plus));
  const auto d_far = std::popcount(ComputeSimHash(near) ^
                                   ComputeSimHash(disjoint));
  EXPECT_LT(d_near, d_far);
}

TEST(SimHashTest, EmptyProfileIsZeroSignature) {
  EXPECT_EQ(ComputeSimHash({}), 0u);
}

TEST(SimHashTest, SingleVideoSignatureMatchesItsHashSigns) {
  // A one-element profile's signature is exactly the video's hash bits
  // (positive weight sets the bit where the hash bit is 1).
  const std::uint64_t sig = ComputeSimHash({{7, 2.0}});
  const std::uint64_t sig_weighted = ComputeSimHash({{7, 0.5}});
  EXPECT_EQ(sig, sig_weighted);  // Sign pattern is weight-invariant.
}

TEST(CosineFromSimHashTest, Calibration) {
  EXPECT_NEAR(CosineFromSimHash(0xFFFFull, 0xFFFFull), 1.0, 1e-12);
  EXPECT_NEAR(CosineFromSimHash(0ull, ~0ull), -1.0, 1e-12);
  // Half the bits differ -> orthogonal estimate.
  std::uint64_t half = 0;
  for (int b = 0; b < 32; ++b) half |= (1ull << b);
  EXPECT_NEAR(CosineFromSimHash(0ull, half), 0.0, 1e-12);
}

TEST(HammingSimilarityTest, Bounds) {
  EXPECT_DOUBLE_EQ(HammingSimilarity(0xABCDull, 0xABCDull), 1.0);
  EXPECT_DOUBLE_EQ(HammingSimilarity(0ull, ~0ull), 0.0);
  EXPECT_DOUBLE_EQ(HammingSimilarity(0ull, 1ull), 1.0 - 1.0 / 64.0);
}

TEST(SimHashCfTest, UnseenUserGetsNothing) {
  SimHashCfRecommender cf;
  RecRequest request;
  request.user = 1;
  request.now = 0;
  auto recs = cf.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());
}

TEST(SimHashCfTest, RequiresRetrainBeforeServing) {
  SimHashCfRecommender cf;
  cf.Observe(Play(1, 10, 100));
  RecRequest request;
  request.user = 1;
  request.now = 200;
  EXPECT_TRUE(cf.Recommend(request)->empty());
  cf.RetrainBatch(300);
  EXPECT_NE(cf.GetSignature(1), 0u);
}

TEST(SimHashCfTest, SimilarUsersShareRecommendations) {
  SimHashCfRecommender cf;
  Timestamp t = 0;
  // Users 1 and 2 share a long profile; user 2 also watched video 99.
  for (VideoId v = 1; v <= 20; ++v) {
    cf.Observe(Play(1, v, t += 100));
    cf.Observe(Play(2, v, t += 100));
  }
  cf.Observe(Play(2, 99, t += 100));
  cf.RetrainBatch(t);

  RecRequest request;
  request.user = 1;
  request.now = t;
  auto recs = cf.Recommend(request);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].video, 99u);
}

TEST(SimHashCfTest, OwnVideosNeverRecommended) {
  SimHashCfRecommender cf;
  Timestamp t = 0;
  for (VideoId v = 1; v <= 20; ++v) {
    cf.Observe(Play(1, v, t += 100));
    cf.Observe(Play(2, v, t += 100));
  }
  cf.RetrainBatch(t);
  RecRequest request;
  request.user = 1;
  request.now = t;
  auto recs = cf.Recommend(request);
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());  // Neighbour has nothing new.
}

TEST(SimHashCfTest, SignatureOfIdenticalProfilesMatches) {
  SimHashCfRecommender cf;
  Timestamp t = 0;
  for (VideoId v = 1; v <= 10; ++v) {
    cf.Observe(Play(1, v, t += 100));
    cf.Observe(Play(2, v, t += 100));
  }
  cf.RetrainBatch(t);
  EXPECT_EQ(cf.GetSignature(1), cf.GetSignature(2));
}

TEST(SimHashCfTest, DissimilarUsersDoNotCrossRecommend) {
  SimHashCfRecommender cf;
  Timestamp t = 0;
  for (VideoId v = 1; v <= 20; ++v) cf.Observe(Play(1, v, t += 100));
  for (VideoId v = 500; v <= 520; ++v) cf.Observe(Play(2, v, t += 100));
  cf.RetrainBatch(t);
  RecRequest request;
  request.user = 1;
  request.now = t;
  auto recs = cf.Recommend(request);
  ASSERT_TRUE(recs.ok());
  // Disjoint profiles rarely collide in any band; if they do, scores are
  // low. Accept empty or weak results, but never user 2's whole profile.
  EXPECT_LT(recs->size(), 15u);
  EXPECT_EQ(cf.name(), "SimHash");
}

TEST(SimHashCfTest, WeakActionsDoNotEnterProfiles) {
  SimHashCfRecommender cf;
  UserAction impress;
  impress.user = 1;
  impress.video = 10;
  impress.type = ActionType::kImpress;
  cf.Observe(impress);
  cf.RetrainBatch(100);
  EXPECT_EQ(cf.GetSignature(1), 0u);  // No profile was built.
}

}  // namespace
}  // namespace rtrec
