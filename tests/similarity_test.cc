#include "core/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rtrec {
namespace {

TEST(CfSimilarityTest, InnerProductOfLatentVectors) {
  EXPECT_DOUBLE_EQ(CfSimilarity({1.0f, 2.0f}, {3.0f, 4.0f}), 11.0);
  EXPECT_DOUBLE_EQ(CfSimilarity({1.0f, 0.0f}, {0.0f, 1.0f}), 0.0);
}

TEST(CfSimilarityTest, Symmetric) {
  const std::vector<float> a = {0.5f, -1.5f, 2.0f};
  const std::vector<float> b = {1.0f, 0.25f, -0.75f};
  EXPECT_DOUBLE_EQ(CfSimilarity(a, b), CfSimilarity(b, a));
}

TEST(TypeSimilarityTest, Eq10Indicator) {
  EXPECT_DOUBLE_EQ(TypeSimilarity(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(TypeSimilarity(3, 4), 0.0);
  EXPECT_DOUBLE_EQ(TypeSimilarity(0, 0), 1.0);
}

TEST(TimeDecayTest, HalvesEveryXi) {
  EXPECT_DOUBLE_EQ(TimeDecay(0, 1000.0), 1.0);
  EXPECT_NEAR(TimeDecay(1000, 1000.0), 0.5, 1e-12);
  EXPECT_NEAR(TimeDecay(2000, 1000.0), 0.25, 1e-12);
  EXPECT_NEAR(TimeDecay(3000, 1000.0), 0.125, 1e-12);
}

TEST(TimeDecayTest, NonPositiveDeltaGivesOne) {
  EXPECT_DOUBLE_EQ(TimeDecay(-5000, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(TimeDecay(0, 1.0), 1.0);
}

TEST(TimeDecayTest, MonotoneDecreasing) {
  double prev = 1.1;
  for (Timestamp dt = 0; dt < 10000; dt += 500) {
    const double d = TimeDecay(dt, 1500.0);
    EXPECT_LT(d, prev);
    EXPECT_GT(d, 0.0);
    prev = d;
  }
}

TEST(TimeDecayTest, LargerXiDecaysSlower) {
  EXPECT_GT(TimeDecay(1000, 2000.0), TimeDecay(1000, 500.0));
}

TEST(FuseSimilarityTest, Eq12Blending) {
  EXPECT_DOUBLE_EQ(FuseSimilarity(0.8, 1.0, 0.0), 0.8);   // Pure CF.
  EXPECT_DOUBLE_EQ(FuseSimilarity(0.8, 1.0, 1.0), 1.0);   // Pure type.
  EXPECT_DOUBLE_EQ(FuseSimilarity(0.8, 1.0, 0.25), 0.25 * 1.0 + 0.75 * 0.8);
}

TEST(FuseSimilarityTest, LinearInBeta) {
  const double s1 = 0.4, s2 = 1.0;
  const double at_0 = FuseSimilarity(s1, s2, 0.0);
  const double at_half = FuseSimilarity(s1, s2, 0.5);
  const double at_1 = FuseSimilarity(s1, s2, 1.0);
  EXPECT_NEAR(at_half, (at_0 + at_1) / 2.0, 1e-12);
}

TEST(FuseSimilarityTest, SameTypeBoostsRelevance) {
  // With matching types, fused similarity strictly exceeds pure CF when
  // beta > 0 and s1 < 1 — the mechanism that makes same-type videos more
  // likely candidates.
  const double cf = 0.3;
  EXPECT_GT(FuseSimilarity(cf, 1.0, 0.3), cf);
  EXPECT_LT(FuseSimilarity(cf, 0.0, 0.3), cf);
}

// Property sweep over the fused+decayed pipeline: result bounded by
// max(s1, s2) and decays toward zero.
class FusionParamTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(FusionParamTest, FusedDecayedSimilarityBounded) {
  const auto [s1, beta, xi] = GetParam();
  for (VideoType t2 : {0u, 1u}) {
    const double s2 = TypeSimilarity(0, t2);
    const double fused = FuseSimilarity(s1, s2, beta);
    EXPECT_LE(fused, std::max(s1, s2) + 1e-12);
    for (Timestamp dt : {Timestamp{0}, Timestamp{1000}, Timestamp{100000}}) {
      const double decayed = fused * TimeDecay(dt, xi);
      EXPECT_LE(std::abs(decayed), std::abs(fused) + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FusionParamTest,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.9),
                       ::testing::Values(0.0, 0.3, 1.0),
                       ::testing::Values(100.0, 10000.0)));

}  // namespace
}  // namespace rtrec
