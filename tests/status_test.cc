#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rtrec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllErrorCategoriesReportNotOk) {
  const std::vector<Status> errors = {
      Status::NotFound("x"),          Status::InvalidArgument("x"),
      Status::AlreadyExists("x"),     Status::FailedPrecondition("x"),
      Status::OutOfRange("x"),        Status::ResourceExhausted("x"),
      Status::Aborted("x"),           Status::Internal("x"),
      Status::Unavailable("x"),       Status::Corruption("x"),
  };
  for (const Status& s : errors) {
    EXPECT_FALSE(s.ok()) << s.ToString();
    EXPECT_NE(s.ToString(), "OK");
  }
}

TEST(StatusTest, PredicateAccessorsMatchCodes) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("").IsAlreadyExists());
  EXPECT_TRUE(Status::ResourceExhausted("").IsResourceExhausted());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_TRUE(Status::Unavailable("").IsUnavailable());
  EXPECT_FALSE(Status::NotFound("").IsInvalidArgument());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return Status::Aborted("inner"); };
  auto outer = [&]() -> Status {
    RTREC_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsAborted());

  auto succeeds = [] { return Status::OK(); };
  auto outer_ok = [&]() -> Status {
    RTREC_RETURN_IF_ERROR(succeeds());
    return Status::OK();
  };
  EXPECT_TRUE(outer_ok().ok());
}

}  // namespace
}  // namespace rtrec
