#include "common/string_util.h"

#include <gtest/gtest.h>

namespace rtrec {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, '\t'), "x\ty\tz");
  EXPECT_EQ(Join({}, ','), "");
  EXPECT_EQ(Join({"solo"}, ','), "solo");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(ParseUint64Test, ParsesValidInput) {
  auto v = ParseUint64("12345");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 12345u);
  EXPECT_EQ(*ParseUint64("0"), 0u);
  EXPECT_EQ(*ParseUint64("18446744073709551615"), 18446744073709551615ull);
}

TEST(ParseUint64Test, RejectsInvalidInput) {
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("abc").ok());
  EXPECT_FALSE(ParseUint64("12x").ok());
  EXPECT_FALSE(ParseUint64("-5").ok());
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());  // Overflow.
}

TEST(ParseInt64Test, ParsesSignedValues) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(ParseDoubleTest, ParsesFloats) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 1.5), "1.50");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(StringPrintfTest, HandlesLongOutput) {
  const std::string long_str(1000, 'a');
  EXPECT_EQ(StringPrintf("%s", long_str.c_str()).size(), 1000u);
}

TEST(FormatCountTest, AddsThousandsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(1000000000), "1,000,000,000");
}

}  // namespace
}  // namespace rtrec
