#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

namespace rtrec {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran = 1; });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&mu, &ids] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // Must not crash or hang.
}

TEST(ThreadPoolTest, DestructorJoinsWorkers) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        counter.fetch_add(1);
      });
    }
  }  // Destructor.
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, hits.size(),
              [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsNoOp) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelForTest, SingleIteration) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  ParallelFor(pool, 1, [&n](std::size_t i) { n = static_cast<int>(i) + 1; });
  EXPECT_EQ(n.load(), 1);
}

}  // namespace
}  // namespace rtrec
