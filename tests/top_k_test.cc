#include "common/top_k.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "common/random.h"

namespace rtrec {
namespace {

TEST(TopKTest, KeepsDescendingOrder) {
  TopK<int> top(5);
  top.Upsert(1, 3.0);
  top.Upsert(2, 5.0);
  top.Upsert(3, 1.0);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top.entries()[0].key, 2);
  EXPECT_EQ(top.entries()[1].key, 1);
  EXPECT_EQ(top.entries()[2].key, 3);
}

TEST(TopKTest, EvictsWeakestWhenFull) {
  TopK<int> top(3);
  top.Upsert(1, 1.0);
  top.Upsert(2, 2.0);
  top.Upsert(3, 3.0);
  EXPECT_TRUE(top.Upsert(4, 2.5));   // Evicts key 1 (score 1.0).
  EXPECT_FALSE(top.Upsert(5, 0.5));  // Too weak to enter.
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top.Find(1), nullptr);
  EXPECT_NE(top.Find(4), nullptr);
  EXPECT_EQ(top.entries()[0].key, 3);
}

TEST(TopKTest, UpsertUpdatesExistingScore) {
  TopK<int> top(3);
  top.Upsert(1, 1.0);
  top.Upsert(2, 2.0);
  top.Upsert(1, 5.0);  // Promote.
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top.entries()[0].key, 1);
  EXPECT_DOUBLE_EQ(*top.Find(1), 5.0);
}

TEST(TopKTest, UpsertCanDemoteExisting) {
  TopK<int> top(3);
  top.Upsert(1, 5.0);
  top.Upsert(2, 3.0);
  top.Upsert(1, 1.0);  // Demote below key 2.
  EXPECT_EQ(top.entries()[0].key, 2);
  EXPECT_EQ(top.entries()[1].key, 1);
}

TEST(TopKTest, EraseRemovesAndReindexes) {
  TopK<int> top(4);
  top.Upsert(1, 4.0);
  top.Upsert(2, 3.0);
  top.Upsert(3, 2.0);
  EXPECT_TRUE(top.Erase(2));
  EXPECT_FALSE(top.Erase(2));
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top.Find(2), nullptr);
  // Remaining keys still findable after reindex.
  EXPECT_NE(top.Find(1), nullptr);
  EXPECT_NE(top.Find(3), nullptr);
  top.Upsert(3, 9.0);
  EXPECT_EQ(top.entries()[0].key, 3);
}

TEST(TopKTest, TransformScoresReorders) {
  TopK<int> top(4);
  top.Upsert(1, 4.0);
  top.Upsert(2, 3.0);
  // Invert: smaller becomes larger.
  top.TransformScores([](double s) { return 10.0 - s; });
  EXPECT_EQ(top.entries()[0].key, 2);
  EXPECT_DOUBLE_EQ(*top.Find(1), 6.0);
}

TEST(TopKTest, ZeroCapacityClampsToOne) {
  TopK<int> top(0);
  EXPECT_EQ(top.k(), 1u);
  top.Upsert(1, 1.0);
  top.Upsert(2, 2.0);
  EXPECT_EQ(top.size(), 1u);
  EXPECT_EQ(top.entries()[0].key, 2);
}

TEST(TopKTest, RandomizedAgainstReference) {
  // Property: after a random workload, TopK holds exactly the K largest
  // final scores.
  Rng rng(77);
  TopK<std::uint64_t> top(10);
  std::unordered_map<std::uint64_t, double> reference;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.NextUint64(300);
    const double score = rng.NextDouble();
    reference[key] = score;
    top.Upsert(key, score);
  }
  // The reference top-10 by final score: TopK is lossy (an evicted key
  // whose later upsert never came back can differ), so instead verify
  // invariants: order is descending and all scores match the reference's
  // *last written* value for keys TopK retained.
  double prev = 1e9;
  for (const auto& entry : top.entries()) {
    EXPECT_LE(entry.score, prev);
    prev = entry.score;
    ASSERT_TRUE(reference.contains(entry.key));
  }
  EXPECT_EQ(top.size(), 10u);
}

TEST(TopKTest, FindOnEmptyReturnsNull) {
  TopK<int> top(4);
  EXPECT_EQ(top.Find(99), nullptr);
  EXPECT_TRUE(top.empty());
}

TEST(TopKTest, FuzzAgainstExactReference) {
  // With continuous random scores (no ties), TopK's retained set is fully
  // determined: an upsert against a full list evicts the current minimum
  // iff the new score beats it, erases shrink the set, and a monotonic
  // transform preserves membership. Replay a random workload against that
  // naive model and check the full state after every operation.
  Rng rng(2016);
  constexpr std::size_t kK = 8;
  TopK<std::uint64_t> top(kK);
  std::unordered_map<std::uint64_t, double> ref;
  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t op = rng.NextUint64(10);
    if (op < 7) {  // Upsert.
      const std::uint64_t key = rng.NextUint64(40);
      const double score = rng.NextDouble();
      const bool kept = top.Upsert(key, score);
      if (ref.contains(key) || ref.size() < kK) {
        ref[key] = score;
        EXPECT_TRUE(kept);
      } else {
        auto min_it = std::min_element(
            ref.begin(), ref.end(), [](const auto& a, const auto& b) {
              return a.second < b.second;
            });
        if (score > min_it->second) {
          ref.erase(min_it);
          ref[key] = score;
          EXPECT_TRUE(kept);
        } else {
          EXPECT_FALSE(kept);
        }
      }
    } else if (op < 9) {  // Erase.
      const std::uint64_t key = rng.NextUint64(40);
      EXPECT_EQ(top.Erase(key), ref.erase(key) > 0);
    } else {  // Monotonic rescale (time decay shape).
      const double scale = rng.NextDouble(0.5, 1.5);
      top.TransformScores([scale](double s) { return s * scale; });
      for (auto& [key, value] : ref) value *= scale;
    }
    ASSERT_EQ(top.size(), ref.size()) << "step " << step;
    double prev = std::numeric_limits<double>::infinity();
    for (const auto& entry : top.entries()) {
      ASSERT_LE(entry.score, prev) << "step " << step;
      prev = entry.score;
      auto it = ref.find(entry.key);
      ASSERT_NE(it, ref.end()) << "step " << step << " key " << entry.key;
      // Both sides applied bit-identical arithmetic, so exact equality.
      ASSERT_EQ(entry.score, it->second) << "step " << step;
      const double* found = top.Find(entry.key);
      ASSERT_NE(found, nullptr) << "step " << step;
      ASSERT_EQ(*found, entry.score) << "step " << step;
    }
  }
  EXPECT_EQ(top.Find(999999), nullptr);
}

}  // namespace
}  // namespace rtrec
