#include "stream/topology_builder.h"

#include <gtest/gtest.h>

namespace rtrec::stream {
namespace {

class NopBolt : public Bolt {
 public:
  void Process(const Tuple&, OutputCollector&) override {}
};

class NopSpout : public Spout {
 public:
  bool Next(OutputCollector&) override { return false; }
};

SpoutFactory MakeSpout() {
  return [] { return std::make_unique<NopSpout>(); };
}

BoltFactory MakeBolt() {
  return [] { return std::make_unique<NopBolt>(); };
}

TEST(TopologyBuilderTest, ValidLinearTopologyBuilds) {
  TopologyBuilder builder;
  builder.AddSpout("src", MakeSpout(), 2);
  builder.AddBolt("mid", MakeBolt(), 3).ShuffleGrouping("src");
  builder.AddBolt("sink", MakeBolt(), 1).FieldsGrouping("mid", {"k"});
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->components.size(), 3u);
}

TEST(TopologyBuilderTest, TopologicalOrderPutsProducersFirst) {
  TopologyBuilder builder;
  // Declare out of order: sink first.
  builder.AddBolt("sink", MakeBolt()).ShuffleGrouping("mid");
  builder.AddBolt("mid", MakeBolt()).ShuffleGrouping("src");
  builder.AddSpout("src", MakeSpout());
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  EXPECT_LT(spec->IndexOf("src"), spec->IndexOf("mid"));
  EXPECT_LT(spec->IndexOf("mid"), spec->IndexOf("sink"));
}

TEST(TopologyBuilderTest, DuplicateNamesRejected) {
  TopologyBuilder builder;
  builder.AddSpout("x", MakeSpout());
  builder.AddBolt("x", MakeBolt()).ShuffleGrouping("x");
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, UnknownProducerRejected) {
  TopologyBuilder builder;
  builder.AddSpout("src", MakeSpout());
  builder.AddBolt("b", MakeBolt()).ShuffleGrouping("ghost");
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, UnsubscribedBoltRejected) {
  TopologyBuilder builder;
  builder.AddSpout("src", MakeSpout());
  builder.AddBolt("island", MakeBolt());
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, NoSpoutRejected) {
  TopologyBuilder builder;
  builder.AddBolt("a", MakeBolt()).ShuffleGrouping("b");
  builder.AddBolt("b", MakeBolt()).ShuffleGrouping("a");
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, CycleRejected) {
  TopologyBuilder builder;
  builder.AddSpout("src", MakeSpout());
  builder.AddBolt("a", MakeBolt()).ShuffleGrouping("src").ShuffleGrouping(
      "b");
  builder.AddBolt("b", MakeBolt()).ShuffleGrouping("a");
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, SelfLoopRejected) {
  TopologyBuilder builder;
  builder.AddSpout("src", MakeSpout());
  builder.AddBolt("a", MakeBolt()).ShuffleGrouping("a");
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, FieldsGroupingWithoutFieldsRejected) {
  TopologyBuilder builder;
  builder.AddSpout("src", MakeSpout());
  builder.AddBolt("a", MakeBolt()).FieldsGrouping("src", {});
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, ZeroParallelismClampsToOne) {
  TopologyBuilder builder;
  builder.AddSpout("src", MakeSpout(), 0);
  builder.AddBolt("a", MakeBolt(), 0).ShuffleGrouping("src");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  for (const auto& c : spec->components) {
    EXPECT_EQ(c.parallelism, 1u);
  }
}

TEST(TopologyBuilderTest, MultiStreamSubscriptionsAllowed) {
  TopologyBuilder builder;
  builder.AddSpout("src", MakeSpout());
  builder.AddBolt("compute", MakeBolt()).ShuffleGrouping("src");
  builder.AddBolt("store", MakeBolt())
      .FieldsGrouping("compute", "user_vec", {"user"})
      .FieldsGrouping("compute", "video_vec", {"video"});
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  const int store_index = spec->IndexOf("store");
  ASSERT_GE(store_index, 0);
  EXPECT_EQ(spec->components[static_cast<std::size_t>(store_index)]
                .inputs.size(),
            2u);
}

TEST(TopologyBuilderTest, DiamondTopologyBuilds) {
  TopologyBuilder builder;
  builder.AddSpout("src", MakeSpout());
  builder.AddBolt("left", MakeBolt()).ShuffleGrouping("src");
  builder.AddBolt("right", MakeBolt()).ShuffleGrouping("src");
  builder.AddBolt("join", MakeBolt())
      .ShuffleGrouping("left")
      .ShuffleGrouping("right");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->components.size(), 4u);
  EXPECT_LT(spec->IndexOf("left"), spec->IndexOf("join"));
  EXPECT_LT(spec->IndexOf("right"), spec->IndexOf("join"));
}

TEST(TopologyBuilderTest, QueueSizingDefaultsPersistIntoSpec) {
  TopologyBuilder builder;
  builder.SetQueueCapacity(256).SetDrainBatch(16);
  builder.AddSpout("src", MakeSpout());
  builder.AddBolt("sink", MakeBolt()).ShuffleGrouping("src");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->default_queue_capacity, 256u);
  EXPECT_EQ(spec->default_drain_batch, 16u);
}

TEST(TopologyBuilderTest, QueueSizingDefaultsToNoPreference) {
  TopologyBuilder builder;
  builder.AddSpout("src", MakeSpout());
  builder.AddBolt("sink", MakeBolt()).ShuffleGrouping("src");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->default_queue_capacity, 0u);
  EXPECT_EQ(spec->default_drain_batch, 0u);
}

}  // namespace
}  // namespace rtrec::stream
