/// Randomized stream-engine test: build random DAGs of counting bolts
/// with random groupings and parallelism, run them to completion, and
/// verify tuple conservation — every component processes exactly the
/// number of tuples its subscriptions imply, regardless of topology
/// shape, thread interleaving, or queue pressure.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "common/random.h"
#include "stream/topology.h"

namespace rtrec::stream {
namespace {

std::shared_ptr<const Schema> NumberSchema() {
  static const auto& schema = *new std::shared_ptr<const Schema>(
      std::make_shared<const Schema>(Schema{{"n"}}));
  return schema;
}

class EmitNSpout : public Spout {
 public:
  explicit EmitNSpout(std::int64_t n) : n_(n) {}
  bool Next(OutputCollector& collector) override {
    if (i_ >= n_) return false;
    collector.Emit(Tuple(NumberSchema(), {i_++}));
    return true;
  }

 private:
  std::int64_t n_;
  std::int64_t i_ = 0;
};

/// Counts inputs and forwards every tuple.
class ForwardingBolt : public Bolt {
 public:
  explicit ForwardingBolt(std::atomic<std::int64_t>* count)
      : count_(count) {}
  void Process(const Tuple& tuple, OutputCollector& collector) override {
    count_->fetch_add(1, std::memory_order_relaxed);
    collector.Emit(tuple);
  }

 private:
  std::atomic<std::int64_t>* count_;
};

struct FuzzComponent {
  std::string name;
  std::size_t parallelism = 1;
  // For bolts: (producer index, grouping is kAll?) pairs.
  std::vector<std::pair<std::size_t, bool>> inputs;
};

TEST(TopologyFuzzTest, RandomDagsConserveTuples) {
  Rng rng(20160626);
  for (int trial = 0; trial < 12; ++trial) {
    static constexpr std::int64_t kTuplesPerSpoutTask = 500;
    const std::size_t num_spouts = 1 + rng.NextUint64(2);
    const std::size_t num_bolts = 1 + rng.NextUint64(5);

    // Plan the DAG: bolt i may subscribe to any earlier component.
    std::vector<FuzzComponent> plan;
    for (std::size_t s = 0; s < num_spouts; ++s) {
      FuzzComponent c;
      c.name = "spout" + std::to_string(s);
      c.parallelism = 1 + rng.NextUint64(3);
      plan.push_back(c);
    }
    for (std::size_t b = 0; b < num_bolts; ++b) {
      FuzzComponent c;
      c.name = "bolt" + std::to_string(b);
      c.parallelism = 1 + rng.NextUint64(4);
      const std::size_t num_inputs =
          1 + rng.NextUint64(std::min<std::size_t>(2, plan.size()));
      std::vector<std::size_t> producers;
      for (std::size_t i = 0; i < num_inputs; ++i) {
        const std::size_t producer = rng.NextUint64(plan.size());
        if (std::find(producers.begin(), producers.end(), producer) !=
            producers.end()) {
          continue;  // No duplicate edges in this fuzz.
        }
        producers.push_back(producer);
        c.inputs.emplace_back(producer, rng.NextBool(0.25));
      }
      plan.push_back(c);
    }

    // Build it.
    std::vector<std::unique_ptr<std::atomic<std::int64_t>>> counters(
        plan.size());
    for (auto& c : counters) {
      c = std::make_unique<std::atomic<std::int64_t>>(0);
    }
    TopologyBuilder builder;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const FuzzComponent& c = plan[i];
      if (c.inputs.empty() && c.name.starts_with("spout")) {
        builder.AddSpout(
            c.name,
            [] { return std::make_unique<EmitNSpout>(kTuplesPerSpoutTask); },
            c.parallelism);
      } else {
        auto declarer = builder.AddBolt(
            c.name,
            [counter = counters[i].get()] {
              return std::make_unique<ForwardingBolt>(counter);
            },
            c.parallelism);
        for (const auto& [producer, all_grouping] : c.inputs) {
          if (all_grouping) {
            declarer.AllGrouping(plan[producer].name);
          } else if (rng.NextBool(0.5)) {
            declarer.ShuffleGrouping(plan[producer].name);
          } else {
            declarer.FieldsGrouping(plan[producer].name, {"n"});
          }
        }
      }
    }
    auto spec = builder.Build();
    ASSERT_TRUE(spec.ok()) << "trial " << trial;
    TopologyOptions options;
    options.queue_capacity = 16;  // Pressure the backpressure path.
    auto topo = Topology::Create(std::move(spec).value(), options);
    ASSERT_TRUE(topo.ok());
    ASSERT_TRUE((*topo)->Start().ok());
    ASSERT_TRUE((*topo)->Join().ok());

    // Conservation: expected outputs per component, in plan order.
    std::vector<std::int64_t> expected(plan.size(), 0);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const FuzzComponent& c = plan[i];
      if (c.inputs.empty()) {
        expected[i] =
            kTuplesPerSpoutTask * static_cast<std::int64_t>(c.parallelism);
        continue;
      }
      std::int64_t inputs = 0;
      for (const auto& [producer, all_grouping] : c.inputs) {
        inputs += expected[producer] *
                  (all_grouping ? static_cast<std::int64_t>(c.parallelism)
                                : 1);
      }
      expected[i] = inputs;
      EXPECT_EQ(counters[i]->load(), inputs)
          << "trial " << trial << " component " << c.name;
    }
  }
}

}  // namespace
}  // namespace rtrec::stream
