#include "stream/topology.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>

namespace rtrec::stream {
namespace {

std::shared_ptr<const Schema> NumberSchema() {
  static const auto& schema = *new std::shared_ptr<const Schema>(
      std::make_shared<const Schema>(Schema{{"n"}}));
  return schema;
}

/// Emits the integers [0, limit).
class CountingSpout : public Spout {
 public:
  explicit CountingSpout(std::int64_t limit) : limit_(limit) {}

  bool Next(OutputCollector& collector) override {
    if (next_ >= limit_) return false;
    collector.Emit(Tuple(NumberSchema(), {next_++}));
    return true;
  }

 private:
  std::int64_t limit_;
  std::int64_t next_ = 0;
};

/// Accumulates the sum of received numbers into a shared atomic; counts
/// Prepare/Cleanup calls.
class SummingBolt : public Bolt {
 public:
  SummingBolt(std::atomic<std::int64_t>* sum, std::atomic<int>* prepared,
              std::atomic<int>* cleaned)
      : sum_(sum), prepared_(prepared), cleaned_(cleaned) {}

  void Prepare(const TaskContext&) override { prepared_->fetch_add(1); }
  void Cleanup() override { cleaned_->fetch_add(1); }

  void Process(const Tuple& tuple, OutputCollector& collector) override {
    sum_->fetch_add(*tuple.GetInt("n"));
    collector.Emit(tuple);  // Forward for chained topologies.
  }

 private:
  std::atomic<std::int64_t>* sum_;
  std::atomic<int>* prepared_;
  std::atomic<int>* cleaned_;
};

/// Records which task processed which keys (for fields-grouping checks).
class KeyRecordingBolt : public Bolt {
 public:
  struct State {
    std::mutex mu;
    std::map<std::int64_t, std::set<std::size_t>> tasks_per_key;
  };

  explicit KeyRecordingBolt(State* state) : state_(state) {}

  void Prepare(const TaskContext& context) override {
    task_index_ = context.task_index;
  }

  void Process(const Tuple& tuple, OutputCollector&) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->tasks_per_key[*tuple.GetInt("n")].insert(task_index_);
  }

 private:
  State* state_;
  std::size_t task_index_ = 0;
};

TEST(TopologyTest, LinearPipelineProcessesEverything) {
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> prepared{0}, cleaned{0};

  TopologyBuilder builder;
  builder.AddSpout(
      "numbers", [] { return std::make_unique<CountingSpout>(1000); }, 1);
  builder
      .AddBolt(
          "sum",
          [&] {
            return std::make_unique<SummingBolt>(&sum, &prepared, &cleaned);
          },
          4)
      .ShuffleGrouping("numbers");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());

  auto topo = Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());

  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
  EXPECT_EQ(prepared.load(), 4);
  EXPECT_EQ(cleaned.load(), 4);
  EXPECT_TRUE((*topo)->finished());
  EXPECT_EQ((*topo)->metrics().GetCounter("sum.processed")->value(), 1000);
  EXPECT_EQ((*topo)->metrics().GetCounter("numbers.emitted")->value(), 1000);
}

TEST(TopologyTest, MultipleSpoutTasksShareTheSource) {
  // Each spout instance emits its own 0..99; two tasks -> 200 tuples.
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> prepared{0}, cleaned{0};

  TopologyBuilder builder;
  builder.AddSpout(
      "numbers", [] { return std::make_unique<CountingSpout>(100); }, 2);
  builder
      .AddBolt(
          "sum",
          [&] {
            return std::make_unique<SummingBolt>(&sum, &prepared, &cleaned);
          },
          2)
      .ShuffleGrouping("numbers");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  auto topo = Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_EQ(sum.load(), 2 * (99LL * 100 / 2));
}

TEST(TopologyTest, FieldsGroupingSendsKeyToSingleTask) {
  KeyRecordingBolt::State state;
  TopologyBuilder builder;
  builder.AddSpout(
      "numbers",
      [] {
        // Emit each key several times.
        class RepeatSpout : public Spout {
         public:
          bool Next(OutputCollector& collector) override {
            if (i_ >= 500) return false;
            collector.Emit(Tuple(NumberSchema(), {i_ % 50}));
            ++i_;
            return true;
          }

         private:
          std::int64_t i_ = 0;
        };
        return std::make_unique<RepeatSpout>();
      },
      1);
  builder
      .AddBolt("record",
               [&] { return std::make_unique<KeyRecordingBolt>(&state); }, 4)
      .FieldsGrouping("numbers", {"n"});
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  auto topo = Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());

  ASSERT_EQ(state.tasks_per_key.size(), 50u);
  std::set<std::size_t> used_tasks;
  for (const auto& [key, tasks] : state.tasks_per_key) {
    EXPECT_EQ(tasks.size(), 1u) << "key " << key << " hit multiple tasks";
    used_tasks.insert(*tasks.begin());
  }
  EXPECT_GT(used_tasks.size(), 1u);  // Work actually spread out.
}

TEST(TopologyTest, ChainedBoltsCascade) {
  std::atomic<std::int64_t> sum1{0}, sum2{0};
  std::atomic<int> prepared{0}, cleaned{0};

  TopologyBuilder builder;
  builder.AddSpout(
      "numbers", [] { return std::make_unique<CountingSpout>(100); }, 1);
  builder
      .AddBolt(
          "first",
          [&] {
            return std::make_unique<SummingBolt>(&sum1, &prepared, &cleaned);
          },
          2)
      .ShuffleGrouping("numbers");
  builder
      .AddBolt(
          "second",
          [&] {
            return std::make_unique<SummingBolt>(&sum2, &prepared, &cleaned);
          },
          3)
      .ShuffleGrouping("first");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  auto topo = Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_EQ(sum1.load(), 99LL * 100 / 2);
  EXPECT_EQ(sum2.load(), 99LL * 100 / 2);
  EXPECT_EQ(cleaned.load(), 5);  // Every bolt task cleaned up.
}

TEST(TopologyTest, AllGroupingDuplicatesToEveryTask) {
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> prepared{0}, cleaned{0};
  TopologyBuilder builder;
  builder.AddSpout(
      "numbers", [] { return std::make_unique<CountingSpout>(10); }, 1);
  TopologyBuilder::BoltDeclarer declarer = builder.AddBolt(
      "sum",
      [&] { return std::make_unique<SummingBolt>(&sum, &prepared, &cleaned); },
      3);
  declarer.AllGrouping("numbers");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  auto topo = Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_EQ(sum.load(), 3 * (9LL * 10 / 2));
}

TEST(TopologyTest, UnsubscribedStreamTuplesAreDroppedAndCounted) {
  class TwoStreamSpout : public Spout {
   public:
    bool Next(OutputCollector& collector) override {
      if (done_) return false;
      done_ = true;
      collector.Emit(Tuple(NumberSchema(), {std::int64_t{1}}));
      collector.EmitTo("nobody_listens", Tuple(NumberSchema(),
                                               {std::int64_t{2}}));
      return true;
    }

   private:
    bool done_ = false;
  };
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> prepared{0}, cleaned{0};
  TopologyBuilder builder;
  builder.AddSpout("src", [] { return std::make_unique<TwoStreamSpout>(); });
  builder
      .AddBolt("sum",
               [&] {
                 return std::make_unique<SummingBolt>(&sum, &prepared,
                                                      &cleaned);
               })
      .ShuffleGrouping("src");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  auto topo = Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_EQ(sum.load(), 1);
  EXPECT_EQ((*topo)->metrics().GetCounter("src.dropped")->value(), 1);
}

TEST(TopologyTest, MultiStreamSubscriptionsRouteIndependently) {
  // One producer, two named streams with different groupings to the same
  // consumer — the ComputeMF -> MFStorage pattern of Fig. 2 in
  // isolation. Every tuple on both streams must arrive exactly once and
  // the EOS drain must complete despite the double subscription.
  class TwoStreamSpout : public Spout {
   public:
    bool Next(OutputCollector& collector) override {
      if (i_ >= 100) return false;
      collector.EmitTo("left", Tuple(NumberSchema(), {i_}));
      collector.EmitTo("right", Tuple(NumberSchema(), {i_ * 1000}));
      ++i_;
      return true;
    }

   private:
    std::int64_t i_ = 0;
  };
  class CountingSink : public Bolt {
   public:
    CountingSink(std::atomic<std::int64_t>* small_sum,
                 std::atomic<std::int64_t>* large_sum)
        : small_sum_(small_sum), large_sum_(large_sum) {}
    void Process(const Tuple& tuple, OutputCollector&) override {
      const std::int64_t n = *tuple.GetInt("n");
      (n < 1000 && n != 0 ? *small_sum_ : *large_sum_).fetch_add(n);
    }

   private:
    std::atomic<std::int64_t>* small_sum_;
    std::atomic<std::int64_t>* large_sum_;
  };

  std::atomic<std::int64_t> small_sum{0}, large_sum{0};
  TopologyBuilder builder;
  builder.AddSpout("src", [] { return std::make_unique<TwoStreamSpout>(); });
  builder
      .AddBolt("sink",
               [&] {
                 return std::make_unique<CountingSink>(&small_sum,
                                                       &large_sum);
               },
               3)
      .FieldsGrouping("src", "left", {"n"})
      .ShuffleGrouping("src", "right");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  auto topo = Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  // left carries 1..99 (0 classified into large bucket, worth 0 anyway);
  // right carries 0,1000,...,99000.
  EXPECT_EQ(small_sum.load() + large_sum.load(),
            99LL * 100 / 2 + 1000LL * (99 * 100 / 2));
  EXPECT_EQ((*topo)->metrics().GetCounter("sink.processed")->value(), 200);
}

TEST(TopologyTest, RequestStopEndsInfiniteSpout) {
  class InfiniteSpout : public Spout {
   public:
    bool Next(OutputCollector& collector) override {
      collector.Emit(Tuple(NumberSchema(), {std::int64_t{1}}));
      return true;
    }
  };
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> prepared{0}, cleaned{0};
  TopologyBuilder builder;
  builder.AddSpout("inf", [] { return std::make_unique<InfiniteSpout>(); });
  builder
      .AddBolt("sum",
               [&] {
                 return std::make_unique<SummingBolt>(&sum, &prepared,
                                                      &cleaned);
               })
      .ShuffleGrouping("inf");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  auto topo = Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  while (sum.load() < 100) {
  }
  (*topo)->RequestStop();
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_GE(sum.load(), 100);
  EXPECT_EQ(cleaned.load(), 1);  // Clean drain even on forced stop.
}

TEST(TopologyTest, QueueDepthGaugeDrainsToZero) {
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> prepared{0}, cleaned{0};
  TopologyBuilder builder;
  builder.AddSpout("numbers",
                   [] { return std::make_unique<CountingSpout>(2000); }, 2);
  builder
      .AddBolt("sum",
               [&] {
                 return std::make_unique<SummingBolt>(&sum, &prepared,
                                                      &cleaned);
               },
               3)
      .ShuffleGrouping("numbers");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  auto topo = Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  // Every pushed data tuple was popped: the gauge returns to zero.
  EXPECT_EQ((*topo)->metrics().GetGauge("sum.queue_depth")->value(), 0);
}

TEST(TopologyTest, StartTwiceFails) {
  TopologyBuilder builder;
  builder.AddSpout("numbers",
                   [] { return std::make_unique<CountingSpout>(1); });
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  auto topo = Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  EXPECT_FALSE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
}

TEST(TopologyTest, JoinBeforeStartFails) {
  TopologyBuilder builder;
  builder.AddSpout("numbers",
                   [] { return std::make_unique<CountingSpout>(1); });
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  auto topo = Topology::Create(std::move(spec).value());
  ASSERT_TRUE(topo.ok());
  EXPECT_FALSE((*topo)->Join().ok());
}

TEST(TopologyTest, EmptySpecRejected) {
  EXPECT_FALSE(Topology::Create(TopologySpec{}).ok());
}

TEST(TopologyTest, BackpressureSmallQueuesStillComplete) {
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> prepared{0}, cleaned{0};
  TopologyBuilder builder;
  builder.AddSpout(
      "numbers", [] { return std::make_unique<CountingSpout>(5000); }, 2);
  builder
      .AddBolt("sum",
               [&] {
                 return std::make_unique<SummingBolt>(&sum, &prepared,
                                                      &cleaned);
               },
               1)
      .ShuffleGrouping("numbers");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  TopologyOptions options;
  options.queue_capacity = 2;  // Aggressive backpressure.
  auto topo = Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_EQ(sum.load(), 2 * (4999LL * 5000 / 2));
}

TEST(TopologyTest, DrainBatchOfOneStillCompletes) {
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> prepared{0}, cleaned{0};
  TopologyBuilder builder;
  builder.AddSpout(
      "numbers", [] { return std::make_unique<CountingSpout>(2000); }, 2);
  builder
      .AddBolt("sum",
               [&] {
                 return std::make_unique<SummingBolt>(&sum, &prepared,
                                                      &cleaned);
               },
               2)
      .ShuffleGrouping("numbers");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  TopologyOptions options;
  options.drain_batch = 1;  // Degenerate batching: one tuple per wakeup.
  auto topo = Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_EQ(sum.load(), 2 * (1999LL * 2000 / 2));
}

TEST(TopologyTest, LargeDrainBatchWithTinyQueueStillCompletes) {
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> prepared{0}, cleaned{0};
  TopologyBuilder builder;
  builder.AddSpout(
      "numbers", [] { return std::make_unique<CountingSpout>(2000); }, 2);
  builder
      .AddBolt("sum",
               [&] {
                 return std::make_unique<SummingBolt>(&sum, &prepared,
                                                      &cleaned);
               },
               1)
      .ShuffleGrouping("numbers");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  TopologyOptions options;
  options.queue_capacity = 2;   // Backpressure on every push...
  options.drain_batch = 4096;   // ...while the consumer asks for huge
                                // batches: PopBatch must cap at
                                // availability, not wait to fill.
  auto topo = Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_EQ(sum.load(), 2 * (1999LL * 2000 / 2));
}

TEST(TopologyTest, BuilderQueueDefaultsApplyWhenOptionsUnset) {
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> prepared{0}, cleaned{0};
  TopologyBuilder builder;
  builder.SetQueueCapacity(2).SetDrainBatch(3);
  builder.AddSpout(
      "numbers", [] { return std::make_unique<CountingSpout>(1000); }, 1);
  builder
      .AddBolt("sum",
               [&] {
                 return std::make_unique<SummingBolt>(&sum, &prepared,
                                                      &cleaned);
               },
               1)
      .ShuffleGrouping("numbers");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->default_queue_capacity, 2u);
  // Default TopologyOptions (both sizes 0) defer to the spec.
  auto topo = Topology::Create(std::move(spec).value(), TopologyOptions{});
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
  // SPSC edge (one spout task): batch drains were recorded via the
  // shared stream.queue.* counters.
  EXPECT_GT(
      (*topo)->metrics().GetCounter("stream.queue.batch_drains")->value(),
      0);
}

}  // namespace
}  // namespace rtrec::stream
