#include "common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <chrono>

#include "common/metrics.h"
#include "kvstore/kv_store.h"
#include "obs/span_collector.h"
#include "service/recommendation_service.h"
#include "stream/topology.h"

namespace rtrec {
namespace {

// ---------------------------------------------------------------------------
// Tracer sampling.

TEST(TracerTest, SamplesExactlyOneInN) {
  MetricsRegistry metrics;
  Tracer::Options options;
  options.sample_every_n = 4;
  options.metrics = &metrics;
  Tracer tracer(options);

  int sampled = 0;
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    const TraceContext context = tracer.StartTrace();
    if (context.sampled()) {
      ++sampled;
      EXPECT_GT(context.start_us, 0);
      ids.insert(context.id);
    }
  }
  // Deterministic round-robin: exactly 100/4, not "roughly".
  EXPECT_EQ(sampled, 25);
  EXPECT_EQ(ids.size(), 25u);  // Distinct ids per sampled trace.
  EXPECT_EQ(metrics.GetCounter("trace.roots")->value(), 100);
  EXPECT_EQ(metrics.GetCounter("trace.sampled")->value(), 25);
}

TEST(TracerTest, SampleEveryZeroDisablesTracing) {
  MetricsRegistry metrics;
  Tracer::Options options;
  options.sample_every_n = 0;
  options.metrics = &metrics;
  Tracer tracer(options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(tracer.StartTrace().sampled());
  }
  EXPECT_EQ(metrics.GetCounter("trace.sampled")->value(), 0);
}

TEST(TracerTest, SamplingBoundHoldsUnderConcurrency) {
  MetricsRegistry metrics;
  Tracer::Options options;
  options.sample_every_n = 8;
  options.metrics = &metrics;
  Tracer tracer(options);

  std::atomic<int> sampled{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (tracer.StartTrace().sampled()) sampled.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // 8000 roots at 1-in-8: exactly 1000 sampled — the overhead bound is
  // a hard guarantee, not an expectation.
  EXPECT_EQ(sampled.load(), 1000);
  EXPECT_EQ(metrics.GetCounter("trace.roots")->value(), 8000);
}

TEST(TracerTest, RecordSinceRootIsNoOpForUnsampled) {
  MetricsRegistry metrics;
  Tracer::Options options;
  options.sample_every_n = 1;
  options.metrics = &metrics;
  Tracer tracer(options);

  tracer.RecordSinceRoot(TraceContext{}, "stage");
  EXPECT_EQ(tracer.SinceRootHistogram("stage")->count(), 0u);

  const TraceContext context = tracer.StartTrace();
  ASSERT_TRUE(context.sampled());
  tracer.RecordSinceRoot(context, "stage");
  EXPECT_EQ(tracer.SinceRootHistogram("stage")->count(), 1u);
}

// ---------------------------------------------------------------------------
// Thread-current trace and spans.

TEST(ScopedTraceContextTest, InstallsAndRestoresNested) {
  EXPECT_FALSE(CurrentTrace().sampled());
  TraceContext outer;
  outer.id = 7;
  {
    ScopedTraceContext outer_scope(outer);
    EXPECT_EQ(CurrentTrace().id, 7u);
    TraceContext inner;
    inner.id = 9;
    {
      ScopedTraceContext inner_scope(inner);
      EXPECT_EQ(CurrentTrace().id, 9u);
    }
    EXPECT_EQ(CurrentTrace().id, 7u);
  }
  EXPECT_FALSE(CurrentTrace().sampled());
}

TEST(TraceSpanTest, RecordsOnlyUnderSampledTrace) {
  Histogram hist;
  { TraceSpan span(&hist); }  // No current trace: nothing recorded.
  EXPECT_EQ(hist.count(), 0u);

  TraceContext context;
  context.id = 1;
  context.start_us = Tracer::NowMicros();
  {
    ScopedTraceContext scope(context);
    TraceSpan span(&hist);
  }
  EXPECT_EQ(hist.count(), 1u);

  { TraceSpan span(nullptr); }  // Null histogram is always safe.
}

// ---------------------------------------------------------------------------
// Propagation across the stream topology.

std::shared_ptr<const stream::Schema> NumberSchema() {
  static const auto& schema = *new std::shared_ptr<const stream::Schema>(
      std::make_shared<const stream::Schema>(stream::Schema{{"n"}}));
  return schema;
}

class CountingSpout : public stream::Spout {
 public:
  explicit CountingSpout(std::int64_t limit) : limit_(limit) {}

  bool Next(stream::OutputCollector& collector) override {
    if (next_ >= limit_) return false;
    collector.Emit(stream::Tuple(NumberSchema(), {next_++}));
    return true;
  }

 private:
  std::int64_t limit_;
  std::int64_t next_ = 0;
};

/// Forwards every tuple; under a sampled trace also exercises a KV span
/// through the thread-current context.
class ForwardingBolt : public stream::Bolt {
 public:
  explicit ForwardingBolt(std::atomic<int>* sampled_seen)
      : sampled_seen_(sampled_seen) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    if (CurrentTrace().sampled()) sampled_seen_->fetch_add(1);
    collector.Emit(tuple);
  }

 private:
  std::atomic<int>* sampled_seen_;
};

TEST(TopologyTracingTest, TraceSurvivesSpoutToBoltToBolt) {
  MetricsRegistry metrics;
  Tracer::Options tracer_options;
  tracer_options.sample_every_n = 4;
  tracer_options.metrics = &metrics;
  Tracer tracer(tracer_options);

  std::atomic<int> first_sampled{0};
  std::atomic<int> second_sampled{0};
  stream::TopologyBuilder builder;
  builder.AddSpout(
      "numbers", [] { return std::make_unique<CountingSpout>(100); }, 1);
  builder
      .AddBolt(
          "first",
          [&] { return std::make_unique<ForwardingBolt>(&first_sampled); }, 2)
      .ShuffleGrouping("numbers");
  builder
      .AddBolt(
          "second",
          [&] { return std::make_unique<ForwardingBolt>(&second_sampled); },
          2)
      .ShuffleGrouping("first");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());

  stream::TopologyOptions options;
  options.metrics = &metrics;
  options.tracer = &tracer;
  auto topo = stream::Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());

  // 100 spout emissions at 1-in-4: exactly 25 sampled contexts, each of
  // which must reach both bolts (the thread-current trace is installed
  // during Process) and record one entry per stage histogram.
  EXPECT_EQ(metrics.GetCounter("trace.sampled")->value(), 25);
  EXPECT_EQ(first_sampled.load(), 25);
  EXPECT_EQ(second_sampled.load(), 25);
  EXPECT_EQ(tracer.StageHistogram("first")->count(), 25u);
  EXPECT_EQ(tracer.StageHistogram("second")->count(), 25u);
  EXPECT_EQ(tracer.QueueHistogram("first")->count(), 25u);
  EXPECT_EQ(tracer.QueueHistogram("second")->count(), 25u);
  EXPECT_EQ(tracer.SinceRootHistogram("first")->count(), 25u);
  EXPECT_EQ(tracer.SinceRootHistogram("second")->count(), 25u);
  // Unsampled tuples still flow: all 100 processed at both stages.
  EXPECT_EQ(metrics.GetCounter("first.processed")->value(), 100);
  EXPECT_EQ(metrics.GetCounter("second.processed")->value(), 100);
}

TEST(TopologyTracingTest, NullTracerRecordsNoTraceMetrics) {
  MetricsRegistry metrics;
  std::atomic<int> sampled_seen{0};
  stream::TopologyBuilder builder;
  builder.AddSpout(
      "numbers", [] { return std::make_unique<CountingSpout>(50); }, 1);
  builder
      .AddBolt(
          "sink",
          [&] { return std::make_unique<ForwardingBolt>(&sampled_seen); }, 1)
      .ShuffleGrouping("numbers");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());

  stream::TopologyOptions options;
  options.metrics = &metrics;  // options.tracer stays null.
  auto topo = stream::Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());

  EXPECT_EQ(sampled_seen.load(), 0);
  EXPECT_EQ(metrics.Report().find("trace."), std::string::npos);
}

// ---------------------------------------------------------------------------
// Spans in the call-stack-shaped layers.

TEST(ServiceTracingTest, ObserveAndRecommendRecordSpansUnderSampledTrace) {
  MetricsRegistry metrics;
  RecommendationService::Options options;
  options.engine.model.num_factors = 8;
  options.metrics = &metrics;
  RecommendationService service([](VideoId) -> VideoType { return 0; },
                                options);

  UserAction action;
  action.user = 1;
  action.video = 2;
  action.type = ActionType::kPlayTime;
  action.view_fraction = 1.0;
  action.time = 1000;

  // No thread-current trace: spans stay silent.
  service.Observe(action);
  EXPECT_EQ(
      metrics.GetHistogram("trace.stage.service.observe.us")->count(), 0u);

  TraceContext context;
  context.id = 1;
  context.start_us = Tracer::NowMicros();
  {
    ScopedTraceContext scope(context);
    service.Observe(action);
    RecRequest request;
    request.user = 1;
    request.top_n = 5;
    ASSERT_TRUE(service.Recommend(request).ok());
  }
  EXPECT_EQ(
      metrics.GetHistogram("trace.stage.service.observe.us")->count(), 1u);
  EXPECT_EQ(
      metrics.GetHistogram("trace.stage.service.recommend.us")->count(), 1u);
}

TEST(KvStoreTracingTest, OperationsRecordSpansUnderSampledTrace) {
  MetricsRegistry metrics;
  ShardedKvStoreOptions options;
  options.metrics = &metrics;
  ShardedKvStore store(options);

  ASSERT_TRUE(store.Put("k", "v").ok());  // Untraced: no span.
  EXPECT_EQ(metrics.GetHistogram("trace.stage.kvstore.put.us")->count(), 0u);

  TraceContext context;
  context.id = 1;
  context.start_us = Tracer::NowMicros();
  {
    ScopedTraceContext scope(context);
    ASSERT_TRUE(store.Put("k", "w").ok());
    ASSERT_TRUE(store.Get("k").ok());
    ASSERT_TRUE(
        store.Update("k", [](std::string& v) { v += "!"; }, false).ok());
  }
  EXPECT_EQ(metrics.GetHistogram("trace.stage.kvstore.put.us")->count(), 1u);
  EXPECT_EQ(metrics.GetHistogram("trace.stage.kvstore.get.us")->count(), 1u);
  EXPECT_EQ(metrics.GetHistogram("trace.stage.kvstore.update.us")->count(),
            1u);
}

// ---------------------------------------------------------------------------
// Adopted (propagated) trace contexts.

TEST(TracerAdoptTest, AdoptsWireContextVerbatim) {
  MetricsRegistry metrics;
  Tracer::Options options;
  options.sample_every_n = 0;  // Local sampling off: adoption bypasses it.
  options.metrics = &metrics;
  Tracer tracer(options);

  const TraceContext adopted = tracer.AdoptTrace(0xFEEDull, /*hop=*/1);
  EXPECT_TRUE(adopted.sampled());
  EXPECT_EQ(adopted.id, 0xFEEDull);
  EXPECT_EQ(adopted.hop, 1);
  EXPECT_GT(adopted.start_us, 0);
  EXPECT_EQ(metrics.GetCounter("trace.adopted")->value(), 1);
  // Adoption does not touch the local sampling counters.
  EXPECT_EQ(metrics.GetCounter("trace.sampled")->value(), 0);
}

TEST(TracerAdoptTest, ZeroTraceIdAdoptsNothing) {
  MetricsRegistry metrics;
  Tracer::Options options;
  options.metrics = &metrics;
  Tracer tracer(options);
  EXPECT_FALSE(tracer.AdoptTrace(0, 3).sampled());
  EXPECT_EQ(metrics.GetCounter("trace.adopted")->value(), 0);
}

TEST(TracerAdoptTest, MintedTraceIdsAreDistinctAcrossTracers) {
  MetricsRegistry metrics;
  Tracer::Options options;
  options.sample_every_n = 1;
  options.metrics = &metrics;
  Tracer a(options);
  Tracer b(options);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    ids.insert(a.StartTrace().id);
    ids.insert(b.StartTrace().id);
  }
  EXPECT_EQ(ids.size(), 200u);
}

// ---------------------------------------------------------------------------
// Structured span recording (obs/span_collector.h).

obs::SpanCollector::Options CollectorOptions(MetricsRegistry* metrics) {
  obs::SpanCollector::Options options;
  options.metrics = metrics;
  options.drain_interval_ms = 1;
  return options;
}

TEST(SpanCollectorTest, InternedNamesAreStable) {
  MetricsRegistry metrics;
  obs::SpanCollector collector(CollectorOptions(&metrics));
  const std::uint16_t engine = collector.InternName("engine");
  EXPECT_EQ(collector.InternName("engine"), engine);
  EXPECT_NE(collector.InternName("decode"), engine);
  EXPECT_EQ(collector.NameFor(engine), "engine");
  EXPECT_EQ(collector.NameFor(9999), "?");
}

/// Pushes a synthetic finished trace straight through Record: one root
/// covering [start, start+total_us] and one child stage inside it.
void RecordSyntheticTrace(obs::SpanCollector* collector, std::uint64_t id,
                          std::int64_t total_us, std::uint16_t root_name,
                          std::uint16_t child_name, std::uint8_t hop = 0) {
  obs::SpanRecord child;
  child.trace_id = id;
  child.span_id = 2;
  child.parent_id = 1;
  child.start_us = 1000;
  child.end_us = 1000 + total_us / 2;
  child.name_id = child_name;
  child.hop = hop;
  collector->Record(child);
  obs::SpanRecord root = child;
  root.span_id = 1;
  root.parent_id = 0;
  root.end_us = 1000 + total_us;
  root.name_id = root_name;
  root.flags = obs::kSpanFlagRoot;
  collector->Record(root);  // Root last: its arrival finalizes the trace.
}

TEST(SpanCollectorTest, AssemblesAndExportsFinishedTraces) {
  MetricsRegistry metrics;
  obs::SpanCollector collector(CollectorOptions(&metrics));
  const std::uint16_t rpc = collector.InternName("rpc.recommend");
  const std::uint16_t engine = collector.InternName("engine");
  RecordSyntheticTrace(&collector, 0xABCDEF0123456789ull, 500, rpc, engine);
  collector.Flush();

  EXPECT_TRUE(collector.HasTrace(0xABCDEF0123456789ull));
  EXPECT_FALSE(collector.HasTrace(0x1111ull));
  const auto stats = collector.GetStats();
  EXPECT_EQ(stats.spans_recorded, 2u);
  EXPECT_EQ(stats.traces_finished, 1u);
  EXPECT_EQ(metrics.GetCounter("obs.traces.finished")->value(), 1);

  const std::string json = collector.ExportChromeJson();
  // Chrome trace-event shape: complete events with µs timestamps.
  EXPECT_EQ(json.rfind("{", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rpc.recommend\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"engine\""), std::string::npos);
  // The trace id is searchable as a 16-hex-digit string.
  EXPECT_NE(json.find("abcdef0123456789"), std::string::npos) << json;
}

TEST(SpanCollectorTest, SlowListIsSortedSlowestFirstAndBounded) {
  MetricsRegistry metrics;
  obs::SpanCollector::Options options = CollectorOptions(&metrics);
  options.slow_keep = 3;
  obs::SpanCollector collector(options);
  const std::uint16_t rpc = collector.InternName("rpc");
  const std::uint16_t stage = collector.InternName("stage");
  for (std::int64_t total : {100, 900, 300, 700, 500}) {
    RecordSyntheticTrace(&collector, static_cast<std::uint64_t>(total), total,
                         rpc, stage);
  }
  collector.Flush();

  const std::string json = collector.ExportSlowJson();
  // Only the slowest 3 survive, slowest first.
  const std::size_t p900 = json.find("\"total_us\":900");
  const std::size_t p700 = json.find("\"total_us\":700");
  const std::size_t p500 = json.find("\"total_us\":500");
  ASSERT_NE(p900, std::string::npos) << json;
  ASSERT_NE(p700, std::string::npos);
  ASSERT_NE(p500, std::string::npos);
  EXPECT_LT(p900, p700);
  EXPECT_LT(p700, p500);
  EXPECT_EQ(json.find("\"total_us\":100"), std::string::npos);
  EXPECT_EQ(json.find("\"total_us\":300"), std::string::npos);
  // Per-stage breakdown rides along.
  EXPECT_NE(json.find("\"stages\":[{\"name\":\"stage\""), std::string::npos)
      << json;
}

TEST(SpanCollectorTest, FinishedTraceRetentionIsBounded) {
  MetricsRegistry metrics;
  obs::SpanCollector::Options options = CollectorOptions(&metrics);
  options.max_traces = 4;
  obs::SpanCollector collector(options);
  const std::uint16_t rpc = collector.InternName("rpc");
  const std::uint16_t stage = collector.InternName("stage");
  for (std::uint64_t id = 1; id <= 20; ++id) {
    RecordSyntheticTrace(&collector, id, 100, rpc, stage);
  }
  collector.Flush();
  // Oldest evicted: only the newest max_traces remain.
  EXPECT_FALSE(collector.HasTrace(1));
  EXPECT_TRUE(collector.HasTrace(20));
  EXPECT_EQ(collector.GetStats().traces_finished, 20u);
}

// ---------------------------------------------------------------------------
// RequestRecorder: staging, commit, tail capture, overhead.

TEST(RequestRecorderTest, SampledRequestCommitsItsSpanTree) {
  MetricsRegistry metrics;
  obs::SpanCollector collector(CollectorOptions(&metrics));
  const std::uint16_t rpc = collector.InternName("rpc.recommend");
  const std::uint16_t engine = collector.InternName("engine");

  TraceContext trace;
  trace.id = 0x77;
  trace.start_us = Tracer::NowMicros();
  obs::RequestRecorder recorder(&collector, trace, /*slow_threshold_us=*/0);
  EXPECT_TRUE(recorder.active());
  { const auto span = recorder.Span(engine); }
  bool committed = false;
  recorder.Finish(rpc, &committed);
  EXPECT_TRUE(committed);

  collector.Flush();
  EXPECT_TRUE(collector.HasTrace(0x77));
  EXPECT_EQ(collector.GetStats().spans_recorded, 2u);  // Root + engine.
}

TEST(RequestRecorderTest, UnsampledFastRequestRecordsNothing) {
  MetricsRegistry metrics;
  obs::SpanCollector collector(CollectorOptions(&metrics));
  const std::uint16_t rpc = collector.InternName("rpc");
  const std::uint16_t engine = collector.InternName("engine");

  // Unsampled, tail capture armed with an unreachable threshold: spans
  // are staged (reversible buffer) but never reach a ring.
  obs::RequestRecorder recorder(&collector, TraceContext{},
                                /*slow_threshold_us=*/60'000'000);
  EXPECT_TRUE(recorder.active());
  { const auto span = recorder.Span(engine); }
  bool committed = true;
  recorder.Finish(rpc, &committed);
  EXPECT_FALSE(committed);

  collector.Flush();
  EXPECT_EQ(collector.GetStats().spans_recorded, 0u);
  EXPECT_EQ(collector.GetStats().traces_finished, 0u);
}

TEST(RequestRecorderTest, TailCaptureKeepsSlowUnsampledRequest) {
  MetricsRegistry metrics;
  obs::SpanCollector collector(CollectorOptions(&metrics));
  const std::uint16_t rpc = collector.InternName("rpc");
  const std::uint16_t engine = collector.InternName("engine");

  obs::RequestRecorder recorder(&collector, TraceContext{},
                                /*slow_threshold_us=*/1'000);
  {
    const auto span = recorder.Span(engine);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  bool committed = false;
  const std::int64_t e2e = recorder.Finish(rpc, &committed);
  EXPECT_TRUE(committed);
  EXPECT_GE(e2e, 1'000);

  collector.Flush();
  const auto stats = collector.GetStats();
  EXPECT_EQ(stats.traces_finished, 1u);
  EXPECT_EQ(stats.slow_captured, 1u);
  EXPECT_EQ(metrics.GetCounter("obs.traces.slow_captured")->value(), 1);
  // The retroactively kept trace got a minted (non-zero) id and shows up
  // in the slow list flagged as a tail capture.
  const std::string json = collector.ExportSlowJson();
  EXPECT_NE(json.find("\"slow_capture\":true"), std::string::npos) << json;
}

TEST(RequestRecorderTest, InactiveWhenUnsampledAndNoThreshold) {
  MetricsRegistry metrics;
  obs::SpanCollector collector(CollectorOptions(&metrics));
  const std::uint16_t rpc = collector.InternName("rpc");
  obs::RequestRecorder recorder(&collector, TraceContext{},
                                /*slow_threshold_us=*/0);
  EXPECT_FALSE(recorder.active());
  EXPECT_EQ(recorder.Finish(rpc), 0);
}

TEST(RequestRecorderTest, NullCollectorIsAlwaysInactive) {
  TraceContext trace;
  trace.id = 1;
  trace.start_us = Tracer::NowMicros();
  obs::RequestRecorder recorder(nullptr, trace, 1'000);
  EXPECT_FALSE(recorder.active());
  { const auto span = recorder.Span(0); }
  EXPECT_EQ(recorder.Finish(0), 0);
}

TEST(RequestRecorderTest, OverheadOfDisabledPathIsBounded) {
  // The no-tracing hot path must stay allocation- and ring-free: an
  // inactive recorder's whole lifecycle is a few branches. 200k cycles
  // in well under a second is a deliberately loose wall-clock bound —
  // it catches a pathological regression (locking, ring pushes), not
  // nanosecond drift.
  MetricsRegistry metrics;
  obs::SpanCollector collector(CollectorOptions(&metrics));
  const std::uint16_t rpc = collector.InternName("rpc");
  const std::uint16_t engine = collector.InternName("engine");

  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < 200'000; ++i) {
    obs::RequestRecorder recorder(&collector, TraceContext{},
                                  /*slow_threshold_us=*/0);
    { const auto span = recorder.Span(engine); }
    recorder.Finish(rpc);
  }
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  collector.Flush();
  EXPECT_EQ(collector.GetStats().spans_recorded, 0u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            900)
      << "disabled-tracing overhead regressed";
}

}  // namespace
}  // namespace rtrec
