#include "common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "kvstore/kv_store.h"
#include "service/recommendation_service.h"
#include "stream/topology.h"

namespace rtrec {
namespace {

// ---------------------------------------------------------------------------
// Tracer sampling.

TEST(TracerTest, SamplesExactlyOneInN) {
  MetricsRegistry metrics;
  Tracer::Options options;
  options.sample_every_n = 4;
  options.metrics = &metrics;
  Tracer tracer(options);

  int sampled = 0;
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    const TraceContext context = tracer.StartTrace();
    if (context.sampled()) {
      ++sampled;
      EXPECT_GT(context.start_us, 0);
      ids.insert(context.id);
    }
  }
  // Deterministic round-robin: exactly 100/4, not "roughly".
  EXPECT_EQ(sampled, 25);
  EXPECT_EQ(ids.size(), 25u);  // Distinct ids per sampled trace.
  EXPECT_EQ(metrics.GetCounter("trace.roots")->value(), 100);
  EXPECT_EQ(metrics.GetCounter("trace.sampled")->value(), 25);
}

TEST(TracerTest, SampleEveryZeroDisablesTracing) {
  MetricsRegistry metrics;
  Tracer::Options options;
  options.sample_every_n = 0;
  options.metrics = &metrics;
  Tracer tracer(options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(tracer.StartTrace().sampled());
  }
  EXPECT_EQ(metrics.GetCounter("trace.sampled")->value(), 0);
}

TEST(TracerTest, SamplingBoundHoldsUnderConcurrency) {
  MetricsRegistry metrics;
  Tracer::Options options;
  options.sample_every_n = 8;
  options.metrics = &metrics;
  Tracer tracer(options);

  std::atomic<int> sampled{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (tracer.StartTrace().sampled()) sampled.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // 8000 roots at 1-in-8: exactly 1000 sampled — the overhead bound is
  // a hard guarantee, not an expectation.
  EXPECT_EQ(sampled.load(), 1000);
  EXPECT_EQ(metrics.GetCounter("trace.roots")->value(), 8000);
}

TEST(TracerTest, RecordSinceRootIsNoOpForUnsampled) {
  MetricsRegistry metrics;
  Tracer::Options options;
  options.sample_every_n = 1;
  options.metrics = &metrics;
  Tracer tracer(options);

  tracer.RecordSinceRoot(TraceContext{}, "stage");
  EXPECT_EQ(tracer.SinceRootHistogram("stage")->count(), 0u);

  const TraceContext context = tracer.StartTrace();
  ASSERT_TRUE(context.sampled());
  tracer.RecordSinceRoot(context, "stage");
  EXPECT_EQ(tracer.SinceRootHistogram("stage")->count(), 1u);
}

// ---------------------------------------------------------------------------
// Thread-current trace and spans.

TEST(ScopedTraceContextTest, InstallsAndRestoresNested) {
  EXPECT_FALSE(CurrentTrace().sampled());
  TraceContext outer;
  outer.id = 7;
  {
    ScopedTraceContext outer_scope(outer);
    EXPECT_EQ(CurrentTrace().id, 7u);
    TraceContext inner;
    inner.id = 9;
    {
      ScopedTraceContext inner_scope(inner);
      EXPECT_EQ(CurrentTrace().id, 9u);
    }
    EXPECT_EQ(CurrentTrace().id, 7u);
  }
  EXPECT_FALSE(CurrentTrace().sampled());
}

TEST(TraceSpanTest, RecordsOnlyUnderSampledTrace) {
  Histogram hist;
  { TraceSpan span(&hist); }  // No current trace: nothing recorded.
  EXPECT_EQ(hist.count(), 0u);

  TraceContext context;
  context.id = 1;
  context.start_us = Tracer::NowMicros();
  {
    ScopedTraceContext scope(context);
    TraceSpan span(&hist);
  }
  EXPECT_EQ(hist.count(), 1u);

  { TraceSpan span(nullptr); }  // Null histogram is always safe.
}

// ---------------------------------------------------------------------------
// Propagation across the stream topology.

std::shared_ptr<const stream::Schema> NumberSchema() {
  static const auto& schema = *new std::shared_ptr<const stream::Schema>(
      std::make_shared<const stream::Schema>(stream::Schema{{"n"}}));
  return schema;
}

class CountingSpout : public stream::Spout {
 public:
  explicit CountingSpout(std::int64_t limit) : limit_(limit) {}

  bool Next(stream::OutputCollector& collector) override {
    if (next_ >= limit_) return false;
    collector.Emit(stream::Tuple(NumberSchema(), {next_++}));
    return true;
  }

 private:
  std::int64_t limit_;
  std::int64_t next_ = 0;
};

/// Forwards every tuple; under a sampled trace also exercises a KV span
/// through the thread-current context.
class ForwardingBolt : public stream::Bolt {
 public:
  explicit ForwardingBolt(std::atomic<int>* sampled_seen)
      : sampled_seen_(sampled_seen) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    if (CurrentTrace().sampled()) sampled_seen_->fetch_add(1);
    collector.Emit(tuple);
  }

 private:
  std::atomic<int>* sampled_seen_;
};

TEST(TopologyTracingTest, TraceSurvivesSpoutToBoltToBolt) {
  MetricsRegistry metrics;
  Tracer::Options tracer_options;
  tracer_options.sample_every_n = 4;
  tracer_options.metrics = &metrics;
  Tracer tracer(tracer_options);

  std::atomic<int> first_sampled{0};
  std::atomic<int> second_sampled{0};
  stream::TopologyBuilder builder;
  builder.AddSpout(
      "numbers", [] { return std::make_unique<CountingSpout>(100); }, 1);
  builder
      .AddBolt(
          "first",
          [&] { return std::make_unique<ForwardingBolt>(&first_sampled); }, 2)
      .ShuffleGrouping("numbers");
  builder
      .AddBolt(
          "second",
          [&] { return std::make_unique<ForwardingBolt>(&second_sampled); },
          2)
      .ShuffleGrouping("first");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());

  stream::TopologyOptions options;
  options.metrics = &metrics;
  options.tracer = &tracer;
  auto topo = stream::Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());

  // 100 spout emissions at 1-in-4: exactly 25 sampled contexts, each of
  // which must reach both bolts (the thread-current trace is installed
  // during Process) and record one entry per stage histogram.
  EXPECT_EQ(metrics.GetCounter("trace.sampled")->value(), 25);
  EXPECT_EQ(first_sampled.load(), 25);
  EXPECT_EQ(second_sampled.load(), 25);
  EXPECT_EQ(tracer.StageHistogram("first")->count(), 25u);
  EXPECT_EQ(tracer.StageHistogram("second")->count(), 25u);
  EXPECT_EQ(tracer.QueueHistogram("first")->count(), 25u);
  EXPECT_EQ(tracer.QueueHistogram("second")->count(), 25u);
  EXPECT_EQ(tracer.SinceRootHistogram("first")->count(), 25u);
  EXPECT_EQ(tracer.SinceRootHistogram("second")->count(), 25u);
  // Unsampled tuples still flow: all 100 processed at both stages.
  EXPECT_EQ(metrics.GetCounter("first.processed")->value(), 100);
  EXPECT_EQ(metrics.GetCounter("second.processed")->value(), 100);
}

TEST(TopologyTracingTest, NullTracerRecordsNoTraceMetrics) {
  MetricsRegistry metrics;
  std::atomic<int> sampled_seen{0};
  stream::TopologyBuilder builder;
  builder.AddSpout(
      "numbers", [] { return std::make_unique<CountingSpout>(50); }, 1);
  builder
      .AddBolt(
          "sink",
          [&] { return std::make_unique<ForwardingBolt>(&sampled_seen); }, 1)
      .ShuffleGrouping("numbers");
  auto spec = builder.Build();
  ASSERT_TRUE(spec.ok());

  stream::TopologyOptions options;
  options.metrics = &metrics;  // options.tracer stays null.
  auto topo = stream::Topology::Create(std::move(spec).value(), options);
  ASSERT_TRUE(topo.ok());
  ASSERT_TRUE((*topo)->Start().ok());
  ASSERT_TRUE((*topo)->Join().ok());

  EXPECT_EQ(sampled_seen.load(), 0);
  EXPECT_EQ(metrics.Report().find("trace."), std::string::npos);
}

// ---------------------------------------------------------------------------
// Spans in the call-stack-shaped layers.

TEST(ServiceTracingTest, ObserveAndRecommendRecordSpansUnderSampledTrace) {
  MetricsRegistry metrics;
  RecommendationService::Options options;
  options.engine.model.num_factors = 8;
  options.metrics = &metrics;
  RecommendationService service([](VideoId) -> VideoType { return 0; },
                                options);

  UserAction action;
  action.user = 1;
  action.video = 2;
  action.type = ActionType::kPlayTime;
  action.view_fraction = 1.0;
  action.time = 1000;

  // No thread-current trace: spans stay silent.
  service.Observe(action);
  EXPECT_EQ(
      metrics.GetHistogram("trace.stage.service.observe.us")->count(), 0u);

  TraceContext context;
  context.id = 1;
  context.start_us = Tracer::NowMicros();
  {
    ScopedTraceContext scope(context);
    service.Observe(action);
    RecRequest request;
    request.user = 1;
    request.top_n = 5;
    ASSERT_TRUE(service.Recommend(request).ok());
  }
  EXPECT_EQ(
      metrics.GetHistogram("trace.stage.service.observe.us")->count(), 1u);
  EXPECT_EQ(
      metrics.GetHistogram("trace.stage.service.recommend.us")->count(), 1u);
}

TEST(KvStoreTracingTest, OperationsRecordSpansUnderSampledTrace) {
  MetricsRegistry metrics;
  ShardedKvStoreOptions options;
  options.metrics = &metrics;
  ShardedKvStore store(options);

  ASSERT_TRUE(store.Put("k", "v").ok());  // Untraced: no span.
  EXPECT_EQ(metrics.GetHistogram("trace.stage.kvstore.put.us")->count(), 0u);

  TraceContext context;
  context.id = 1;
  context.start_us = Tracer::NowMicros();
  {
    ScopedTraceContext scope(context);
    ASSERT_TRUE(store.Put("k", "w").ok());
    ASSERT_TRUE(store.Get("k").ok());
    ASSERT_TRUE(
        store.Update("k", [](std::string& v) { v += "!"; }, false).ok());
  }
  EXPECT_EQ(metrics.GetHistogram("trace.stage.kvstore.put.us")->count(), 1u);
  EXPECT_EQ(metrics.GetHistogram("trace.stage.kvstore.get.us")->count(), 1u);
  EXPECT_EQ(metrics.GetHistogram("trace.stage.kvstore.update.us")->count(),
            1u);
}

}  // namespace
}  // namespace rtrec
