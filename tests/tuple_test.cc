#include "stream/tuple.h"

#include <gtest/gtest.h>

namespace rtrec::stream {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return std::make_shared<const Schema>(
      Schema{{"user", "score", "name", "vec"}});
}

Tuple MakeTuple() {
  return Tuple(TestSchema(),
               {std::int64_t{7}, 2.5, std::string("abc"),
                std::vector<float>{1.0f, 2.0f}});
}

TEST(SchemaTest, IndexOfFindsFields) {
  Schema schema({"a", "b", "c"});
  EXPECT_EQ(schema.IndexOf("a"), 0);
  EXPECT_EQ(schema.IndexOf("c"), 2);
  EXPECT_EQ(schema.IndexOf("nope"), -1);
  EXPECT_EQ(schema.size(), 3u);
}

TEST(TupleTest, PositionalAccess) {
  Tuple t = MakeTuple();
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(std::get<std::int64_t>(t.Get(0)), 7);
  EXPECT_DOUBLE_EQ(std::get<double>(t.Get(1)), 2.5);
}

TEST(TupleTest, TypedAccessorsSucceed) {
  Tuple t = MakeTuple();
  EXPECT_EQ(*t.GetInt("user"), 7);
  EXPECT_DOUBLE_EQ(*t.GetDouble("score"), 2.5);
  EXPECT_EQ(*t.GetString("name"), "abc");
  EXPECT_EQ(t.GetFloats("vec")->size(), 2u);
}

TEST(TupleTest, MissingFieldIsNotFound) {
  Tuple t = MakeTuple();
  EXPECT_TRUE(t.GetInt("missing").status().IsNotFound());
  EXPECT_EQ(t.GetByName("missing"), nullptr);
}

TEST(TupleTest, WrongTypeIsInvalidArgument) {
  Tuple t = MakeTuple();
  EXPECT_TRUE(t.GetInt("name").status().IsInvalidArgument());
  EXPECT_TRUE(t.GetString("user").status().IsInvalidArgument());
  EXPECT_TRUE(t.GetFloats("score").status().IsInvalidArgument());
}

TEST(TupleTest, GetDoubleWidensInts) {
  Tuple t = MakeTuple();
  EXPECT_DOUBLE_EQ(*t.GetDouble("user"), 7.0);
}

TEST(TupleTest, DefaultTupleIsEmpty) {
  Tuple t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.GetByName("x"), nullptr);
}

TEST(TupleTest, ToStringNamesFields) {
  Tuple t = MakeTuple();
  const std::string s = t.ToString();
  EXPECT_NE(s.find("user=7"), std::string::npos);
  EXPECT_NE(s.find("name=abc"), std::string::npos);
  EXPECT_NE(s.find("float[2]"), std::string::npos);
}

TEST(TupleTest, CopyIsIndependent) {
  Tuple a = MakeTuple();
  Tuple b = a;
  EXPECT_EQ(*b.GetInt("user"), 7);
  EXPECT_EQ(a.schema(), b.schema());  // Schema shared by pointer.
}

TEST(HashValueTest, EqualValuesHashEqual) {
  EXPECT_EQ(HashValue(Value{std::int64_t{5}}),
            HashValue(Value{std::int64_t{5}}));
  EXPECT_EQ(HashValue(Value{std::string("xy")}),
            HashValue(Value{std::string("xy")}));
  EXPECT_EQ(HashValue(Value{2.5}), HashValue(Value{2.5}));
}

TEST(HashValueTest, DistinctValuesMostlyDiffer) {
  EXPECT_NE(HashValue(Value{std::int64_t{5}}),
            HashValue(Value{std::int64_t{6}}));
  EXPECT_NE(HashValue(Value{std::string("a")}),
            HashValue(Value{std::string("b")}));
  // Same number as int vs double hashes independently (type matters for
  // routing only if emitters are consistent, which schemas enforce).
  EXPECT_NE(HashValue(Value{}), HashValue(Value{std::int64_t{0}}));
}

TEST(ValueToStringTest, AllAlternatives) {
  EXPECT_EQ(ValueToString(Value{}), "null");
  EXPECT_EQ(ValueToString(Value{std::int64_t{42}}), "42");
  EXPECT_EQ(ValueToString(Value{std::string("s")}), "s");
  EXPECT_EQ(ValueToString(Value{std::vector<float>{1, 2, 3}}), "float[3]");
}

}  // namespace
}  // namespace rtrec::stream
