/// Compile-and-smoke test of the umbrella header: everything a library
/// user needs must be reachable through `rtrec.h` alone, and the README
/// quickstart flow must work verbatim.

#include "rtrec.h"

#include <gtest/gtest.h>

namespace rtrec {
namespace {

TEST(UmbrellaTest, ReadmeQuickstartFlow) {
  RecEngine engine(
      [](VideoId v) -> VideoType { return v < 100 ? 0 : 1; });

  UserAction action;
  action.user = 1;
  action.video = 10;
  action.type = ActionType::kPlayTime;
  action.view_fraction = 0.95;
  action.time = 1000;
  engine.Observe(action);

  RecRequest request;
  request.user = 42;
  request.seed_videos = {10};
  request.top_n = 10;
  request.now = 1000;
  auto recs = engine.Recommend(request);
  ASSERT_TRUE(recs.ok());
}

TEST(UmbrellaTest, MajorTypesAreComplete) {
  // Instantiate one of everything a downstream user composes; this test
  // exists to fail at compile time if rtrec.h loses an include.
  const VideoTypeResolver types = [](VideoId) -> VideoType { return 0; };
  RecommendationService service(types);
  DemographicGrouper grouper;
  HotVideoTracker hot;
  HotRecommender hot_baseline;
  AssociationRuleRecommender ar;
  SimHashCfRecommender simhash;
  ItemCfRecommender item_cf;
  ReservoirMfRecommender reservoir(
      types, ReservoirMfRecommender::Options{});
  GroupStoreRegistry registry;
  ShardedKvStore kv;
  Histogram histogram;
  Rng rng(1);
  ZipfDistribution zipf(10, 1.0);
  stream::TopologyBuilder builder;
  OfflineEvaluator evaluator;
  const WorldConfig config = SmallWorldConfig();
  (void)config;
  SUCCEED();
}

TEST(UmbrellaTest, StreamNamespaceReachable) {
  stream::Schema schema({"a"});
  EXPECT_EQ(schema.IndexOf("a"), 0);
  stream::Grouping grouping = stream::Grouping::Fields({"a"});
  EXPECT_EQ(grouping.type, stream::GroupingType::kFields);
}

}  // namespace
}  // namespace rtrec
