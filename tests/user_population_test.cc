#include "data/user_population.h"

#include <gtest/gtest.h>

#include <map>

#include "common/vec_math.h"

namespace rtrec {
namespace {

UserPopulation::Options SmallOptions() {
  UserPopulation::Options o;
  o.num_users = 500;
  o.num_genres = 4;
  o.registered_fraction = 0.7;
  o.seed = 3;
  return o;
}

TEST(UserPopulationTest, GeneratesRequestedSize) {
  const UserPopulation pop = UserPopulation::Generate(SmallOptions());
  EXPECT_EQ(pop.size(), 500u);
  EXPECT_EQ(pop.Get(1).id, 1u);
}

TEST(UserPopulationTest, DeterministicForSeed) {
  const UserPopulation a = UserPopulation::Generate(SmallOptions());
  const UserPopulation b = UserPopulation::Generate(SmallOptions());
  for (UserId u = 1; u <= 500; ++u) {
    EXPECT_EQ(a.Get(u).taste, b.Get(u).taste);
    EXPECT_EQ(a.Get(u).profile, b.Get(u).profile);
  }
}

TEST(UserPopulationTest, RegisteredFractionApproximatelyRespected) {
  const UserPopulation pop = UserPopulation::Generate(SmallOptions());
  int registered = 0;
  for (const SimUser& u : pop.users()) {
    if (u.profile.registered) ++registered;
  }
  EXPECT_NEAR(static_cast<double>(registered) / 500.0, 0.7, 0.07);
}

TEST(UserPopulationTest, RegisteredUsersHaveRealDemographics) {
  const UserPopulation pop = UserPopulation::Generate(SmallOptions());
  for (const SimUser& u : pop.users()) {
    if (!u.profile.registered) continue;
    EXPECT_NE(u.profile.gender, Gender::kUnknown);
    EXPECT_NE(u.profile.age, AgeBucket::kUnknown);
  }
}

TEST(UserPopulationTest, TastesAreUnitNorm) {
  const UserPopulation pop = UserPopulation::Generate(SmallOptions());
  for (const SimUser& u : pop.users()) {
    EXPECT_NEAR(Norm(u.taste), 1.0, 1e-5);
  }
}

TEST(UserPopulationTest, GroupMembersShareTaste) {
  // The planted structure of Fig. 3: within-group taste similarity must
  // exceed cross-group similarity.
  const UserPopulation pop = UserPopulation::Generate(SmallOptions());
  std::map<GroupId, std::vector<const SimUser*>> groups;
  for (const SimUser& u : pop.users()) {
    if (!u.profile.registered) continue;
    groups[DemographicGrouper::GroupFor(u.profile)].push_back(&u);
  }
  ASSERT_GE(groups.size(), 3u);

  double within = 0, cross = 0;
  int within_n = 0, cross_n = 0;
  std::vector<GroupId> ids;
  for (const auto& [group, members] : groups) ids.push_back(group);
  for (std::size_t gi = 0; gi < ids.size(); ++gi) {
    const auto& members = groups[ids[gi]];
    for (std::size_t i = 0; i + 1 < members.size() && i < 20; ++i) {
      within += Dot(members[i]->taste, members[i + 1]->taste);
      ++within_n;
    }
    if (gi + 1 < ids.size()) {
      const auto& other = groups[ids[gi + 1]];
      for (std::size_t i = 0; i < members.size() && i < other.size() &&
                              i < 20; ++i) {
        cross += Dot(members[i]->taste, other[i]->taste);
        ++cross_n;
      }
    }
  }
  ASSERT_GT(within_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(within / within_n, cross / cross_n + 0.1);
}

TEST(UserPopulationTest, ActivityIsPositiveAndSkewed) {
  const UserPopulation pop = UserPopulation::Generate(SmallOptions());
  double min_activity = 1e9, max_activity = 0;
  for (const SimUser& u : pop.users()) {
    EXPECT_GT(u.activity, 0.0);
    min_activity = std::min(min_activity, u.activity);
    max_activity = std::max(max_activity, u.activity);
  }
  EXPECT_GT(max_activity / min_activity, 5.0);  // Heavy/light users exist.
}

TEST(UserPopulationTest, RegisterProfilesFillsGrouper) {
  const UserPopulation pop = UserPopulation::Generate(SmallOptions());
  DemographicGrouper grouper;
  pop.RegisterProfiles(grouper);
  int registered = 0;
  for (const SimUser& u : pop.users()) {
    if (u.profile.registered) {
      ++registered;
      EXPECT_EQ(grouper.GroupOf(u.id),
                DemographicGrouper::GroupFor(u.profile));
    } else {
      EXPECT_EQ(grouper.GroupOf(u.id), kGlobalGroup);
    }
  }
  EXPECT_EQ(grouper.NumProfiles(), static_cast<std::size_t>(registered));
}

}  // namespace
}  // namespace rtrec
