#include "common/vec_math.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/clock.h"
#include "common/types.h"

namespace rtrec {
namespace {

TEST(VecMathTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot({1.0f, 2.0f, 3.0f}, {4.0f, 5.0f, 6.0f}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Dot({1.0f, -1.0f}, {1.0f, 1.0f}), 0.0);
}

TEST(VecMathTest, UnrolledDotHandlesAllTailLengths) {
  // The 4-way unrolled accumulator must agree with a plain loop for every
  // remainder length (n mod 4) and for n < 4.
  for (std::size_t n = 0; n <= 13; ++n) {
    std::vector<float> a(n);
    std::vector<float> b(n);
    double expected = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(i) + 0.5f;
      b[i] = 2.0f - static_cast<float>(i) * 0.25f;
      expected += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    }
    EXPECT_DOUBLE_EQ(Dot(a, b), expected) << "n = " << n;
    EXPECT_DOUBLE_EQ(Dot(a.data(), b.data(), n), expected) << "n = " << n;
  }
}

TEST(VecMathTest, Norms) {
  EXPECT_DOUBLE_EQ(NormSquared({3.0f, 4.0f}), 25.0);
  EXPECT_DOUBLE_EQ(Norm({3.0f, 4.0f}), 5.0);
  EXPECT_DOUBLE_EQ(Norm({}), 0.0);
}

TEST(VecMathTest, CosineSimilarity) {
  EXPECT_NEAR(CosineSimilarity({1.0f, 0.0f}, {1.0f, 0.0f}), 1.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity({1.0f, 0.0f}, {0.0f, 1.0f}), 0.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity({1.0f, 0.0f}, {-1.0f, 0.0f}), -1.0, 1e-9);
  // Zero vector guards.
  EXPECT_DOUBLE_EQ(CosineSimilarity({0.0f, 0.0f}, {1.0f, 1.0f}), 0.0);
}

TEST(TypesTest, VideoPairNormalizesOrder) {
  VideoPair a(5, 3);
  EXPECT_EQ(a.first, 3u);
  EXPECT_EQ(a.second, 5u);
  VideoPair b(3, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(VideoPairHash{}(a), VideoPairHash{}(b));
}

TEST(TypesTest, VideoPairHashDistinguishesPairs) {
  VideoPairHash hash;
  EXPECT_NE(hash(VideoPair(1, 2)), hash(VideoPair(1, 3)));
  EXPECT_NE(hash(VideoPair(1, 2)), hash(VideoPair(2, 3)));
}

TEST(TypesTest, MixHash64SpreadsSequentialInputs) {
  // Sequential ids must not map to sequential hashes (shard balance).
  std::uint64_t h0 = MixHash64(0);
  std::uint64_t h1 = MixHash64(1);
  EXPECT_NE(h0 + 1, h1);
  EXPECT_NE(h0, h1);
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(1000);
  EXPECT_EQ(clock.NowMillis(), 1000);
  clock.AdvanceMillis(500);
  EXPECT_EQ(clock.NowMillis(), 1500);
  clock.SetMillis(42);
  EXPECT_EQ(clock.NowMillis(), 42);
}

TEST(ClockTest, SystemClockIsMonotonicEnough) {
  SystemClock clock;
  const Timestamp a = clock.NowMillis();
  const Timestamp b = clock.NowMillis();
  EXPECT_LE(a, b);
  EXPECT_GT(a, 1577836800000LL);  // After 2020-01-01.
}

TEST(ClockTest, SingletonInstance) {
  EXPECT_EQ(SystemClock::Instance().get(), SystemClock::Instance().get());
}

}  // namespace
}  // namespace rtrec
